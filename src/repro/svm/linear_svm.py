"""Multiclass linear SVM trained with subgradient descent.

Used by the Balanced-SVM over-sampler (Farquad & Bose 2012): SMOTE
generates candidate synthetic points and an SVM trained on the real data
re-labels them, so only points the margin classifier agrees with keep
their minority label.

One-vs-rest squared-hinge formulation:

    L = (1/n) * sum_i max(0, 1 - y_i * (w.x_i + b))^2 + lambda * ||w||^2
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearSVM"]


class LinearSVM:
    """One-vs-rest linear SVM with squared hinge loss.

    Parameters
    ----------
    reg:
        L2 regularization strength (lambda).
    lr:
        SGD learning rate.
    epochs:
        Full passes over the data.
    batch_size:
        Mini-batch size for the subgradient steps.
    seed:
        RNG seed for shuffling and init.
    """

    def __init__(
        self,
        reg=1e-3,
        lr=0.01,
        epochs=30,
        batch_size=64,
        class_weight=None,
        lr_decay=0.01,
        max_class_weight=10.0,
        seed=0,
    ):
        if reg < 0:
            raise ValueError("reg must be non-negative")
        if class_weight not in (None, "balanced"):
            raise ValueError("class_weight must be None or 'balanced'")
        self.reg = reg
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.class_weight = class_weight
        self.lr_decay = lr_decay
        self.max_class_weight = max_class_weight
        self.seed = seed
        self.weights = None  # (num_classes, d)
        self.biases = None  # (num_classes,)
        self.num_classes = None

    def fit(self, x, y):
        """Train on features ``x`` (n, d) and integer labels ``y`` (n,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2:
            raise ValueError("x must be 2D")
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        self.num_classes = int(y.max()) + 1
        self.weights = np.zeros((self.num_classes, d))
        self.biases = np.zeros(self.num_classes)
        # +1/-1 target matrix for one-vs-rest.
        targets = -np.ones((n, self.num_classes))
        targets[np.arange(n), y] = 1.0
        # "balanced" weighting scales each sample by n / (C * n_class),
        # countering majority bias in the hinge subgradients.
        if self.class_weight == "balanced":
            counts = np.bincount(y, minlength=self.num_classes)
            counts = np.maximum(counts, 1)
            # Cap the weights: singleton classes would otherwise get
            # gradients large enough to destabilize the fixed step size.
            class_w = np.minimum(
                n / (self.num_classes * counts), self.max_class_weight
            )
            sample_w = class_w[y]
        else:
            sample_w = np.ones(n)

        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb = x[idx]
                tb = targets[idx]
                lr = self.lr / (1.0 + self.lr_decay * step)
                step += 1
                scores = xb @ self.weights.T + self.biases  # (b, C)
                margin = 1.0 - tb * scores
                active = margin > 0
                # d/dw squared hinge: -2 * t * max(0, margin) * x
                coeff = -2.0 * tb * margin * active * sample_w[idx][:, None]
                grad_w = coeff.T @ xb / len(idx) + 2 * self.reg * self.weights
                grad_b = coeff.mean(axis=0)
                self.weights -= lr * grad_w
                self.biases -= lr * grad_b
        return self

    def decision_function(self, x):
        """Raw per-class scores (n, num_classes)."""
        if self.weights is None:
            raise RuntimeError("call fit() before decision_function()")
        x = np.asarray(x, dtype=np.float64)
        return x @ self.weights.T + self.biases

    def predict(self, x):
        """Predicted class labels."""
        return self.decision_function(x).argmax(axis=1)

    def score(self, x, y):
        """Plain accuracy on (x, y)."""
        return float((self.predict(x) == np.asarray(y)).mean())
