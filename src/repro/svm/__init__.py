"""Linear SVM substrate (used by the Balanced-SVM over-sampler)."""

from .linear_svm import LinearSVM

__all__ = ["LinearSVM"]
