"""Ensembles of classifier heads for imbalanced embeddings."""

from .heads import BalancedHeadEnsemble

__all__ = ["BalancedHeadEnsemble"]
