"""Ensemble classifier heads over feature embeddings.

The imbalanced-ensemble family the paper cites (e.g. under-bagging,
multicriteria ensembles) adapts naturally to the three-phase framework:
instead of one fine-tuned head, train **E** heads, each on its own
balanced view of the embedding set, and average their logits at
inference.  Two balancing modes are provided:

* ``mode="undersample"`` — classic under-bagging: every head sees a
  random balanced subset (all minority + an equal-size majority draw).
* ``mode="oversample"`` — every head sees an independently-seeded
  resampling from any ``fit_resample`` sampler (EOS, SMOTE, ...), so the
  ensemble averages over the sampler's randomness.
"""

from __future__ import annotations

import numpy as np

from .._validation import validate_xy
from ..losses import CrossEntropyLoss
from ..optim import SGD
from ..tensor import Tensor, default_dtype, no_grad

__all__ = ["BalancedHeadEnsemble"]


class BalancedHeadEnsemble:
    """An ensemble of Linear heads trained on balanced embedding views.

    Parameters
    ----------
    head_factory:
        Zero-argument callable returning a fresh head module (e.g.
        ``lambda: Linear(64, 10)``); each ensemble member gets its own.
    n_heads:
        Ensemble size.
    mode:
        "undersample" (balanced bootstrap without synthesis) or
        "oversample" (balance each view with ``sampler_factory``).
    sampler_factory:
        Callable ``(seed) -> sampler`` used when mode="oversample".
    epochs, lr, batch_size:
        Per-head training settings (defaults match the paper's phase 3).
    random_state:
        Base seed; member i uses ``random_state + i``.
    """

    def __init__(
        self,
        head_factory,
        n_heads=5,
        mode="undersample",
        sampler_factory=None,
        epochs=10,
        lr=0.05,
        batch_size=64,
        random_state=0,
    ):
        if n_heads <= 0:
            raise ValueError("n_heads must be positive")
        if mode not in ("undersample", "oversample"):
            raise ValueError("mode must be 'undersample' or 'oversample'")
        if mode == "oversample" and sampler_factory is None:
            raise ValueError("oversample mode requires a sampler_factory")
        self.head_factory = head_factory
        self.n_heads = n_heads
        self.mode = mode
        self.sampler_factory = sampler_factory
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.random_state = random_state
        self.heads = []

    # ------------------------------------------------------------------
    def _balanced_view(self, x, y, seed):
        rng = np.random.default_rng(seed)
        if self.mode == "oversample":
            sampler = self.sampler_factory(seed)
            return sampler.fit_resample(x, y)
        counts = np.bincount(y)
        present = np.nonzero(counts)[0]
        n_keep = counts[present].min()
        keep = []
        for c in present:
            idx = np.nonzero(y == c)[0]
            keep.append(rng.choice(idx, size=n_keep, replace=False))
        keep = np.concatenate(keep)
        return x[keep], y[keep]

    def _train_head(self, head, x, y, seed):
        rng = np.random.default_rng(seed)
        loss = CrossEntropyLoss()
        optimizer = SGD(head.parameters(), lr=self.lr, momentum=0.9)
        n = x.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                optimizer.zero_grad()
                logits = head(Tensor(x[idx]))
                value = loss(logits, y[idx])
                value.backward()
                optimizer.step()
        return head

    # ------------------------------------------------------------------
    def fit(self, embeddings, labels):
        """Train all heads on independent balanced views."""
        embeddings, labels = validate_xy(embeddings, labels)
        self.heads = []
        for i in range(self.n_heads):
            seed = self.random_state + i
            x_view, y_view = self._balanced_view(embeddings, labels, seed)
            head = self.head_factory()
            self._train_head(head, x_view, y_view, seed)
            self.heads.append(head)
        return self

    def predict_logits(self, embeddings):
        """Average member logits over the ensemble."""
        if not self.heads:
            raise RuntimeError("call fit() before predict()")
        embeddings = np.asarray(embeddings, dtype=default_dtype())
        total = None
        with no_grad():
            for head in self.heads:
                out = head(Tensor(embeddings)).data
                total = out if total is None else total + out
        return total / len(self.heads)

    def predict(self, embeddings):
        """Majority (soft-vote) prediction."""
        return self.predict_logits(embeddings).argmax(axis=1)

    def score(self, embeddings, labels):
        """Balanced accuracy of the ensemble."""
        from ..metrics import balanced_accuracy

        return balanced_accuracy(labels, self.predict(embeddings))
