"""Process-wide reproducible RNG spawning.

The lint rule RNG002 bans unseeded ``np.random.default_rng()``: it draws
entropy from the OS, so two runs of the "same" experiment diverge.  But
several components (layer initialisers, data loaders, dropout) need a
*fallback* generator when the caller does not thread one through.

:func:`fresh_generator` provides that fallback reproducibly: every call
spawns an independent child stream of one seeded root
``np.random.SeedSequence``, so distinct call sites get distinct streams
(no accidental weight-sharing between layers) while the whole process
stays deterministic for a fixed construction order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fresh_generator", "reseed_root"]

_ROOT_SEED = 0x5EED
_root_seq = np.random.SeedSequence(_ROOT_SEED)


def fresh_generator():
    """A new independent, reproducibly-seeded ``np.random.Generator``."""
    return np.random.default_rng(_root_seq.spawn(1)[0])


def reseed_root(seed):
    """Reset the root stream (e.g. between repeated experiment runs)."""
    global _root_seq
    _root_seq = np.random.SeedSequence(seed)
