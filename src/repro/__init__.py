"""repro — reproduction of "Efficient Augmentation for Imbalanced Deep Learning".

A from-scratch, numpy-only implementation of EOS (Expansive
Over-Sampling), the embedding-space generalization gap, the three-phase
CNN training framework, and every baseline the ICDE 2023 paper compares
against — including the deep-learning substrate they run on (autograd
engine, ResNet/WideResNet/DenseNet, imbalanced losses, data pipeline).

Quick start::

    import numpy as np
    from repro import EOS, ThreePhaseTrainer
    from repro.data import make_dataset
    from repro.nn import resnet8
    from repro.losses import CrossEntropyLoss
    from repro.optim import SGD

    train, test, info = make_dataset("cifar10_like", scale="tiny")
    model = resnet8(num_classes=info["num_classes"], width_multiplier=0.5)
    trainer = ThreePhaseTrainer(
        model, CrossEntropyLoss(),
        SGD(model.parameters(), lr=0.05, momentum=0.9),
        sampler=EOS(k_neighbors=10),
    )
    trainer.run(train, phase1_epochs=10)
    print(trainer.evaluate(test))
"""

from .core import (
    EOS,
    ThreePhaseTrainer,
    Trainer,
    classifier_weight_norms,
    extract_features,
    finetune_classifier,
    generalization_gap,
    tp_fp_gap,
)

__version__ = "1.0.0"

__all__ = [
    "EOS",
    "ThreePhaseTrainer",
    "Trainer",
    "finetune_classifier",
    "extract_features",
    "generalization_gap",
    "tp_fp_gap",
    "classifier_weight_norms",
    "__version__",
]
