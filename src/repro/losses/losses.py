"""Loss functions for imbalanced learning.

Implements the four training losses the paper evaluates:

* ``CrossEntropyLoss`` (CE) — plain softmax cross-entropy with optional
  per-class weights.
* ``FocalLoss`` (Lin et al. 2017) — down-weights easy examples with a
  ``(1 - p_t)^gamma`` modulating factor.
* ``LDAMLoss`` (Cao et al. 2019) — label-distribution-aware margins
  ``m_c ∝ n_c^{-1/4}``, with the deferred re-weighting (DRW) schedule.
* ``AsymmetricLoss`` (ASL, Ben-Baruch et al. 2020) — sigmoid-based loss
  with separate positive/negative focusing and probability shifting,
  applied to one-hot targets as in the reference implementation.

Also provides ``class_balanced_weights`` (Cui et al. 2019 "effective
number of samples"), used by LDAM's DRW stage.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, default_dtype, log_softmax, nll_loss, one_hot

__all__ = [
    "Loss",
    "CrossEntropyLoss",
    "FocalLoss",
    "LDAMLoss",
    "AsymmetricLoss",
    "class_balanced_weights",
    "build_loss",
]


def class_balanced_weights(class_counts, beta=0.9999):
    """Per-class weights from the effective number of samples.

    ``w_c = (1 - beta) / (1 - beta^{n_c})``, normalized to sum to the
    number of classes (Cui et al. 2019).  Computed in float64 —
    ``beta^{n_c}`` underflows fast — and returned as float64; losses
    cast to the substrate default at their boundary.
    """
    counts = np.asarray(class_counts, dtype=np.float64)
    if np.any(counts <= 0):
        raise ValueError("all class counts must be positive")
    effective = 1.0 - np.power(beta, counts)
    weights = (1.0 - beta) / effective
    return weights * (len(counts) / weights.sum())


class Loss:
    """Base class: callable mapping (logits, targets) -> scalar Tensor."""

    def __call__(self, logits, targets):
        raise NotImplementedError

    def set_epoch(self, epoch):
        """Hook for epoch-dependent schedules (used by LDAM's DRW)."""


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy with optional per-class weights."""

    def __init__(self, weight=None):
        self.weight = (
            None if weight is None
            else np.asarray(weight, dtype=default_dtype())
        )

    def __call__(self, logits, targets):
        log_probs = log_softmax(logits, axis=-1)
        return nll_loss(log_probs, targets, weight=self.weight)


class FocalLoss(Loss):
    """Focal loss: ``-(1 - p_t)^gamma * log(p_t)`` with optional alpha."""

    def __init__(self, gamma=2.0, weight=None):
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = gamma
        self.weight = (
            None if weight is None
            else np.asarray(weight, dtype=default_dtype())
        )

    def __call__(self, logits, targets):
        t = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
        t = t.astype(np.int64)
        n, num_classes = logits.shape
        log_probs = log_softmax(logits, axis=-1)
        hot = one_hot(t, num_classes, dtype=logits.dtype)
        log_pt = (log_probs * hot).sum(axis=1)
        # Modulating factor treated as constant w.r.t. gradient, as in the
        # standard implementation trick for stability is NOT used; we
        # differentiate through (1 - p_t)^gamma as well.
        pt = log_pt.exp()
        focal = (1.0 - pt) ** self.gamma
        losses = -(focal * log_pt)
        if self.weight is not None:
            losses = losses * Tensor(self.weight[t])
        return losses.mean()


class LDAMLoss(Loss):
    """Label-distribution-aware margin loss with deferred re-weighting.

    The per-class margin is ``m_c = max_m * n_c^{-1/4} / max(n^{-1/4})``.
    The true-class logit is reduced by its margin before a scaled softmax
    cross-entropy.  With ``drw_epoch`` set, class-balanced weights kick in
    from that epoch onward (the DRW schedule of Cao et al.).

    Note on ``scale``: the original LDAM applies s=30 to *cosine* logits
    (normalized features and weights).  This implementation works on raw
    linear logits, where s=30 destabilizes training; the default of 5
    plays the same role (making the 0.5 margin significant relative to
    logit magnitudes) at stable gradient scales.
    """

    def __init__(self, class_counts, max_margin=0.5, scale=5.0, drw_epoch=None,
                 drw_beta=0.9999):
        counts = np.asarray(class_counts, dtype=np.float64)
        if np.any(counts <= 0):
            raise ValueError("all class counts must be positive")
        margins = 1.0 / np.power(counts, 0.25)
        self.margins = margins * (max_margin / margins.max())
        self.scale = scale
        self.drw_epoch = drw_epoch
        self._drw_weights = class_balanced_weights(counts, beta=drw_beta).astype(
            default_dtype()
        )
        self._active_weight = None

    def set_epoch(self, epoch):
        if self.drw_epoch is not None and epoch >= self.drw_epoch:
            self._active_weight = self._drw_weights
        else:
            self._active_weight = None

    def __call__(self, logits, targets):
        t = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
        t = t.astype(np.int64)
        n, num_classes = logits.shape
        margin_matrix = np.zeros((n, num_classes), dtype=logits.dtype)
        margin_matrix[np.arange(n), t] = self.margins[t]
        adjusted = (logits - Tensor(margin_matrix)) * self.scale
        log_probs = log_softmax(adjusted, axis=-1)
        return nll_loss(log_probs, t, weight=self._active_weight)


class AsymmetricLoss(Loss):
    """Asymmetric loss (ASL) on one-hot targets.

    Sigmoid probabilities with separate focusing parameters for the
    positive (``gamma_pos``) and negative (``gamma_neg``) parts, plus a
    probability shift ``clip`` applied to negatives — the mechanism that
    decays the contribution of easy negatives.
    """

    def __init__(self, gamma_pos=0.0, gamma_neg=4.0, clip=0.05, eps=1e-8):
        if clip < 0 or clip >= 1:
            raise ValueError("clip must be in [0, 1)")
        self.gamma_pos = gamma_pos
        self.gamma_neg = gamma_neg
        self.clip = clip
        self.eps = eps

    def __call__(self, logits, targets):
        t = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
        t = t.astype(np.int64)
        n, num_classes = logits.shape
        hot = one_hot(t, num_classes, dtype=logits.dtype)
        probs = logits.sigmoid()
        # Probability shifting for negatives.
        probs_neg = (probs - self.clip).clip(0.0, 1.0) if self.clip > 0 else probs

        pos_log = (probs.clip(self.eps, 1.0)).log()
        neg_log = ((1.0 - probs_neg).clip(self.eps, 1.0)).log()

        pos_focus = (1.0 - probs) ** self.gamma_pos if self.gamma_pos else 1.0
        neg_focus = probs_neg ** self.gamma_neg if self.gamma_neg else 1.0

        loss_pos = hot * pos_log * pos_focus
        loss_neg = (1.0 - hot) * neg_log * neg_focus
        total = -(loss_pos + loss_neg).sum(axis=1)
        return total.mean()


_LOSS_REGISTRY = {
    "ce": lambda counts, **kw: CrossEntropyLoss(**kw),
    "focal": lambda counts, **kw: FocalLoss(**kw),
    "ldam": lambda counts, **kw: LDAMLoss(counts, **kw),
    "asl": lambda counts, **kw: AsymmetricLoss(**kw),
}


def build_loss(name, class_counts=None, **kwargs):
    """Instantiate a loss by registry name ('ce', 'focal', 'ldam', 'asl')."""
    try:
        factory = _LOSS_REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown loss %r (available: %s)"
            % (name, ", ".join(sorted(_LOSS_REGISTRY)))
        ) from None
    return factory(class_counts, **kwargs)
