"""Loss functions for imbalanced deep learning."""

from .losses import (
    AsymmetricLoss,
    CrossEntropyLoss,
    FocalLoss,
    LDAMLoss,
    Loss,
    build_loss,
    class_balanced_weights,
)

__all__ = [
    "Loss",
    "CrossEntropyLoss",
    "FocalLoss",
    "LDAMLoss",
    "AsymmetricLoss",
    "class_balanced_weights",
    "build_loss",
]
