"""Shared building blocks for the GAN-based over-sampling baselines.

The paper's GAN baselines (CGAN, BAGAN, GAMO) are generative models that
synthesize minority samples.  Here they are implemented as compact MLP
generator/discriminator pairs over feature vectors — either flattened
pixels (the paper applies them as pixel-space pre-processing) or CNN
embeddings — trained with the non-saturating GAN loss.  The point the
reproduction must preserve is *relative*: GANs must be far more
expensive than EOS (they train extra models) and place synthetic points
less precisely, which compact GANs on the same data reproduce.
"""

from __future__ import annotations

import numpy as np

from ..nn import LeakyReLU, Linear, ReLU, Sequential, Sigmoid, Tanh
from ..optim import Adam
from ..tensor import Tensor, default_dtype

__all__ = ["MLP", "bce_loss", "GanCore", "fit_feature_scaler", "FeatureScaler"]


def MLP(sizes, hidden_activation="leaky_relu", out_activation=None, rng=None):
    """Build an MLP from a list of layer sizes.

    ``sizes = [in, h1, ..., out]``; activations applied between layers,
    plus an optional output activation ("sigmoid"/"tanh").
    """
    if len(sizes) < 2:
        raise ValueError("MLP needs at least input and output sizes")
    rng = rng if rng is not None else np.random.default_rng(0)
    acts = {"relu": ReLU, "leaky_relu": LeakyReLU}
    out_acts = {"sigmoid": Sigmoid, "tanh": Tanh, None: None}
    layers = []
    for i in range(len(sizes) - 1):
        layers.append(Linear(sizes[i], sizes[i + 1], rng=rng))
        if i < len(sizes) - 2:
            layers.append(acts[hidden_activation]())
    out = out_acts[out_activation]
    if out is not None:
        layers.append(out())
    return Sequential(*layers)


def bce_loss(probs, targets, eps=1e-7):
    """Binary cross-entropy over probabilities in (0, 1)."""
    targets = Tensor(np.asarray(targets, dtype=default_dtype()))
    p = probs.clip(eps, 1.0 - eps)
    losses = -(targets * p.log() + (1.0 - targets) * (1.0 - p).log())
    return losses.mean()


class FeatureScaler:
    """Min-max scaler mapping features to [-1, 1] and back.

    GAN generators with tanh outputs need bounded targets; the scaler
    also lets generated samples be mapped back to the original feature
    space.
    """

    def __init__(self, low, high):
        self.low = np.asarray(low, dtype=default_dtype())
        self.high = np.asarray(high, dtype=default_dtype())
        span = self.high - self.low
        self.span = np.where(span > 1e-12, span, 1.0)

    def transform(self, x):
        return 2.0 * (np.asarray(x) - self.low) / self.span - 1.0

    def inverse(self, x):
        return (np.asarray(x) + 1.0) / 2.0 * self.span + self.low


def fit_feature_scaler(x):
    """Fit a :class:`FeatureScaler` to a feature matrix."""
    x = np.asarray(x, dtype=default_dtype())
    return FeatureScaler(x.min(axis=0), x.max(axis=0))


class GanCore:
    """A generator/discriminator pair with an alternating training loop.

    Parameters
    ----------
    generator, discriminator:
        Modules; the discriminator must output a probability in (0, 1).
    latent_dim:
        Noise dimension fed to the generator.
    lr:
        Adam learning rate for both networks.
    """

    def __init__(self, generator, discriminator, latent_dim, lr=2e-3, seed=0):
        self.generator = generator
        self.discriminator = discriminator
        self.latent_dim = latent_dim
        self.g_opt = Adam(generator.parameters(), lr=lr, betas=(0.5, 0.999))
        self.d_opt = Adam(discriminator.parameters(), lr=lr, betas=(0.5, 0.999))
        self.rng = np.random.default_rng(seed)
        self.d_losses = []
        self.g_losses = []

    def sample_noise(self, n):
        return Tensor(self.rng.normal(size=(n, self.latent_dim)))

    def train_step(self, real_batch, cond_real=None, cond_fake=None):
        """One alternating D-then-G update.

        ``cond_real``/``cond_fake`` are optional conditioning arrays
        concatenated to the discriminator/generator inputs (conditional
        GAN); ``cond_fake`` also conditions the generator.
        """
        n = real_batch.shape[0]
        real = Tensor(real_batch)

        # --- discriminator step ---
        z = self.sample_noise(n)
        g_in = z if cond_fake is None else _concat(z, cond_fake)
        fake = self.generator(g_in).detach()
        d_real_in = real if cond_real is None else _concat(real, cond_real)
        d_fake_in = fake if cond_fake is None else _concat(fake, cond_fake)
        self.d_opt.zero_grad()
        d_loss = bce_loss(
            self.discriminator(d_real_in), np.ones((n, 1))
        ) + bce_loss(self.discriminator(d_fake_in), np.zeros((n, 1)))
        d_loss.backward()
        self.d_opt.step()

        # --- generator step (non-saturating loss) ---
        z = self.sample_noise(n)
        g_in = z if cond_fake is None else _concat(z, cond_fake)
        self.g_opt.zero_grad()
        fake = self.generator(g_in)
        d_fake_in = fake if cond_fake is None else _concat(fake, cond_fake)
        g_loss = bce_loss(self.discriminator(d_fake_in), np.ones((n, 1)))
        g_loss.backward()
        self.g_opt.step()

        self.d_losses.append(float(d_loss.data))
        self.g_losses.append(float(g_loss.data))
        return float(d_loss.data), float(g_loss.data)

    def generate(self, n, cond=None):
        """Sample n points from the generator (detached numpy array)."""
        z = self.sample_noise(n)
        g_in = z if cond is None else _concat(z, cond)
        return self.generator(g_in).data.copy()


def _concat(tensor, cond):
    from ..tensor import concatenate

    cond_t = Tensor(np.asarray(cond, dtype=default_dtype()))
    return concatenate([tensor, cond_t], axis=1)
