"""GAMO: generative adversarial minority oversampling (Mullick 2019).

GAMO's defining idea is that the generator does not emit free-form
points: it emits *convex-combination weights* over the real minority
instances of its class, so every synthetic point lies inside the class's
convex hull.  The generator is trained adversarially against a
discriminator to find combinations that look real while (in the full
method) fooling a classifier.  This reproduction keeps the convex
weight generator and the adversarial game.

Note the deliberate contrast with EOS: GAMO is convex-hull-*bounded* by
construction, so it cannot expand the minority feature ranges — the
mechanism behind its weaker Table-III results.
"""

from __future__ import annotations


import numpy as np

from .base import MLP, bce_loss
from .._validation import validate_xy
from ..optim import Adam
from ..sampling.base import sampling_targets
from ..tensor import Tensor, softmax
from ..telemetry import monotonic

__all__ = ["GAMO"]


class _ConvexGenerator:
    """Generator emitting convex weights over a fixed set of real points."""

    def __init__(self, latent_dim, n_points, hidden, rng):
        self.mlp = MLP([latent_dim, hidden, n_points], rng=rng)

    def parameters(self):
        return self.mlp.parameters()

    def __call__(self, z, points):
        logits = self.mlp(z)
        weights = softmax(logits, axis=1)
        return weights @ points


class GAMO:
    """Adversarial convex-combination over-sampler.

    Parameters
    ----------
    latent_dim, hidden, epochs, batch_size, lr:
        GAN hyper-parameters; one adversarial game is played per class.
    """

    def __init__(
        self,
        latent_dim=16,
        hidden=64,
        epochs=150,
        batch_size=32,
        lr=2e-3,
        sampling_strategy="auto",
        random_state=0,
    ):
        self.latent_dim = latent_dim
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.sampling_strategy = sampling_strategy
        self.random_state = random_state
        self.fit_seconds = 0.0

    def _train_class(self, class_data, seed):
        rng = np.random.default_rng(seed)
        n, d = class_data.shape
        gen = _ConvexGenerator(self.latent_dim, n, self.hidden, rng)
        disc = MLP([d, self.hidden, 1], out_activation="sigmoid", rng=rng)
        g_opt = Adam(gen.parameters(), lr=self.lr, betas=(0.5, 0.999))
        d_opt = Adam(disc.parameters(), lr=self.lr, betas=(0.5, 0.999))
        points = Tensor(class_data)
        bs = min(self.batch_size, n)
        for _ in range(self.epochs):
            idx = rng.integers(0, n, size=bs)
            real = Tensor(class_data[idx])
            z = Tensor(rng.normal(size=(bs, self.latent_dim)))

            d_opt.zero_grad()
            fake = gen(z, points).detach()
            d_loss = bce_loss(disc(real), np.ones((bs, 1))) + bce_loss(
                disc(fake), np.zeros((bs, 1))
            )
            d_loss.backward()
            d_opt.step()

            z = Tensor(rng.normal(size=(bs, self.latent_dim)))
            g_opt.zero_grad()
            fake = gen(z, points)
            g_loss = bce_loss(disc(fake), np.ones((bs, 1)))
            g_loss.backward()
            g_opt.step()
        return gen, points, rng

    def fit_resample(self, x, y):
        """Balance (x, y); synthetic points stay in each class's hull."""
        x, y = validate_xy(x, y)
        targets = sampling_targets(y, self.sampling_strategy)
        if not targets:
            return x.copy(), y.copy()
        start = monotonic()
        new_x, new_y = [x], [y]
        for cls, n_new in sorted(targets.items()):
            class_data = x[y == cls]
            if class_data.shape[0] == 1:
                synth = np.repeat(class_data, n_new, axis=0)
            else:
                gen, points, rng = self._train_class(
                    class_data, self.random_state + cls
                )
                z = Tensor(rng.normal(size=(n_new, self.latent_dim)))
                synth = gen(z, points).data.copy()
            new_x.append(synth)
            new_y.append(np.full(n_new, cls, dtype=np.int64))
        self.fit_seconds = monotonic() - start
        return np.concatenate(new_x), np.concatenate(new_y)
