"""GAN-based over-sampling baselines (CGAN, BAGAN, GAMO)."""

from .bagan import BAGAN
from .base import FeatureScaler, GanCore, MLP, bce_loss, fit_feature_scaler
from .cgan import CGAN
from .deepsmote import DeepSMOTE
from .gamo import GAMO

__all__ = [
    "CGAN",
    "DeepSMOTE",
    "BAGAN",
    "GAMO",
    "GanCore",
    "MLP",
    "bce_loss",
    "FeatureScaler",
    "fit_feature_scaler",
]
