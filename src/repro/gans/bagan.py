"""BAGAN: balancing GAN with autoencoder initialization (Mariani 2018).

BAGAN's two signature mechanisms are reproduced:

1. **Autoencoder pre-training** — an encoder/decoder pair is trained on
   *all* classes (majority knowledge transfers to minorities); the
   decoder becomes the generator's initialization.
2. **Class-conditional latent sampling** — a Gaussian is fit to each
   class's encoded latents; generation for class c samples that
   Gaussian and decodes, after a short adversarial refinement against a
   discriminator.
"""

from __future__ import annotations


import numpy as np

from .base import GanCore, MLP, bce_loss, fit_feature_scaler
from .._validation import validate_xy
from ..optim import Adam
from ..sampling.base import sampling_targets
from ..tensor import Tensor
from ..telemetry import monotonic

__all__ = ["BAGAN"]


class BAGAN:
    """Balancing GAN over-sampler.

    Parameters
    ----------
    latent_dim:
        Autoencoder bottleneck (= generator input) dimension.
    hidden:
        MLP hidden width.
    ae_epochs:
        Reconstruction pre-training steps.
    gan_epochs:
        Adversarial refinement steps.
    """

    def __init__(
        self,
        latent_dim=16,
        hidden=64,
        ae_epochs=200,
        gan_epochs=100,
        batch_size=32,
        lr=2e-3,
        sampling_strategy="auto",
        random_state=0,
    ):
        self.latent_dim = latent_dim
        self.hidden = hidden
        self.ae_epochs = ae_epochs
        self.gan_epochs = gan_epochs
        self.batch_size = batch_size
        self.lr = lr
        self.sampling_strategy = sampling_strategy
        self.random_state = random_state
        self.fit_seconds = 0.0

    # ------------------------------------------------------------------
    def _pretrain_autoencoder(self, data, rng):
        d = data.shape[1]
        encoder = MLP([d, self.hidden, self.latent_dim], rng=rng)
        decoder = MLP([self.latent_dim, self.hidden, d], out_activation="tanh", rng=rng)
        params = list(encoder.parameters()) + list(decoder.parameters())
        opt = Adam(params, lr=self.lr)
        n = data.shape[0]
        bs = min(self.batch_size, n)
        for _ in range(self.ae_epochs):
            idx = rng.integers(0, n, size=bs)
            batch = Tensor(data[idx])
            opt.zero_grad()
            recon = decoder(encoder(batch))
            loss = ((recon - batch) ** 2).mean()
            loss.backward()
            opt.step()
        return encoder, decoder

    def _class_latent_gaussians(self, encoder, data, labels):
        latents = encoder(Tensor(data)).data
        gaussians = {}
        for cls in np.unique(labels):
            z = latents[labels == cls]
            mean = z.mean(axis=0)
            if z.shape[0] > 1:
                cov_diag = z.var(axis=0) + 1e-4
            else:
                cov_diag = np.full(z.shape[1], 0.1)
            gaussians[int(cls)] = (mean, np.sqrt(cov_diag))
        return gaussians

    # ------------------------------------------------------------------
    def fit_resample(self, x, y):
        """Balance (x, y) with autoencoder-initialized GAN generation."""
        x, y = validate_xy(x, y)
        targets = sampling_targets(y, self.sampling_strategy)
        if not targets:
            return x.copy(), y.copy()
        start = monotonic()
        rng = np.random.default_rng(self.random_state)
        scaler = fit_feature_scaler(x)
        scaled = scaler.transform(x)

        encoder, decoder = self._pretrain_autoencoder(scaled, rng)
        gaussians = self._class_latent_gaussians(encoder, scaled, y)

        # Adversarial refinement of the decoder-as-generator on all data.
        disc = MLP([x.shape[1], self.hidden, 1], out_activation="sigmoid", rng=rng)
        gan = GanCore(decoder, disc, self.latent_dim, lr=self.lr,
                      seed=self.random_state)
        n = scaled.shape[0]
        bs = min(self.batch_size, n)
        classes = np.unique(y)
        for _ in range(self.gan_epochs):
            idx = rng.integers(0, n, size=bs)
            # Latents drawn from the class-conditional Gaussians so the
            # generator is refined where generation will happen.
            cls_draw = rng.choice(classes, size=bs)
            z = np.stack(
                [
                    gaussians[int(c)][0]
                    + gaussians[int(c)][1] * rng.normal(size=self.latent_dim)
                    for c in cls_draw
                ]
            )
            self._refine_step(gan, scaled[idx], z)

        new_x, new_y = [x], [y]
        for cls, n_new in sorted(targets.items()):
            mean, std = gaussians[int(cls)]
            z = mean + std * rng.normal(size=(n_new, self.latent_dim))
            synth = scaler.inverse(decoder(Tensor(z)).data)
            new_x.append(synth)
            new_y.append(np.full(n_new, cls, dtype=np.int64))
        self.fit_seconds = monotonic() - start
        return np.concatenate(new_x), np.concatenate(new_y)

    @staticmethod
    def _refine_step(gan, real_batch, latents):
        """One D+G update where the generator sees class-shaped latents."""
        n = real_batch.shape[0]
        real = Tensor(real_batch)
        z = Tensor(latents)

        gan.d_opt.zero_grad()
        fake = gan.generator(z).detach()
        d_loss = bce_loss(gan.discriminator(real), np.ones((n, 1))) + bce_loss(
            gan.discriminator(fake), np.zeros((n, 1))
        )
        d_loss.backward()
        gan.d_opt.step()

        gan.g_opt.zero_grad()
        fake = gan.generator(z)
        g_loss = bce_loss(gan.discriminator(fake), np.ones((n, 1)))
        g_loss.backward()
        gan.g_opt.step()
        gan.d_losses.append(float(d_loss.data))
        gan.g_losses.append(float(g_loss.data))
