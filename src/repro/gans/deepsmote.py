"""DeepSMOTE (Dablain, Krawczyk & Chawla 2022) — the paper's ref [48].

The same authors' predecessor method: train an encoder/decoder on all
classes (no adversarial game, unlike BAGAN), run plain SMOTE in the
learned latent space of each deficient class, and decode the synthetic
latents back to the input space.  DeepSMOTE sits between pixel-space
SMOTE (no learned representation) and the EOS framework (which drops
the decoder and resamples the classifier's own embeddings), making it a
natural baseline for this library.
"""

from __future__ import annotations


import numpy as np

from .._validation import validate_xy
from ..optim import Adam
from ..sampling.base import sampling_targets
from ..sampling.smote import SMOTE
from ..tensor import Tensor
from ..telemetry import monotonic
from .base import MLP, fit_feature_scaler

__all__ = ["DeepSMOTE"]


class DeepSMOTE:
    """Autoencoder + latent SMOTE over-sampler.

    Parameters
    ----------
    latent_dim:
        Bottleneck dimension of the autoencoder.
    hidden:
        Width of the encoder/decoder MLPs.
    ae_epochs:
        Reconstruction training steps.
    k_neighbors:
        SMOTE neighborhood size in latent space.
    permute_reconstruction:
        DeepSMOTE's training trick: with probability 1/2, reconstruct a
        *different same-class instance* instead of the input, which
        forces class-level (not instance-level) codes.
    """

    def __init__(
        self,
        latent_dim=16,
        hidden=64,
        ae_epochs=300,
        batch_size=32,
        lr=2e-3,
        k_neighbors=5,
        permute_reconstruction=True,
        sampling_strategy="auto",
        random_state=0,
    ):
        self.latent_dim = latent_dim
        self.hidden = hidden
        self.ae_epochs = ae_epochs
        self.batch_size = batch_size
        self.lr = lr
        self.k_neighbors = k_neighbors
        self.permute_reconstruction = permute_reconstruction
        self.sampling_strategy = sampling_strategy
        self.random_state = random_state
        self.fit_seconds = 0.0

    def _train_autoencoder(self, scaled, y, rng):
        d = scaled.shape[1]
        encoder = MLP([d, self.hidden, self.latent_dim], rng=rng)
        decoder = MLP(
            [self.latent_dim, self.hidden, d], out_activation="tanh", rng=rng
        )
        params = list(encoder.parameters()) + list(decoder.parameters())
        opt = Adam(params, lr=self.lr)
        n = scaled.shape[0]
        bs = min(self.batch_size, n)
        class_pools = {c: np.nonzero(y == c)[0] for c in np.unique(y)}
        for _ in range(self.ae_epochs):
            idx = rng.integers(0, n, size=bs)
            inputs = scaled[idx]
            if self.permute_reconstruction and rng.random() < 0.5:
                # Reconstruct a random same-class partner instead.
                target_idx = np.array(
                    [rng.choice(class_pools[int(c)]) for c in y[idx]]
                )
                targets = scaled[target_idx]
            else:
                targets = inputs
            opt.zero_grad()
            recon = decoder(encoder(Tensor(inputs)))
            loss = ((recon - Tensor(targets)) ** 2).mean()
            loss.backward()
            opt.step()
        return encoder, decoder

    def fit_resample(self, x, y):
        """Balance (x, y) by SMOTE in a learned latent space."""
        x, y = validate_xy(x, y)
        targets = sampling_targets(y, self.sampling_strategy)
        if not targets:
            return x.copy(), y.copy()
        start = monotonic()
        rng = np.random.default_rng(self.random_state)
        scaler = fit_feature_scaler(x)
        scaled = scaler.transform(x)

        encoder, decoder = self._train_autoencoder(scaled, y, rng)
        latents = encoder(Tensor(scaled)).data

        # Plain SMOTE in latent space, then decode the synthetic block.
        smote = SMOTE(
            k_neighbors=self.k_neighbors,
            sampling_strategy=self.sampling_strategy,
            random_state=self.random_state,
        )
        latents_res, labels_res = smote.fit_resample(latents, y)
        synth_latents = latents_res[x.shape[0]:]
        synth_labels = labels_res[x.shape[0]:]
        if synth_latents.shape[0]:
            decoded = decoder(Tensor(synth_latents)).data
            synth_x = scaler.inverse(decoded)
            out_x = np.concatenate([x, synth_x])
            out_y = np.concatenate([y, synth_labels])
        else:
            out_x, out_y = x.copy(), y.copy()
        self.fit_seconds = monotonic() - start
        return out_x, out_y
