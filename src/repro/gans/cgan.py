"""CGAN over-sampling: one conditional generative model per class.

Following the paper's description (and the SA-CGAN lineage it cites),
this baseline trains a *separate* GAN for every class that needs
synthetic samples — which is what makes it "computationally infeasible
with an increased number of classes" (paper §V-D).  Each per-class GAN
is a small MLP pair over min-max-scaled features.
"""

from __future__ import annotations


import numpy as np

from .base import GanCore, MLP, fit_feature_scaler
from .._validation import validate_xy
from ..sampling.base import sampling_targets
from ..telemetry import monotonic

__all__ = ["CGAN"]


class CGAN:
    """Per-class GAN over-sampler.

    Parameters
    ----------
    latent_dim:
        Generator noise dimension.
    hidden:
        Hidden width of the MLPs.
    epochs:
        Adversarial steps per class (each step is one D+G update on a
        minibatch resampled from the class).
    batch_size:
        Adversarial minibatch size (capped at the class size).
    """

    def __init__(
        self,
        latent_dim=16,
        hidden=64,
        epochs=150,
        batch_size=32,
        lr=2e-3,
        sampling_strategy="auto",
        random_state=0,
    ):
        self.latent_dim = latent_dim
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.sampling_strategy = sampling_strategy
        self.random_state = random_state
        self.fit_seconds = 0.0
        self.models_trained = 0

    def _train_class_gan(self, data, seed):
        d = data.shape[1]
        rng = np.random.default_rng(seed)
        gen = MLP(
            [self.latent_dim, self.hidden, d], out_activation="tanh", rng=rng
        )
        disc = MLP([d, self.hidden, 1], out_activation="sigmoid", rng=rng)
        gan = GanCore(gen, disc, self.latent_dim, lr=self.lr, seed=seed)
        n = data.shape[0]
        bs = min(self.batch_size, n)
        for _ in range(self.epochs):
            idx = gan.rng.integers(0, n, size=bs)
            gan.train_step(data[idx])
        return gan

    def fit_resample(self, x, y):
        """Balance (x, y) by training one GAN per deficient class."""
        x, y = validate_xy(x, y)
        targets = sampling_targets(y, self.sampling_strategy)
        if not targets:
            return x.copy(), y.copy()
        scaler = fit_feature_scaler(x)
        start = monotonic()
        new_x, new_y = [x], [y]
        self.models_trained = 0
        for cls, n_new in sorted(targets.items()):
            class_data = scaler.transform(x[y == cls])
            gan = self._train_class_gan(class_data, self.random_state + cls)
            self.models_trained += 1
            synth = scaler.inverse(gan.generate(n_new))
            new_x.append(synth)
            new_y.append(np.full(n_new, cls, dtype=np.int64))
        self.fit_seconds = monotonic() - start
        return np.concatenate(new_x), np.concatenate(new_y)
