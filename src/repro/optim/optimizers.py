"""First-order optimizers: SGD (momentum/Nesterov) and Adam."""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate."""

    def __init__(self, params, lr):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive, got %r" % lr)
        self.lr = float(lr)

    def zero_grad(self):
        for p in self.params:
            p.zero_grad()

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, Nesterov and weight decay.

    Matches torch.optim.SGD semantics: weight decay is added to the
    gradient (L2 regularization), momentum buffers accumulate the
    decayed gradient.
    """

    def __init__(self, params, lr=0.1, momentum=0.0, weight_decay=0.0, nesterov=False):
        super().__init__(params, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._buffers = [None] * len(self.params)

    def step(self):
        # Updates run in place: parameters keep their dtype (no float64
        # round-trip) and the only per-step allocations are the decayed/
        # scaled gradient temporaries.
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                buf = self._buffers[i]
                if buf is None:
                    buf = grad.astype(p.data.dtype, copy=True)
                    self._buffers[i] = buf
                else:
                    buf *= self.momentum
                    buf += grad
                if self.nesterov:
                    grad = grad + self.momentum * buf
                else:
                    grad = buf
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self):
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1 - b1 ** self._t
        bias2 = 1 - b2 ** self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m, v = self._m[i], self._v[i]
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


def clip_grad_norm(params, max_norm):
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
