"""Learning-rate schedulers driving an Optimizer's ``lr`` attribute.

The paper's training regime (from Cui et al. 2019) uses SGD with a
multi-step decay and linear warmup; cosine decay is provided for the
extension experiments.
"""

from __future__ import annotations

import math

__all__ = ["LRScheduler", "StepLR", "MultiStepLR", "CosineAnnealingLR", "WarmupWrapper"]


class LRScheduler:
    """Base scheduler; call :meth:`step` once per epoch."""

    def __init__(self, optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self):
        raise NotImplementedError

    def step(self):
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    @property
    def current_lr(self):
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Decay the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size, gamma=0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self):
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class MultiStepLR(LRScheduler):
    """Decay the LR by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer, milestones, gamma=0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self):
        passed = sum(1 for m in self.milestones if self.epoch >= m)
        return self.base_lr * self.gamma ** passed


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer, t_max, eta_min=0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self):
        t = min(self.epoch, self.t_max)
        cos = (1 + math.cos(math.pi * t / self.t_max)) / 2
        return self.eta_min + (self.base_lr - self.eta_min) * cos


class WarmupWrapper(LRScheduler):
    """Linear warmup for the first ``warmup_epochs``, then delegate.

    Mirrors the warmup used in the Cui et al. training regime the paper
    follows.
    """

    def __init__(self, scheduler, warmup_epochs):
        super().__init__(scheduler.optimizer)
        if warmup_epochs < 0:
            raise ValueError("warmup_epochs must be non-negative")
        self.scheduler = scheduler
        self.warmup_epochs = warmup_epochs

    def get_lr(self):
        if self.warmup_epochs and self.epoch <= self.warmup_epochs:
            return self.base_lr * self.epoch / self.warmup_epochs
        return self.scheduler.get_lr()

    def step(self):
        self.epoch += 1
        self.scheduler.epoch = self.epoch
        self.optimizer.lr = self.get_lr()
