"""Opt-in tensor-op profiler hooked into the autograd tape.

The autograd engine (:mod:`repro.tensor`) and the module system
(:mod:`repro.nn`) expose two hook points guarded by a single ``enabled``
flag, mirroring the tape sanitizer's design: when profiling is off, the
hot path pays one attribute read per op and nothing else.

Inside a :class:`profile_ops` block three aggregates are collected:

* **forward op counts** — how many tape ops of each kind ran
  (``__matmul__``, ``conv2d``, ``relu`` ...);
* **backward wall time per op** — each backward closure is timed
  individually during ``Tensor.backward``;
* **forward wall time per layer** — every :class:`repro.nn.Module`
  call is timed by class name (cumulative: a block's time includes its
  children's).

Usage::

    from repro.telemetry import profile_ops

    with profile_ops() as prof:
        loss = model(x).sum()
        loss.backward()
    stats = prof.stats()
    # {"forward_ops": {...}, "backward": {...}, "layers": {...}}
"""

from __future__ import annotations

from .clock import monotonic

__all__ = ["profile_ops", "is_profiling"]


class _ProfilerState:
    __slots__ = ("enabled", "forward_ops", "backward", "layers")

    def __init__(self):
        self.enabled = False
        self.forward_ops = {}
        self.backward = {}
        self.layers = {}

    def reset(self):
        self.forward_ops = {}
        self.backward = {}
        self.layers = {}


_STATE = _ProfilerState()


def is_profiling():
    """True inside an active :class:`profile_ops` block."""
    return _STATE.enabled


def _op_name(backward):
    """Derive the op name from a backward closure's qualname.

    ``Tensor.__mul__.<locals>.backward`` -> ``__mul__``;
    ``conv2d.<locals>.backward`` -> ``conv2d``.
    """
    qual = getattr(backward, "__qualname__", "")
    parts = qual.split(".<locals>")[0].rsplit(".", 1)
    return parts[-1] if parts and parts[-1] else "<op>"


# ----------------------------------------------------------------------
# Hook points — called from repro.tensor / repro.nn when enabled.
# ----------------------------------------------------------------------
def _on_forward_op(backward):
    name = _op_name(backward)
    state = _STATE.forward_ops
    state[name] = state.get(name, 0) + 1


def _on_backward_op(backward, seconds):
    name = _op_name(backward)
    entry = _STATE.backward.get(name)
    if entry is None:
        _STATE.backward[name] = [1, seconds]
    else:
        entry[0] += 1
        entry[1] += seconds


def _on_layer_forward(layer_name, seconds):
    entry = _STATE.layers.get(layer_name)
    if entry is None:
        _STATE.layers[layer_name] = [1, seconds]
    else:
        entry[0] += 1
        entry[1] += seconds


class profile_ops:
    """Context manager enabling the tensor-op profiler.

    Re-entrant blocks accumulate into the innermost block's aggregates.
    On exit, the collected stats are emitted as a ``profile`` event on
    the process-wide tracer (when tracing is enabled) so profiles land
    in the same JSONL file as spans and metrics.
    """

    def __init__(self, clock=None):
        self._clock = clock if clock is not None else monotonic
        self._prev = False

    def __enter__(self):
        self._prev = _STATE.enabled
        if not self._prev:
            _STATE.reset()
        _STATE.enabled = True
        return self

    def __exit__(self, exc_type, exc, tb):
        _STATE.enabled = self._prev
        if not self._prev:
            from .tracer import get_tracer

            tracer = get_tracer()
            if tracer.enabled:
                tracer.event("profile", **self.stats())
        return False

    @staticmethod
    def stats():
        """Aggregates collected so far (JSON-serializable)."""
        return {
            "forward_ops": dict(sorted(_STATE.forward_ops.items())),
            "backward": {
                name: {"count": entry[0], "seconds": entry[1]}
                for name, entry in sorted(_STATE.backward.items())
            },
            "layers": {
                name: {"count": entry[0], "seconds": entry[1]}
                for name, entry in sorted(_STATE.layers.items())
            },
        }
