"""Structured span tracing with JSON-lines export.

A :class:`Tracer` records *spans* (named, nested regions with
monotonic-clock durations) and *events* (instantaneous markers).  The
process-wide tracer defaults to :class:`NullTracer`, whose every method
is a no-op returning shared singletons — instrumented hot paths pay one
attribute read and no allocations when tracing is off.

Usage::

    from repro import telemetry

    with telemetry.session(trace_out="trace.jsonl"):
        run_table2(config)          # instrumented internally

    # or manually:
    tracer = telemetry.get_tracer()
    with tracer.span("phase1", loss="ce") as sp:
        ...
        sp.set(epochs_done=12)      # attach attrs mid-span
    tracer.event("divergence", epoch=3, batch=17)
    tracer.flush("trace.jsonl")

Every record is one JSON object per line: spans carry ``ts`` (seconds
since the tracer started), ``dur``, ``depth`` and ``parent``; the final
record is a snapshot of the metrics registry so one file holds the
complete timing *and* counter picture of a run.
"""

from __future__ import annotations

import json

from .clock import monotonic, wall_time

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
]


class Span:
    """One open (or closed) traced region.  Use as a context manager."""

    __slots__ = ("name", "attrs", "start", "duration", "depth", "parent",
                 "_tracer")

    def __init__(self, tracer, name, attrs):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = None
        self.duration = None
        self.depth = 0
        self.parent = None

    def set(self, **attrs):
        """Merge attributes into the span (e.g. outcomes known at exit)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False


class _NullSpan:
    """Shared do-nothing span; one instance serves every disabled call."""

    __slots__ = ()

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every call is a no-op on shared singletons."""

    __slots__ = ()
    enabled = False

    def span(self, name, **attrs):
        return _NULL_SPAN

    def event(self, name, **attrs):
        return None

    def annotate(self, **attrs):
        return None

    def merge(self, records, ts_offset=None):
        return None

    def flush(self, path=None):
        return []


_NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer: nested spans, events, JSONL export.

    Parameters
    ----------
    clock:
        Duration clock; defaults to the telemetry monotonic clock.  Tests
        inject a fake clock to make durations deterministic.
    """

    enabled = True

    def __init__(self, clock=None):
        self._clock = clock if clock is not None else monotonic
        self._t0 = self._clock()
        self._stack = []
        self.records = []
        self.started_at = wall_time()

    # ------------------------------------------------------------------
    def span(self, name, **attrs):
        """Create a span context manager; timing starts on ``__enter__``."""
        return Span(self, name, attrs)

    def event(self, name, **attrs):
        """Record an instantaneous marker (e.g. a divergence)."""
        self.records.append({
            "type": "event",
            "name": name,
            "ts": self._clock() - self._t0,
            "depth": len(self._stack),
            "attrs": attrs,
        })

    def annotate(self, **attrs):
        """Attach attributes to the innermost open span, if any."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def merge(self, records, ts_offset=None):
        """Forward records captured by another tracer (a worker process).

        Each record is re-anchored under the innermost *open* span of
        this tracer: depths shift by the current stack depth, top-level
        forwarded spans adopt the open span as their ``parent``, and
        timestamps are rebased onto this tracer's clock (by default the
        merge instant).  Forwarded records are marked with a
        ``forwarded`` attribute so trace consumers can tell them from
        locally recorded spans.
        """
        base_depth = len(self._stack)
        parent = self._stack[-1].name if self._stack else None
        if ts_offset is None:
            ts_offset = self._clock() - self._t0
        for record in records:
            if record.get("type") == "metrics":
                continue
            record = dict(record)
            record["ts"] = record.get("ts", 0.0) + ts_offset
            record["depth"] = record.get("depth", 0) + base_depth
            if record.get("type") == "span" and record.get("parent") is None:
                record["parent"] = parent
            attrs = dict(record.get("attrs") or {})
            attrs.setdefault("forwarded", True)
            record["attrs"] = attrs
            self.records.append(record)

    # ------------------------------------------------------------------
    def _push(self, span):
        span.start = self._clock()
        span.depth = len(self._stack)
        span.parent = self._stack[-1].name if self._stack else None
        self._stack.append(span)

    def _pop(self, span):
        now = self._clock()
        span.duration = now - span.start
        # Tolerate out-of-order exits (an exception unwinding through
        # several spans): close everything above the span too.
        while self._stack:
            top = self._stack.pop()
            if top is not span and top.duration is None:
                top.duration = now - top.start
                top.attrs.setdefault("unclosed", True)
            self._record(top)
            if top is span:
                break

    def _record(self, span):
        self.records.append({
            "type": "span",
            "name": span.name,
            "ts": span.start - self._t0,
            "dur": span.duration,
            "depth": span.depth,
            "parent": span.parent,
            "attrs": span.attrs,
        })

    # ------------------------------------------------------------------
    def flush(self, path=None, metrics=None):
        """Close dangling spans, append a metrics snapshot, export JSONL.

        Returns the list of records.  With ``path``, the JSONL file is
        written atomically (temp + fsync + rename) so a crash can never
        leave a torn trace.  ``metrics`` defaults to the process-wide
        registry snapshot.
        """
        now = self._clock()
        while self._stack:
            top = self._stack.pop()
            top.duration = now - top.start
            top.attrs.setdefault("unclosed", True)
            self._record(top)
        if metrics is None:
            from .metrics import get_metrics

            metrics = get_metrics().snapshot()
        records = list(self.records)
        records.append({
            "type": "metrics",
            "ts": now - self._t0,
            "started_at": self.started_at,
            **metrics,
        })
        if path is not None:
            from ..utils.serialization import atomic_write

            payload = "".join(
                json.dumps(record, sort_keys=True) + "\n" for record in records
            ).encode("utf-8")
            atomic_write(path, lambda handle: handle.write(payload))
        return records


_TRACER = _NULL_TRACER


def get_tracer():
    """The process-wide tracer (a :class:`NullTracer` unless enabled)."""
    return _TRACER


def set_tracer(tracer):
    """Install ``tracer`` process-wide; returns the previous tracer.

    Pass ``None`` to restore the shared :class:`NullTracer`.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else _NULL_TRACER
    return previous
