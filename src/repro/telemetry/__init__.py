"""repro.telemetry — tracing, metrics and profiling for the repro stack.

Three cooperating instruments behind one on/off switch:

* :class:`Tracer` — nested spans with monotonic-clock durations and
  instantaneous events, exported as JSON-lines (one object per line);
* :class:`MetricsRegistry` — counters / gauges / histograms (batches
  per second, loss curves, per-class synthetic-sample counts, extractor
  cache hit rates), snapshotted into every flushed trace;
* :class:`profile_ops` — opt-in tensor-op profiler hooked into the
  autograd tape (forward op counts, per-op backward wall time,
  per-layer forward wall time).

The default state is **off**: the process-wide tracer and registry are
shared null objects whose methods are allocation-free no-ops, so the
instrumented hot paths (``Trainer.fit``, ``fit_resample``, ``run_cell``)
behave byte-identically to uninstrumented code.  Turn everything on for
a region with :func:`session`::

    from repro import telemetry

    with telemetry.session(trace_out="trace.jsonl"):
        run_table2(config)

    # later: python -m repro.telemetry trace.jsonl   (or `repro-trace`)

or process-wide with :func:`enable` / :func:`disable` (what the
``--trace-out`` CLI flag uses).
"""

from __future__ import annotations

from .clock import monotonic, wall_time
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    get_metrics,
    set_metrics,
)
from .profiler import is_profiling, profile_ops
from .summarize import load_trace, render_trace_report, summarize_trace
from .tracer import NullTracer, Span, Tracer, get_tracer, set_tracer

__all__ = [
    "monotonic",
    "wall_time",
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "get_metrics",
    "set_metrics",
    "profile_ops",
    "is_profiling",
    "load_trace",
    "summarize_trace",
    "render_trace_report",
    "enable",
    "disable",
    "telemetry_enabled",
    "session",
]


def telemetry_enabled():
    """True when a recording tracer is installed process-wide."""
    return get_tracer().enabled


def enable():
    """Install a fresh recording tracer + metrics registry process-wide.

    Returns the new :class:`Tracer`.  Idempotent in spirit but not in
    state: calling it twice discards the first tracer's records — use
    :func:`session` for scoped/nested instrumentation.
    """
    tracer = Tracer()
    set_tracer(tracer)
    set_metrics(MetricsRegistry())
    return tracer


def disable(trace_out=None):
    """Flush and uninstall the process-wide tracer.

    With ``trace_out``, the trace (spans, events, metrics snapshot) is
    written there as JSONL first.  Returns the flushed record list (empty
    when telemetry was already off).
    """
    tracer = get_tracer()
    records = tracer.flush(trace_out) if tracer.enabled else []
    set_tracer(None)
    set_metrics(None)
    return records


class session:
    """Scoped telemetry: enable on entry, flush + restore on exit.

    Nestable — the previous tracer/registry pair is reinstated when the
    block exits, so a traced region inside a traced region keeps its own
    records.  The flushed record list is available as ``.records`` after
    exit.
    """

    def __init__(self, trace_out=None):
        self.trace_out = trace_out
        self.tracer = None
        self.records = []
        self._prev_tracer = None
        self._prev_metrics = None

    def __enter__(self):
        self.tracer = Tracer()
        self._prev_tracer = set_tracer(self.tracer)
        self._prev_metrics = set_metrics(MetricsRegistry())
        return self.tracer

    def __exit__(self, exc_type, exc, tb):
        self.records = self.tracer.flush(self.trace_out)
        set_tracer(self._prev_tracer)
        set_metrics(self._prev_metrics)
        return False
