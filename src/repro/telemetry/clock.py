"""The telemetry time sources.

All *duration* measurements in this repository go through
:func:`monotonic` — an alias of ``time.perf_counter`` — so a wall-clock
adjustment (NTP step, DST, manual reset) can never produce a negative
``train_seconds`` or a cell timing that disagrees with the trace.
``time.time()`` is reserved for *timestamps* (when something happened,
not how long it took) and is only permitted inside this package; the
``OBS001`` lint rule enforces that boundary everywhere else.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "wall_time"]

#: Monotonic high-resolution clock for durations (seconds, float).
monotonic = time.perf_counter


def wall_time():
    """Wall-clock UNIX timestamp — for labeling traces, never durations."""
    return time.time()
