"""Counters, gauges and histograms behind a process-wide registry.

The registry mirrors the tracer's on/off design: the default
:class:`NullMetricsRegistry` hands out three shared no-op instruments,
so disabled call sites like ``get_metrics().counter("x").inc()`` cost
two attribute lookups and allocate nothing.  When telemetry is enabled
(see :func:`repro.telemetry.enable`), a real :class:`MetricsRegistry`
is installed and its :meth:`~MetricsRegistry.snapshot` is appended to
every flushed trace.

Instrument semantics:

* **Counter** — monotonically increasing total (batches seen, cache
  hits, synthetic samples emitted).
* **Gauge** — last-written value (current loss, current LR).
* **Histogram** — running count/sum/min/max/last of observations
  (per-epoch losses, per-cell seconds); ``series=True`` additionally
  keeps the ordered observations, which is how loss *curves* ride along
  in the metrics snapshot.
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "get_metrics",
    "set_metrics",
]


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only increase; got %r" % (amount,))
        self.value += amount
        return self.value


class Gauge:
    """Last-value-wins instrument."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def set(self, value):
        self.value = value
        return value


class Histogram:
    """Running summary (count/sum/min/max/last) of observed values."""

    __slots__ = ("count", "total", "min", "max", "last", "values")

    def __init__(self, series=False):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.last = None
        self.values = [] if series else None

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.last = value
        if self.values is not None:
            self.values.append(value)
        return value

    @property
    def mean(self):
        return self.total / self.count if self.count else None

    def merge_summary(self, summary):
        """Fold another histogram's :meth:`summary` into this one.

        Count and sum accumulate, min/max widen, ``last`` adopts the
        merged summary's value (the merge happens when that observation
        stream finishes), and series observations are appended.
        """
        count = int(summary.get("count") or 0)
        if count == 0:
            return self
        self.count += count
        self.total += float(summary.get("sum") or 0.0)
        for bound, pick in (("min", min), ("max", max)):
            other = summary.get(bound)
            if other is not None:
                mine = getattr(self, bound)
                setattr(self, bound, other if mine is None else pick(mine, other))
        if summary.get("last") is not None:
            self.last = summary["last"]
        if self.values is not None and summary.get("series"):
            self.values.extend(summary["series"])
        return self

    def summary(self):
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "last": self.last,
        }
        if self.values is not None:
            out["series"] = list(self.values)
        return out


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()
    value = None
    count = 0

    def inc(self, amount=1):
        return 0

    def set(self, value):
        return value

    def observe(self, value):
        return value


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: every lookup returns the shared no-op."""

    __slots__ = ()
    enabled = False

    def counter(self, name):
        return _NULL_INSTRUMENT

    def gauge(self, name):
        return _NULL_INSTRUMENT

    def histogram(self, name, series=False):
        return _NULL_INSTRUMENT

    def snapshot(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snapshot):
        return None


_NULL_METRICS = NullMetricsRegistry()


class MetricsRegistry:
    """Named instruments, created on first use."""

    enabled = True

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    def counter(self, name):
        try:
            return self._counters[name]
        except KeyError:
            instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name):
        try:
            return self._gauges[name]
        except KeyError:
            instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name, series=False):
        try:
            return self._histograms[name]
        except KeyError:
            instrument = self._histograms[name] = Histogram(series=series)
            return instrument

    def merge_snapshot(self, snapshot):
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters add, gauges are last-write-wins (a ``None`` gauge never
        overwrites), histograms accumulate via
        :meth:`Histogram.merge_summary`.  This is how worker-process
        metrics are folded into the parent registry when a parallel
        region completes.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name, series="series" in summary).merge_summary(
                summary
            )
        return self

    def snapshot(self):
        """JSON-serializable view of every instrument."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.summary() for k, h in sorted(self._histograms.items())
            },
        }


_METRICS = _NULL_METRICS


def get_metrics():
    """The process-wide metrics registry (null unless telemetry is on)."""
    return _METRICS


def set_metrics(registry):
    """Install ``registry`` process-wide; returns the previous registry.

    Pass ``None`` to restore the shared null registry.
    """
    global _METRICS
    previous = _METRICS
    _METRICS = registry if registry is not None else _NULL_METRICS
    return previous
