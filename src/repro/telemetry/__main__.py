"""Command-line trace summarizer: ``repro-trace`` / ``python -m repro.telemetry``.

Renders a JSONL trace (produced by ``--trace-out`` on the experiment CLI
or by :func:`repro.telemetry.session`) as the per-phase / per-cell /
per-sampler wall-time tables plus the metrics snapshot.

Examples::

    PYTHONPATH=src python -m repro.experiments t2 --trace-out trace.jsonl
    PYTHONPATH=src python -m repro.telemetry trace.jsonl
    PYTHONPATH=src python -m repro.telemetry trace.jsonl --format json
"""

from __future__ import annotations

import argparse
import json
import sys

from .summarize import render_trace_report, summarize_trace

__all__ = ["main"]


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarize a repro telemetry trace (JSONL) into "
        "per-phase, per-cell and per-sampler wall-time tables.",
    )
    parser.add_argument("trace", help="path to a .jsonl trace file")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    args = parser.parse_args(argv)

    try:
        summary = summarize_trace(args.trace)
    except (OSError, json.JSONDecodeError) as exc:
        print("repro-trace: error: %s" % exc, file=sys.stderr)
        return 2

    try:
        if args.format == "json":
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_trace_report(summary))
    except BrokenPipeError:  # repro: noqa[RES002] downstream closed the pipe early; the summary was already computed
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
