"""Trace-file summarization: JSONL -> aggregate tables.

:func:`summarize_trace` folds a trace (path or record list) into
aggregates — per-phase wall time (the paper's phase1/phase2/phase3
decomposition), per-span statistics, per-cell and per-sampler timings,
plus the metrics snapshot — and :func:`render_trace_report` renders them
in the same ``format_table`` style as the experiment reports.  The
``repro-trace`` console script (see :mod:`repro.telemetry.__main__`)
wraps both.
"""

from __future__ import annotations

import json

__all__ = ["load_trace", "summarize_trace", "render_trace_report"]

#: Span names contributing to each of the paper's three phases.
PHASE_SPANS = {
    "phase1": ("phase1",),
    "phase2": ("extract", "resample", "sampler.fit_resample"),
    "phase3": ("finetune",),
}


def load_trace(path, on_corrupt=None):
    """Parse a JSONL trace file into a list of records.

    A crashed run leaves a partially written trace (a torn final line,
    or — when the crash raced the atomic flush — older bytes mixed in).
    Lines that fail to decode as JSON objects are *skipped*, not fatal:
    a partial trace is still summarizable, which is exactly when a
    summary is most needed.  ``on_corrupt(line_number, line)`` is
    called for each skipped line so callers can count or report them.
    """
    records = []
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                record = None
            if not isinstance(record, dict):
                if on_corrupt is not None:
                    on_corrupt(number, line)
                continue
            records.append(record)
    return records


def _span_groups(spans):
    groups = {}
    for span in spans:
        entry = groups.setdefault(
            span["name"], {"count": 0, "seconds": 0.0, "max": 0.0}
        )
        entry["count"] += 1
        entry["seconds"] += span["dur"]
        entry["max"] = max(entry["max"], span["dur"])
    for entry in groups.values():
        entry["mean"] = entry["seconds"] / entry["count"]
    return groups


def _phase_seconds(spans):
    """Per-phase wall time, avoiding parent/child double counting.

    A ``sampler.fit_resample`` span nested under a ``resample`` span or
    inside another sampler (combined pipelines like SMOTE-ENN) is
    already covered by its parent and is skipped.
    """
    phases = {name: {"count": 0, "seconds": 0.0} for name in PHASE_SPANS}
    for span in spans:
        for phase, names in PHASE_SPANS.items():
            if span["name"] not in names:
                continue
            if span["name"] == "sampler.fit_resample" and span.get(
                "parent"
            ) in ("resample", "sampler.fit_resample"):
                continue
            phases[phase]["count"] += 1
            phases[phase]["seconds"] += span["dur"]
    return phases


def summarize_trace(trace):
    """Aggregate a trace (path or record list) into a summary dict.

    Corrupt/truncated lines in a trace *file* are skipped and counted
    in the summary's ``corrupt_lines`` (the report prints a warning);
    record lists are assumed already decoded.
    """
    corrupt = []
    if isinstance(trace, str):
        records = load_trace(trace, on_corrupt=lambda n, _line: corrupt.append(n))
    else:
        records = list(trace)
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    metrics = {}
    for record in records:
        if record.get("type") == "metrics":
            metrics = record

    cells = []
    for span in spans:
        if span["name"] == "cell":
            attrs = span.get("attrs", {})
            cells.append({
                "cell": attrs.get("cell", "?"),
                "seconds": span["dur"],
                "outcome": attrs.get("outcome", "?"),
                "attempts": attrs.get("attempts", 1),
            })
    cells.sort(key=lambda c: -c["seconds"])

    samplers = {}
    for span in spans:
        if span["name"] != "sampler.fit_resample":
            continue
        attrs = span.get("attrs", {})
        entry = samplers.setdefault(
            attrs.get("sampler", "?"),
            {"calls": 0, "seconds": 0.0, "synthetic": 0},
        )
        entry["calls"] += 1
        entry["seconds"] += span["dur"]
        entry["synthetic"] += int(attrs.get("n_synthetic", 0))

    total = 0.0
    for span in spans:
        if span.get("depth") == 0:
            total += span["dur"]

    guard = {
        "watchdog_kills": [],
        "quarantined": [],
        "breakers_opened": [],
        "short_circuits": 0,
    }
    for event in events:
        attrs = event.get("attrs", {})
        if event["name"] == "guard.watchdog_kill":
            guard["watchdog_kills"].append({
                "task": attrs.get("task", "?"),
                "elapsed": attrs.get("elapsed", 0.0),
                "phase": attrs.get("phase"),
                "dispatch": attrs.get("dispatch", 0),
            })
        elif event["name"] == "guard.quarantined":
            guard["quarantined"].append({
                "reason": attrs.get("reason", "?"),
                "target": attrs.get("target", "?"),
                "files": attrs.get("files", 0),
            })
        elif event["name"] == "guard.breaker_opened":
            guard["breakers_opened"].append({
                "key": attrs.get("key", "?"),
                "signature": attrs.get("signature", "?"),
                "failures": attrs.get("failures", 0),
            })
        elif event["name"] == "guard.breaker_short_circuit":
            guard["short_circuits"] += 1

    serve = {"lifecycle": [], "shed": 0, "breakers_opened": [],
             "journal_corrupt": 0, "compactions": 0, "degraded_entries": 0,
             "worker_deaths": 0}
    for event in events:
        attrs = event.get("attrs", {})
        if event["name"] in ("serve.started", "serve.stopped",
                             "serve.drain_deadline"):
            serve["lifecycle"].append({
                "event": event["name"], "ts": event.get("ts", 0.0),
                **{k: attrs[k] for k in sorted(attrs) if k != "forwarded"},
            })
        elif event["name"] == "serve.shed":
            serve["shed"] += 1
        elif event["name"] == "serve.breaker_opened":
            serve["breakers_opened"].append({
                "kind": attrs.get("kind", "?"),
                "signature": attrs.get("signature", "?"),
            })
        elif event["name"] == "serve.journal_corrupt":
            serve["journal_corrupt"] += int(attrs.get("lines", 0))
        elif event["name"] == "serve.compacted":
            serve["compactions"] += 1
        elif event["name"] == "serve.degraded_enter":
            serve["degraded_entries"] += 1
        elif event["name"] == "parallel.worker_died":
            serve["worker_deaths"] += 1

    return {
        "n_spans": len(spans),
        "n_events": len(events),
        "corrupt_lines": len(corrupt),
        "total_seconds": total,
        "phases": _phase_seconds(spans),
        "spans": _span_groups(spans),
        "cells": cells,
        "samplers": samplers,
        "events": events,
        "guard": guard,
        "serve": serve,
        "counters": metrics.get("counters", {}),
        "gauges": metrics.get("gauges", {}),
        "histograms": metrics.get("histograms", {}),
    }


def render_trace_report(summary):
    """Render a :func:`summarize_trace` summary as aligned text tables."""
    from ..utils.tables import format_table

    sections = [
        "%d span(s), %d event(s), %.2fs top-level wall time"
        % (summary["n_spans"], summary["n_events"], summary["total_seconds"])
    ]
    if summary.get("corrupt_lines"):
        sections[0] += (
            "\nWARNING: skipped %d corrupt/truncated trace line(s) — "
            "summary covers the readable remainder" % summary["corrupt_lines"]
        )

    phase_total = sum(p["seconds"] for p in summary["phases"].values())
    rows = []
    for phase in ("phase1", "phase2", "phase3"):
        entry = summary["phases"][phase]
        share = entry["seconds"] / phase_total if phase_total > 0 else 0.0
        rows.append([
            phase,
            str(entry["count"]),
            "%.3fs" % entry["seconds"],
            "%.1f%%" % (100.0 * share),
        ])
    sections.append(format_table(
        ["phase", "spans", "seconds", "share"],
        rows,
        title="Per-phase wall time (train / resample / fine-tune)",
    ))

    rows = [
        [name, str(e["count"]), "%.3fs" % e["seconds"],
         "%.4fs" % e["mean"], "%.4fs" % e["max"]]
        for name, e in sorted(
            summary["spans"].items(), key=lambda kv: -kv[1]["seconds"]
        )
    ]
    if rows:
        sections.append(format_table(
            ["span", "count", "total", "mean", "max"],
            rows,
            title="Spans by name",
        ))

    if summary["cells"]:
        rows = [
            [c["cell"], "%.3fs" % c["seconds"], str(c["outcome"]),
             str(c["attempts"])]
            for c in summary["cells"]
        ]
        sections.append(format_table(
            ["cell", "seconds", "outcome", "attempts"],
            rows,
            title="Sweep cells (slowest first)",
        ))

    if summary["samplers"]:
        rows = [
            [name, str(e["calls"]), "%.3fs" % e["seconds"], str(e["synthetic"])]
            for name, e in sorted(
                summary["samplers"].items(), key=lambda kv: -kv[1]["seconds"]
            )
        ]
        sections.append(format_table(
            ["sampler", "calls", "seconds", "synthetic"],
            rows,
            title="Sampler fit_resample cost",
        ))

    if summary["counters"]:
        rows = [
            [name, str(value)]
            for name, value in sorted(summary["counters"].items())
        ]
        sections.append(format_table(
            ["counter", "value"], rows, title="Counters"
        ))

    if summary["histograms"]:
        rows = []
        for name, h in sorted(summary["histograms"].items()):
            rows.append([
                name,
                str(h.get("count", 0)),
                "-" if h.get("mean") is None else "%.4f" % h["mean"],
                "-" if h.get("min") is None else "%.4f" % h["min"],
                "-" if h.get("max") is None else "%.4f" % h["max"],
            ])
        sections.append(format_table(
            ["histogram", "count", "mean", "min", "max"],
            rows,
            title="Histograms",
        ))

    guard = summary.get("guard") or {}
    if (guard.get("watchdog_kills") or guard.get("quarantined")
            or guard.get("breakers_opened") or guard.get("short_circuits")):
        lines = ["Guard (watchdog / integrity / breakers):"]
        for kill in guard.get("watchdog_kills", ()):
            lines.append(
                "  watchdog killed %s after %.2fs (dispatch %d, phase %s)"
                % (kill["task"], kill["elapsed"], kill["dispatch"],
                   kill["phase"] if kill["phase"] is not None else "unknown")
            )
        for item in guard.get("quarantined", ()):
            lines.append(
                "  quarantined %d file(s) -> %s (%s)"
                % (item["files"], item["target"], item["reason"])
            )
        for opened in guard.get("breakers_opened", ()):
            lines.append(
                "  breaker opened for %s after %d failure(s): %s"
                % (opened["key"], opened["failures"], opened["signature"])
            )
        if guard.get("short_circuits"):
            lines.append(
                "  %d cell(s) short-circuited by open breakers"
                % guard["short_circuits"]
            )
        sections.append("\n".join(lines))

    serve = summary.get("serve") or {}
    if (serve.get("lifecycle") or serve.get("shed")
            or serve.get("breakers_opened") or serve.get("journal_corrupt")
            or serve.get("compactions") or serve.get("degraded_entries")
            or serve.get("worker_deaths")):
        lines = ["Serve (daemon lifecycle / admission / breakers):"]
        for item in serve.get("lifecycle", ()):
            attrs = ", ".join(
                "%s=%s" % (k, v) for k, v in sorted(item.items())
                if k not in ("event", "ts")
            )
            lines.append("  %8.3fs  %s  %s" % (item["ts"], item["event"], attrs))
        if serve.get("shed"):
            lines.append("  %d request(s) shed by admission control"
                         % serve["shed"])
        for opened in serve.get("breakers_opened", ()):
            lines.append("  breaker opened for kind %s: %s"
                         % (opened["kind"], opened["signature"]))
        if serve.get("journal_corrupt"):
            lines.append("  %d corrupt journal line(s) skipped on replay"
                         % serve["journal_corrupt"])
        if serve.get("compactions"):
            lines.append("  %d journal compaction(s)" % serve["compactions"])
        if serve.get("worker_deaths"):
            lines.append("  %d worker death(s) (respawned + re-dispatched)"
                         % serve["worker_deaths"])
        if serve.get("degraded_entries"):
            lines.append("  entered degraded mode %d time(s)"
                         % serve["degraded_entries"])
        sections.append("\n".join(lines))

    anomalies = [
        e for e in summary["events"]
        if e["name"] in ("divergence", "timeout", "cell.failed")
    ]
    if anomalies:
        lines = ["Anomaly events:"]
        for event in anomalies:
            attrs = ", ".join(
                "%s=%s" % (k, v) for k, v in sorted(event["attrs"].items())
            )
            lines.append("  %8.3fs  %s  %s" % (event["ts"], event["name"], attrs))
        sections.append("\n".join(lines))

    return "\n\n".join(sections)
