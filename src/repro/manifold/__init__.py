"""Manifold visualization (exact t-SNE)."""

from .tsne import TSNE, perplexity_calibration

__all__ = ["TSNE", "perplexity_calibration"]
