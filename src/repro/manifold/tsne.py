"""Exact t-SNE (van der Maaten & Hinton 2008), from scratch.

Used to reproduce the paper's Figure 6: a 2-D visualization of the
embedding-space decision boundary between a majority and a minority
class under different over-samplers.

The implementation is the standard exact algorithm:

1. per-point Gaussian bandwidths calibrated to a target perplexity by
   binary search,
2. symmetrized input affinities P,
3. Student-t output affinities Q,
4. KL(P || Q) minimized by gradient descent with momentum and early
   exaggeration.
"""

from __future__ import annotations

import numpy as np

from ..neighbors import pairwise_distances

__all__ = ["TSNE", "perplexity_calibration"]


def _row_affinities(dist_sq_row, beta):
    """Conditional Gaussian affinities for one point at precision beta."""
    p = np.exp(-dist_sq_row * beta)
    p_sum = p.sum()
    if p_sum <= 0:
        return np.zeros_like(p), 0.0
    p = p / p_sum
    # Shannon entropy in nats.
    nz = p > 1e-12
    h = -np.sum(p[nz] * np.log(p[nz]))
    return p, h


def perplexity_calibration(dist_sq, perplexity, tol=1e-4, max_iter=50):
    """Binary-search per-point precisions matching the target perplexity.

    ``dist_sq`` is the (n, n) squared distance matrix with the diagonal
    ignored.  Returns the (n, n) conditional probability matrix.
    """
    n = dist_sq.shape[0]
    if not 1 < perplexity < n:
        raise ValueError("perplexity must be in (1, n_samples)")
    target_entropy = np.log(perplexity)
    P = np.zeros((n, n))
    for i in range(n):
        row = np.delete(dist_sq[i], i)
        beta, beta_min, beta_max = 1.0, 0.0, np.inf
        for _ in range(max_iter):
            p, h = _row_affinities(row, beta)
            diff = h - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> narrower kernel
                beta_min = beta
                beta = beta * 2 if beta_max == np.inf else (beta + beta_max) / 2
            else:
                beta_max = beta
                beta = beta / 2 if beta_min == 0 else (beta + beta_min) / 2
        P[i, np.arange(n) != i] = p
    return P


class TSNE:
    """Exact t-SNE embedding.

    Parameters
    ----------
    n_components:
        Output dimensionality (2 for visualization).
    perplexity:
        Effective neighborhood size.
    learning_rate:
        Gradient-descent step size.
    n_iter:
        Optimization iterations.
    early_exaggeration:
        Factor multiplying P for the first quarter of the iterations.
    init:
        "random" (gaussian, default) or "pca" (scaled principal
        components — more reproducible global structure).
    seed:
        RNG seed for the initial layout.
    """

    def __init__(
        self,
        n_components=2,
        perplexity=15.0,
        learning_rate=100.0,
        n_iter=300,
        early_exaggeration=4.0,
        init="random",
        seed=0,
    ):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        if init not in ("random", "pca"):
            raise ValueError("init must be 'random' or 'pca'")
        self.n_components = n_components
        self.perplexity = perplexity
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.early_exaggeration = early_exaggeration
        self.init = init
        self.seed = seed
        self.kl_history = []

    def _initial_layout(self, x, rng):
        n = x.shape[0]
        if self.init == "pca":
            centered = x - x.mean(axis=0)
            # Principal directions via SVD; scale to the usual 1e-4 std.
            _, _, vt = np.linalg.svd(centered, full_matrices=False)
            coords = centered @ vt[: self.n_components].T
            std = coords.std(axis=0)
            std[std < 1e-12] = 1.0
            return coords / std * 1e-4
        return rng.normal(0.0, 1e-4, size=(n, self.n_components))

    def fit_transform(self, x):
        """Embed rows of ``x`` (n, d) into (n, n_components)."""
        x = np.asarray(x, dtype=np.float64)
        n = x.shape[0]
        if n < 4:
            raise ValueError("t-SNE needs at least 4 points")
        perplexity = min(self.perplexity, (n - 1) / 3.0)

        dist = pairwise_distances(x, x)
        cond_p = perplexity_calibration(dist ** 2, max(perplexity, 1.01))
        P = (cond_p + cond_p.T) / (2.0 * n)
        P = np.maximum(P, 1e-12)

        rng = np.random.default_rng(self.seed)
        Y = self._initial_layout(x, rng)
        velocity = np.zeros_like(Y)
        exag_until = max(self.n_iter // 4, 1)
        self.kl_history = []

        for it in range(self.n_iter):
            p_eff = P * self.early_exaggeration if it < exag_until else P
            # Student-t affinities.
            d2 = pairwise_distances(Y, Y) ** 2
            inv = 1.0 / (1.0 + d2)
            np.fill_diagonal(inv, 0.0)
            Q = inv / inv.sum()
            Q = np.maximum(Q, 1e-12)

            # Gradient of KL(P || Q).
            pq = (p_eff - Q) * inv
            grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ Y)

            momentum = 0.5 if it < exag_until else 0.8
            velocity = momentum * velocity - self.learning_rate * grad
            Y = Y + velocity
            Y = Y - Y.mean(axis=0)

            if it % 25 == 0 or it == self.n_iter - 1:
                kl = float((p_eff * np.log(p_eff / Q)).sum())
                self.kl_history.append(kl)
        return Y
