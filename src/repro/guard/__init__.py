"""repro.guard — supervision layer for the execution substrate.

Three pillars, woven through :mod:`repro.parallel`,
:mod:`repro.resilience`, :mod:`repro.experiments` and
:mod:`repro.telemetry`:

* **Watchdog** — the process pool enforces a per-task wall-clock
  deadline (``RetryPolicy.task_deadline`` / CLI ``--task-deadline``):
  a hung worker is SIGKILLed, attributed with its elapsed time and
  last reported phase (:mod:`~repro.guard.phase`), and the task is
  re-dispatched under the same derived seed, so a hung-then-killed
  run is bit-identical to a clean one.
* **Integrity** — every checkpoint artifact carries a sha256 sidecar;
  :mod:`~repro.guard.integrity` verifies digests on resume and
  quarantines mismatched or truncated artifacts with a structured
  reason so the cell transparently recomputes (``--strict-resume``
  raises :class:`repro.resilience.CheckpointCorruptError` instead).
* **Circuit breaker** — :class:`~repro.guard.breaker.CircuitBreaker`
  trips after N equivalent failures under one configuration key and
  converts further attempts into immediate
  ``FAILED(circuit_open: <signature>)`` cells; state persists in the
  run registry and ``--reset-breakers`` clears it.

All three emit telemetry (``guard.watchdog_kill`` /
``guard.quarantined`` / ``guard.breaker_opened`` events and matching
``guard.*`` counters) that ``repro-trace`` folds into a dedicated
guard section, and all three are exercised end-to-end by the ``hang``
and ``corrupt`` fault kinds in :class:`repro.resilience.FaultPlan`.
"""

from .breaker import CircuitBreaker, default_breaker_key, failure_signature
from .integrity import IntegrityFailure, quarantine, verify_artifact
from .phase import current_phase, report_phase, set_phase_reporter

__all__ = [
    "CircuitBreaker",
    "default_breaker_key",
    "failure_signature",
    "IntegrityFailure",
    "quarantine",
    "verify_artifact",
    "current_phase",
    "report_phase",
    "set_phase_reporter",
]
