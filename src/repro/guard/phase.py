"""Worker phase reporting: what was a process doing when it hung?

A watchdog-killed worker leaves no traceback, so the only diagnostic
the parent can attach to its ``WatchdogKilled`` failure is the last
*phase* the worker reported before going quiet.  Call
:func:`report_phase` at coarse execution milestones ("cell:t2/...",
"phase1:cifar10_like/ce"); inside a pool worker the installed reporter
streams each phase over the result pipe as a heartbeat frame, and the
parent records it per child.  Outside a worker (no reporter installed)
the call just updates a process-local variable — effectively free.
"""

from __future__ import annotations

__all__ = ["current_phase", "report_phase", "set_phase_reporter"]

_REPORTER = None
_CURRENT = None


def set_phase_reporter(reporter):
    """Install ``reporter(name)`` (pool workers) or None to uninstall."""
    global _REPORTER
    _REPORTER = reporter


def report_phase(name):
    """Record (and, in a worker, stream) the current execution phase."""
    global _CURRENT
    _CURRENT = name
    if _REPORTER is not None:
        try:
            _REPORTER(name)
        except OSError:  # repro: noqa[RES002] heartbeat pipe already gone (parent exiting); the phase update itself still took effect
            pass
    return name


def current_phase():
    """The most recently reported phase in this process, or None."""
    return _CURRENT
