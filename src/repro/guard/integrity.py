"""Artifact integrity: digest verification and quarantine.

Every checkpoint artifact written through
:mod:`repro.utils.serialization` carries a sha256 sidecar
(``<artifact>.sha256``).  :func:`verify_artifact` re-hashes the file and
compares; :func:`quarantine` moves a failed artifact set into the
checkpoint root's ``quarantine/`` directory together with a structured
``reason.json``, so a corrupted checkpoint is preserved for post-mortem
while the live tree stays clean and the cell recomputes.

Quarantine layout::

    <checkpoint root>/
      quarantine/
        <name>.0/                 # first quarantined set for <name>
          reason.json             # {reason, files: [{path, expected, actual}]}
          model.npz               # the offending artifacts, moved as-is
          model.npz.sha256
          ...
"""

from __future__ import annotations

import os
import shutil

from ..utils.serialization import file_sha256, read_digest

__all__ = ["IntegrityFailure", "quarantine", "verify_artifact"]

QUARANTINE_DIR = "quarantine"


class IntegrityFailure:
    """One artifact that failed verification (JSON-friendly record)."""

    __slots__ = ("path", "reason", "expected", "actual")

    def __init__(self, path, reason, expected=None, actual=None):
        self.path = os.fspath(path)
        self.reason = reason
        self.expected = expected
        self.actual = actual

    def to_payload(self):
        return {
            "path": self.path,
            "reason": self.reason,
            "expected": self.expected,
            "actual": self.actual,
        }

    def __repr__(self):
        return "IntegrityFailure(%s: %s)" % (self.path, self.reason)


def verify_artifact(path, expected=None):
    """Check one artifact against its recorded digest.

    ``expected`` defaults to the sidecar digest next to ``path``.
    Returns None when the artifact verifies (or carries no digest to
    verify against — pre-digest checkpoints stay loadable), otherwise an
    :class:`IntegrityFailure` describing what is wrong.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return IntegrityFailure(path, "missing")
    if expected is None:
        expected = read_digest(path)
    if expected is None:
        return None
    actual = file_sha256(path)
    if actual != expected:
        return IntegrityFailure(
            path, "digest mismatch", expected=expected, actual=actual
        )
    return None


def quarantine(root, paths, reason, failures=()):
    """Move ``paths`` into ``<root>/quarantine/<name>.<n>/`` with a reason.

    ``reason`` is a short slug (e.g. ``"digest mismatch"``); ``failures``
    is an iterable of :class:`IntegrityFailure` records included in the
    written ``reason.json``.  Missing paths are skipped (a truncated
    write may have lost the file entirely).  Returns the quarantine
    directory, or None when nothing existed to move.
    """
    from ..telemetry import get_metrics, get_tracer
    from ..utils.serialization import atomic_write_json

    root = os.fspath(root)
    paths = [os.fspath(p) for p in paths]
    existing = [p for p in paths if os.path.exists(p)]
    if not existing:
        return None

    base = os.path.basename(existing[0].rstrip(os.sep)) or "artifact"
    parent = os.path.join(root, QUARANTINE_DIR)
    os.makedirs(parent, exist_ok=True)
    counter = 0
    while True:
        target = os.path.join(parent, "%s.%d" % (base, counter))
        if not os.path.exists(target):
            break
        counter += 1
    os.makedirs(target)

    moved = []
    for path in existing:
        destination = os.path.join(target, os.path.basename(path))
        shutil.move(path, destination)
        moved.append(destination)
        sidecar = path + ".sha256"
        if os.path.exists(sidecar):
            shutil.move(sidecar, destination + ".sha256")

    atomic_write_json(
        os.path.join(target, "reason.json"),
        {
            "reason": reason,
            "files": [f.to_payload() for f in failures],
            "moved": moved,
        },
    )
    get_tracer().event(
        "guard.quarantined", reason=reason, target=target,
        files=len(moved),
    )
    get_metrics().counter("guard.quarantined").inc()
    return target
