"""Failure circuit breakers for sweep execution.

A sweep over hundreds of cells can hide a *systematic* failure: one
mis-specified sampler configuration diverges in every cell that uses
it, and each of those cells still burns its full retry budget before
degrading to ``FAILED``.  A :class:`CircuitBreaker` notices the
repetition — N failures with an *equivalent signature* under the same
configuration key — and opens, converting every further attempt under
that key into an immediate ``FAILED(circuit_open: <signature>)`` cell
without invoking its thunk.  The sweep degrades in seconds instead of
hours.

Keys and signatures are both plain strings:

* the **key** names the configuration family a cell belongs to
  (:func:`default_breaker_key` folds the dataset axis out of a
  ``t2/<dataset>/<loss>/<sampler>`` cell id, so equivalent failures on
  different datasets pool together);
* the **signature** (:func:`failure_signature`) normalizes an error
  into ``"ErrorType: message"`` with numbers collapsed to ``#`` so
  ``epoch=3`` vs ``epoch=7`` provenance does not defeat the match.

Breaker state is a pure JSON-serializable dict, optionally persisted
through a *store* (duck-typed: ``load_breakers()`` /
``save_breakers(state)`` — :class:`repro.resilience.RunRegistry`
implements both), so a resumed sweep honors breakers its predecessor
tripped and ``--reset-breakers`` can clear them.
"""

from __future__ import annotations

import re

__all__ = ["CircuitBreaker", "default_breaker_key", "failure_signature"]

_NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?(?:e[+-]?\d+)?")
_SIGNATURE_WIDTH = 96


def failure_signature(error_type, reason=""):
    """Normalize a failure into a short, provenance-free signature.

    Two failures are *equivalent* when their type and message agree
    after numeric literals (epoch/batch/loss values, seeds, elapsed
    times) are collapsed to ``#``.
    """
    text = str(reason).splitlines()[0].strip() if reason else ""
    text = _NUMBER_RE.sub("#", text)
    if len(text) > _SIGNATURE_WIDTH:
        text = text[: _SIGNATURE_WIDTH - 3] + "..."
    return "%s: %s" % (error_type, text) if text else str(error_type)


def default_breaker_key(cell_id):
    """Configuration-family key for a ``<table>/<dataset>/...`` cell id.

    Folds out the dataset component (the second ``/`` segment) so that
    e.g. ``t2/cifar10_like/ce/smote`` and ``t2/mnist_like/ce/smote``
    share the key ``t2/*/ce/smote`` — the same (loss, sampler)
    configuration failing identically on several datasets is one
    systematic fault, not several independent ones.  Cell ids with
    fewer than three segments are their own key.
    """
    parts = str(cell_id).split("/")
    if len(parts) < 3:
        return str(cell_id)
    return "/".join([parts[0], "*"] + parts[2:])


class CircuitBreaker:
    """Per-configuration failure breaker with persistent state.

    Parameters
    ----------
    threshold:
        Number of equivalent failures (same key, same signature —
        counted across cells *and* retry attempts) that opens the
        breaker for that key.
    store:
        Optional persistence backend exposing ``load_breakers()`` and
        ``save_breakers(state)`` (e.g. a
        :class:`repro.resilience.RunRegistry`).  State is loaded at
        construction and saved after every transition, so breaker
        decisions survive kill/resume cycles.
    """

    def __init__(self, threshold=3, store=None):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self.store = store
        self._state = {}
        if store is not None:
            self._state = {
                key: dict(entry)
                for key, entry in (store.load_breakers() or {}).items()
            }

    # ------------------------------------------------------------------
    def _entry(self, key):
        return self._state.setdefault(key, {"open": None, "failures": {}})

    def _persist(self):
        if self.store is not None:
            self.store.save_breakers(self._state)

    # ------------------------------------------------------------------
    def open_signature(self, key):
        """The signature the breaker for ``key`` opened on, or None."""
        entry = self._state.get(key)
        return entry.get("open") if entry is not None else None

    def is_open(self, key):
        """True when the breaker for ``key`` has tripped."""
        return self.open_signature(key) is not None

    def open_breakers(self):
        """Mapping of key -> open signature, for every tripped breaker."""
        return {
            key: entry["open"]
            for key, entry in sorted(self._state.items())
            if entry.get("open") is not None
        }

    def record_failure(self, key, error_type, reason="", count=1):
        """Count ``count`` equivalent failures against ``key``.

        ``count`` lets a cell that exhausted a retry budget report every
        attempt at once ("across cells/retries").  Returns the signature
        the breaker opened on when this call tripped it, else None.
        """
        entry = self._entry(key)
        if entry["open"] is not None:
            return None
        signature = failure_signature(error_type, reason)
        seen = entry["failures"].get(signature, 0) + max(1, int(count))
        entry["failures"][signature] = seen
        opened = None
        if seen >= self.threshold:
            entry["open"] = signature
            opened = signature
            from ..telemetry import get_metrics, get_tracer

            get_tracer().event(
                "guard.breaker_opened", key=key, signature=signature,
                failures=seen,
            )
            get_metrics().counter("guard.breaker_open").inc()
        self._persist()
        return opened

    def reset(self):
        """Clear all breaker state (the ``--reset-breakers`` path)."""
        self._state = {}
        if self.store is not None and hasattr(self.store, "reset_breakers"):
            self.store.reset_breakers()
        else:
            self._persist()

    def state(self):
        """The raw JSON-serializable state dict (for inspection)."""
        return self._state

    def __repr__(self):
        return "CircuitBreaker(threshold=%d, open=%d/%d key(s))" % (
            self.threshold,
            len(self.open_breakers()),
            len(self._state),
        )
