"""Legacy runner entry points + the figure/study implementations.

The table and figure runners (``run_table1`` … ``run_figure7``,
``run_runtime_comparison``, ``run_eos_pixel_vs_embedding``) are now
thin deprecated wrappers: each builds a
:class:`repro.evals.MatrixSpec` and delegates to
:func:`repro.evals.run_matrix`, which compiles the spec to the same
cell grid, runs it through the resilience layer
(:func:`repro.parallel.run_cells` — resume, retry with seed-bump +
LR-backoff, FAILED-cell degradation, circuit breakers, bit-identical
parallel results), renders the report through
:mod:`repro.evals.views`, and optionally records every cell in the
sqlite :class:`~repro.evals.ResultStore`.  Their output is
byte-identical to calling ``run_matrix`` directly; new code should use
``run_matrix``.

What stays here: the cell-thunk helpers ``run_matrix`` executes
(``_sampler_cell`` / ``_timed_sampler_cell`` / ``_preprocessed_cell``
/ ``_CellGrid``) and the figure/study implementations
(``_figure3_impl`` …), whose row data is not cell-structured.
"""

from __future__ import annotations

import functools
import warnings

import numpy as np

from ..core import classifier_weight_norms, norm_imbalance
from ..core.gap import generalization_gap, tp_fp_gap
from ..evals.views import metric_cells as _metric_cells
from ..manifold import TSNE
from ..metrics import evaluate_predictions
from ..resilience import CellFailure
from ..telemetry import monotonic
from ..utils import format_float, format_table
from .config import bench_config, build_sampler
from .pipeline import (
    ExtractorCache,
    evaluate_sampler,
    train_preprocessed,
)

__all__ = [
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_runtime_comparison",
    "run_eos_pixel_vs_embedding",
]


def _make_cache(cache, registry, retry_policy):
    if cache is not None:
        return cache
    return ExtractorCache(registry=registry, retry_policy=retry_policy)


def _get_artifacts(cache, cfg, loss_name, fail_soft):
    """Phase-1 artifacts, or a CellFailure when training itself fails.

    A failed extractor degrades every cell that depends on it; the
    executor stamps the same failure into each of those cells.
    """
    try:
        return cache.get(cfg, loss_name)
    except Exception as exc:
        if not fail_soft:
            raise
        return CellFailure(str(exc), error_type=type(exc).__name__)


def _sampler_cell(artifacts, name, **eval_kwargs):
    """Thunk for one ``evaluate_sampler`` cell, honoring retry attempts
    (seed bump + fine-tuning LR backoff)."""
    config = artifacts.config

    def thunk(attempt):
        seed = config.seed + (0 if attempt is None else attempt.seed_offset)
        lr = config.finetune_lr * (
            1.0 if attempt is None else attempt.lr_scale
        )
        return evaluate_sampler(
            artifacts, name, seed=seed, finetune_lr=lr, **eval_kwargs
        )

    return thunk


def _timed_sampler_cell(artifacts, name, **eval_kwargs):
    """Like :func:`_sampler_cell` but keeps the resample+tune timing
    (JSON-safe payload: metrics + seconds, no weight arrays)."""
    inner = _sampler_cell(artifacts, name, return_details=True, **eval_kwargs)

    def thunk(attempt):
        details = inner(attempt)
        return {"metrics": details["metrics"], "seconds": details["seconds"]}

    return thunk


def _preprocessed_cell(config, loss_name, sampler_name):
    """Thunk for one pixel-space pre-processing cell (full retraining)."""

    def thunk(attempt):
        cfg = config
        max_seconds = None
        if attempt is not None:
            max_seconds = attempt.max_seconds
            if attempt.seed_offset or attempt.lr_scale != 1.0:
                cfg = config.with_overrides(
                    seed=config.seed + attempt.seed_offset,
                    lr=config.lr * attempt.lr_scale,
                )
        metrics, seconds = train_preprocessed(
            cfg, loss_name, sampler_name, max_seconds=max_seconds
        )
        return {"metrics": metrics, "seconds": seconds}

    return thunk


class _CellGrid:
    """Batch of sweep cells an executor collects, then runs as one unit.

    Each cell is registered with its results-dict ``key``, checkpoint
    ``cell_id`` and thunk; cells whose outcome is already decided (a
    failed extractor degrading every dependent cell) are stamped
    directly.  :meth:`run` evaluates the batch through
    :func:`repro.parallel.run_cells` — at one worker this is exactly the
    per-cell ``run_cell`` loop the runners used to inline (same resume,
    retry, degradation and registry-write behavior); above one worker
    the cells fan out across processes with identical results.
    """

    def __init__(self, registry=None, retry_policy=None, fail_soft=True,
                 workers=None, breaker=None):
        self.registry = registry
        self.retry_policy = retry_policy
        self.fail_soft = fail_soft
        self.workers = workers
        self.breaker = breaker
        self._keys = []
        self._tasks = []
        self._stamped = {}

    def add(self, key, cell_id, thunk):
        self._keys.append(key)
        self._tasks.append((cell_id, thunk))

    def stamp(self, key, outcome):
        self._stamped[key] = outcome

    def run(self):
        from ..parallel import run_cells

        outcomes = run_cells(
            self._tasks,
            registry=self.registry,
            retry_policy=self.retry_policy,
            fail_soft=self.fail_soft,
            max_workers=self.workers,
            breaker=self.breaker,
        )
        results = dict(self._stamped)
        results.update(zip(self._keys, outcomes))
        return results


def _deprecated_runner(fn):
    """Legacy entry point: warn once, then delegate to ``run_matrix``."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        warnings.warn(
            "%s() is deprecated; build a repro.evals.MatrixSpec and call "
            "repro.evals.run_matrix() instead" % fn.__name__,
            DeprecationWarning, stacklevel=2,
        )
        return fn(*args, **kwargs)

    return wrapper


# ----------------------------------------------------------------------
# Table I-V — deprecated wrappers over run_matrix
# ----------------------------------------------------------------------
@_deprecated_runner
def run_table1(config=None, datasets=("cifar10_like",), cache=None,
               registry=None, retry_policy=None, fail_soft=True,
               workers=None, breaker=None, store=None):
    """Pre- vs post- (embedding-space) over-sampling under CE loss.

    Paper shape: in most dataset x sampler cells, the *Post-* variant
    (over-sampling on feature embeddings + head fine-tuning) beats the
    *Pre-* variant (pixel-space over-sampling + full retraining).
    """
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("table1", config=config, datasets=tuple(datasets)),
        store=store, cache=cache, registry=registry,
        retry_policy=retry_policy, fail_soft=fail_soft, workers=workers,
        breaker=breaker,
    )


@_deprecated_runner
def run_table2(
    config=None,
    datasets=("cifar10_like",),
    losses=("ce", "asl", "focal", "ldam"),
    samplers=("none", "smote", "bsmote", "balsvm", "eos"),
    cache=None,
    registry=None,
    retry_policy=None,
    fail_soft=True,
    workers=None,
    breaker=None,
    store=None,
):
    """The paper's main accuracy table.

    Paper shape: EOS is the best sampler in nearly every dataset x loss
    row; every embedding-space sampler beats the raw baseline.
    """
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("table2", config=config, datasets=tuple(datasets),
                   losses=tuple(losses), samplers=tuple(samplers)),
        store=store, cache=cache, registry=registry,
        retry_policy=retry_policy, fail_soft=fail_soft, workers=workers,
        breaker=breaker,
    )


@_deprecated_runner
def run_table3(
    config=None,
    datasets=("cifar10_like",),
    losses=("ce",),
    samplers=("gamo", "bagan", "cgan", "eos"),
    mode="embedding",
    cache=None,
    registry=None,
    retry_policy=None,
    fail_soft=True,
    workers=None,
    breaker=None,
    store=None,
):
    """GAN over-samplers vs EOS.

    Paper shape: GAMO and BAGAN trail EOS clearly; CGAN is competitive
    but needs one generative model per class (cost recorded in
    ``seconds``), while EOS needs none.

    ``mode`` selects where the GAN samplers run: ``"embedding"``
    (default — every method on identical footing inside the three-phase
    framework) or ``"pixel"`` (the paper's literal protocol: GANs
    balance the raw images as pre-processing, followed by full
    re-training, while EOS still runs in embedding space).  Pixel mode
    is several times slower since each GAN row retrains the CNN.
    """
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("table3", config=config, datasets=tuple(datasets),
                   losses=tuple(losses), samplers=tuple(samplers),
                   mode=mode),
        store=store, cache=cache, registry=registry,
        retry_policy=retry_policy, fail_soft=fail_soft, workers=workers,
        breaker=breaker,
    )


@_deprecated_runner
def run_table4(
    config=None,
    datasets=("cifar10_like",),
    k_values=(2, 5, 10, 20, 40),
    cache=None,
    registry=None,
    retry_policy=None,
    fail_soft=True,
    workers=None,
    breaker=None,
    store=None,
):
    """EOS K-nearest-neighbor sweep (paper: K in {10..300}, BAC rises
    with K then plateaus).  ``k_values`` defaults scale the sweep to the
    bench dataset size; pass the paper's values at larger scales.
    """
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("table4", config=config, datasets=tuple(datasets),
                   k_values=tuple(k_values)),
        store=store, cache=cache, registry=registry,
        retry_policy=retry_policy, fail_soft=fail_soft, workers=workers,
        breaker=breaker,
    )


@_deprecated_runner
def run_table5(config=None, architectures=None, cache=None,
               registry=None, retry_policy=None, fail_soft=True,
               workers=None, breaker=None, store=None):
    """EOS across CNN architectures (paper: EOS helps every backbone)."""
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("table5", config=config,
                   architectures=(tuple(architectures)
                                  if architectures is not None else None)),
        store=store, cache=cache, registry=registry,
        retry_policy=retry_policy, fail_soft=fail_soft, workers=workers,
        breaker=breaker,
    )


# ----------------------------------------------------------------------
# Figure 3 — per-class generalization-gap curves
# ----------------------------------------------------------------------
@_deprecated_runner
def run_figure3(
    config=None,
    losses=("ce", "asl", "focal", "ldam"),
    samplers=("none", "smote", "bsmote", "balsvm", "eos"),
    cache=None,
):
    """Per-class gap curves per loss and sampler.

    Paper shape: the gap rises with class index (imbalance); SMOTE-family
    curves overlap the baseline (no range change); only EOS flattens the
    tail-class gap.
    """
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("figure3", config=config, losses=tuple(losses),
                   samplers=tuple(samplers)),
        cache=cache,
    )


def _figure3_impl(config, losses, samplers, cache):
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    curves = {}
    rows = []
    for loss in losses:
        artifacts = cache.get(config, loss)
        train_labels = artifacts.train.labels
        for name in samplers:
            if name == "none":
                emb, labels = artifacts.train_embeddings, train_labels
            else:
                sampler = build_sampler(
                    name,
                    k_neighbors=config.k_neighbors,
                    random_state=config.seed,
                )
                emb, labels = sampler.fit_resample(
                    artifacts.train_embeddings, train_labels
                )
            gap = generalization_gap(
                emb,
                labels,
                artifacts.test_embeddings,
                artifacts.test.labels,
                artifacts.info["num_classes"],
            )
            curves[(loss, name)] = gap["per_class"]
            rows.append(
                [loss, name]
                + [format_float(v, 3) for v in gap["per_class"]]
                + [format_float(gap["mean"], 3)]
            )
    num_classes = len(next(iter(curves.values())))
    headers = ["loss", "sampler"] + ["c%d" % c for c in range(num_classes)] + ["mean"]
    report = format_table(
        headers, rows, title="Figure 3: per-class generalization gap (tail = minority)"
    )
    from ..utils import ascii_chart

    for loss in losses:
        chart_series = {
            name: curves[(loss, name)]
            for name in samplers
            if (loss, name) in curves
        }
        report += "\n\n" + ascii_chart(
            chart_series,
            width=max(40, 4 * num_classes),
            height=12,
            title="loss=%s (x: class index, y: gap)" % loss,
            x_label="class",
        )
    return {"curves": curves, "report": report}


# ----------------------------------------------------------------------
# Figure 4 — gap for true positives vs false positives
# ----------------------------------------------------------------------
@_deprecated_runner
def run_figure4(config=None, datasets=("cifar10_like",), cache=None):
    """TP vs FP generalization gap (paper: FP gap is ~2-4x the TP gap)."""
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("figure4", config=config, datasets=tuple(datasets)),
        cache=cache,
    )


def _figure4_impl(config, datasets, cache):
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    results = {}
    rows = []
    for dataset in datasets:
        cfg = config.with_overrides(dataset=dataset)
        artifacts = cache.get(cfg, "ce")
        from ..core.training import predict_logits

        # Predictions must come from the phase-1 head, not whatever head
        # a previous experiment's fine-tuning left on the shared model.
        artifacts.restore_head()
        preds = predict_logits(
            artifacts.model, artifacts.test.images
        ).argmax(axis=1)
        gaps = tp_fp_gap(
            artifacts.train_embeddings,
            artifacts.train.labels,
            artifacts.test_embeddings,
            artifacts.test.labels,
            preds,
            artifacts.info["num_classes"],
        )
        results[dataset] = gaps
        rows.append(
            [
                dataset,
                format_float(gaps["tp"], 3),
                format_float(gaps["fp"], 3),
                format_float(gaps["ratio"], 2),
            ]
        )
    report = format_table(
        ["dataset", "TP gap", "FP gap", "FP/TP"],
        rows,
        title="Figure 4: generalization gap for TPs vs FPs",
    )
    return {"results": results, "report": report}


# ----------------------------------------------------------------------
# Figure 5 — classifier weight norms per class
# ----------------------------------------------------------------------
@_deprecated_runner
def run_figure5(
    config=None,
    losses=("ce", "asl", "focal", "ldam"),
    samplers=("none", "smote", "bsmote", "balsvm", "eos"),
    cache=None,
):
    """Per-class classifier weight norms by loss and sampler.

    Paper shape: baseline norms decay from majority to minority classes;
    EOS yields the largest and most-even norms.
    """
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("figure5", config=config, losses=tuple(losses),
                   samplers=tuple(samplers)),
        cache=cache,
    )


def _figure5_impl(config, losses, samplers, cache):
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    profiles = {}
    rows = []
    for loss in losses:
        artifacts = cache.get(config, loss)
        for name in samplers:
            details = evaluate_sampler(artifacts, name, return_details=True)
            norms = classifier_weight_norms(details["head_weight"])
            profiles[(loss, name)] = norms
            summary = norm_imbalance(norms)
            rows.append(
                [loss, name]
                + [format_float(v, 3) for v in norms]
                + [format_float(summary["cv"], 3)]
            )
    num_classes = len(next(iter(profiles.values())))
    headers = ["loss", "sampler"] + ["c%d" % c for c in range(num_classes)] + ["cv"]
    report = format_table(
        headers, rows, title="Figure 5: classifier weight norms per class"
    )
    return {"profiles": profiles, "report": report}


# ----------------------------------------------------------------------
# Figure 6 — t-SNE of a 2-class decision boundary
# ----------------------------------------------------------------------
@_deprecated_runner
def run_figure6(
    config=None,
    majority_class=1,
    minority_class=9,
    samplers=("none", "smote", "bsmote", "balsvm", "eos"),
    max_points=150,
    cache=None,
):
    """t-SNE embeddings of majority-vs-minority class structure.

    Paper shape (qualitative): under EOS the minority manifold becomes
    denser/more uniform.  We report embedding coordinates plus two
    quantitative proxies: the minority class's mean nearest-neighbor
    distance in the t-SNE plane (lower = denser), and the minority's
    mean nearest-*enemy* distance (EOS intentionally shrinks this — its
    synthesis targets the class boundary, while SMOTE-family points stay
    interior).
    """
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("figure6", config=config, samplers=tuple(samplers),
                   options={"majority_class": majority_class,
                            "minority_class": minority_class,
                            "max_points": max_points}),
        cache=cache,
    )


def _figure6_impl(config, samplers, cache, majority_class=1,
                  minority_class=9, max_points=150):
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    artifacts = cache.get(config, "ce")
    embeddings = {}
    rows = []
    for name in samplers:
        if name == "none":
            emb, labels = artifacts.train_embeddings, artifacts.train.labels
        else:
            sampler = build_sampler(
                name, k_neighbors=config.k_neighbors, random_state=config.seed
            )
            emb, labels = sampler.fit_resample(
                artifacts.train_embeddings, artifacts.train.labels
            )
        mask = (labels == majority_class) | (labels == minority_class)
        sub_emb = emb[mask]
        sub_labels = labels[mask]
        if sub_emb.shape[0] > max_points:
            rng = np.random.default_rng(config.seed)
            pick = rng.choice(sub_emb.shape[0], size=max_points, replace=False)
            sub_emb, sub_labels = sub_emb[pick], sub_labels[pick]
        coords = TSNE(perplexity=12, n_iter=250, seed=config.seed).fit_transform(
            sub_emb
        )
        embeddings[name] = (coords, sub_labels)
        density = _minority_density(coords, sub_labels, minority_class)
        margin = _class_margin(coords, sub_labels, minority_class)
        rows.append([name, str(int((sub_labels == minority_class).sum())),
                     format_float(density, 3), format_float(margin, 3)])
    report = format_table(
        ["sampler", "minority pts", "minority mean-NN dist", "nearest-enemy dist"],
        rows,
        title="Figure 6: t-SNE class structure (majority=%d vs minority=%d)"
        % (majority_class, minority_class),
    )
    return {"embeddings": embeddings, "report": report}


def _minority_density(coords, labels, minority_class):
    from ..neighbors import KNeighbors

    pts = coords[labels == minority_class]
    if pts.shape[0] < 2:
        return float("nan")
    index = KNeighbors(k=1).fit(pts)
    dists, _ = index.query(pts, exclude_self=True)
    scale = np.abs(coords).max() or 1.0
    return float(dists.mean() / scale)


def _class_margin(coords, labels, minority_class):
    """Normalized mean distance from each minority point to its nearest
    other-class point in the t-SNE plane.  Low values for EOS reflect
    its boundary-targeted synthesis (samples deliberately approach the
    nearest adversaries); interpolative samplers stay interior."""
    from ..neighbors import nearest_enemies

    if (labels == minority_class).sum() == 0 or len(np.unique(labels)) < 2:
        return float("nan")
    dists, _ = nearest_enemies(coords, labels, k=1)
    scale = np.abs(coords).max() or 1.0
    minority_dists = dists[labels == minority_class, 0]
    finite = minority_dists[np.isfinite(minority_dists)]
    if finite.size == 0:
        return float("nan")
    return float(finite.mean() / scale)


# ----------------------------------------------------------------------
# Figure 7 — BAC vs fine-tuning epochs
# ----------------------------------------------------------------------
@_deprecated_runner
def run_figure7(config=None, epochs=30, samplers=("smote", "eos"), cache=None):
    """Fine-tuning length study (paper: both EOS and SMOTE plateau by
    ~epoch 10; EOS keeps a small edge afterwards)."""
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("figure7", config=config, samplers=tuple(samplers),
                   options={"epochs": epochs}),
        cache=cache,
    )


def _figure7_impl(config, samplers, cache, epochs=30):
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    artifacts = cache.get(config, "ce")
    from ..core import finetune_classifier

    curves = {}
    for name in samplers:
        artifacts.restore_head()
        sampler = build_sampler(
            name, k_neighbors=config.k_neighbors, random_state=config.seed
        )
        emb, labels = sampler.fit_resample(
            artifacts.train_embeddings, artifacts.train.labels
        )

        def eval_hook(epoch):
            from ..core.training import predict_logits

            test_preds = predict_logits(
                artifacts.model, artifacts.test.images
            ).argmax(axis=1)
            train_preds = predict_logits(
                artifacts.model, artifacts.train.images
            ).argmax(axis=1)
            return {
                "test_bac": evaluate_predictions(
                    artifacts.test.labels, test_preds,
                    artifacts.info["num_classes"]
                )["bac"],
                "train_bac": evaluate_predictions(
                    artifacts.train.labels, train_preds,
                    artifacts.info["num_classes"]
                )["bac"],
            }

        history = finetune_classifier(
            artifacts.model,
            emb,
            labels,
            epochs=epochs,
            rng=np.random.default_rng(config.seed + 3),
            eval_hook=eval_hook,
        )
        curves[name] = history
    rows = []
    for name, history in curves.items():
        for rec in history:
            rows.append(
                [
                    name,
                    str(rec["epoch"]),
                    format_float(rec["train_bac"]),
                    format_float(rec["test_bac"]),
                ]
            )
    report = format_table(
        ["sampler", "epoch", "train BAC", "test BAC"],
        rows,
        title="Figure 7: balanced accuracy vs classifier fine-tuning epochs",
    )
    from ..utils import ascii_chart

    chart_series = {}
    for name, history in curves.items():
        chart_series["%s train" % name] = [r["train_bac"] for r in history]
        chart_series["%s test" % name] = [r["test_bac"] for r in history]
    report += "\n\n" + ascii_chart(
        chart_series, width=60, height=12,
        title="fine-tuning curves (x: epoch, y: BAC)", x_label="epoch",
    )
    return {"curves": curves, "report": report}


# ----------------------------------------------------------------------
# §V-E2 — runtime comparison
# ----------------------------------------------------------------------
@_deprecated_runner
def run_runtime_comparison(config=None, samplers=("smote", "bsmote", "balsvm")):
    """Wall-clock cost: pixel-space pre-processing vs the EOS framework.

    Paper shape: pre-processed full training costs ~3x the EOS pipeline
    (train on imbalanced data + embed + fine-tune 10 epochs).
    """
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("runtime_comparison", config=config,
                   samplers=tuple(samplers)),
    )


def _runtime_comparison_impl(config, samplers):
    config = config if config is not None else bench_config()
    pre_seconds = []
    rows = []
    for name in samplers:
        _, seconds = train_preprocessed(config, "ce", name)
        pre_seconds.append(seconds)
        rows.append(["pre-%s (full training)" % name, "%.2f" % seconds])
    avg_pre = float(np.mean(pre_seconds))

    from .pipeline import train_phase1

    start = monotonic()
    artifacts = train_phase1(config, "ce")
    evaluate_sampler(artifacts, "eos")
    eos_seconds = monotonic() - start
    rows.append(["EOS (phase1 + embed + fine-tune)", "%.2f" % eos_seconds])
    speedup = avg_pre / eos_seconds if eos_seconds > 0 else float("inf")
    report = format_table(
        ["pipeline", "seconds"],
        rows,
        title="Runtime: pre-processing vs EOS framework",
    )
    report += "\naverage pre / EOS = %.2fx (paper: ~2.9x)" % speedup
    return {
        "pre_seconds": pre_seconds,
        "eos_seconds": eos_seconds,
        "speedup": speedup,
        "report": report,
    }


# ----------------------------------------------------------------------
# §V-E3 — EOS in pixel space vs embedding space
# ----------------------------------------------------------------------
@_deprecated_runner
def run_eos_pixel_vs_embedding(config=None, cache=None):
    """EOS applied as pixel-space pre-processing vs in embedding space.

    Paper shape: pixel-space EOS loses ~7 BAC points vs embedding-space
    EOS on CIFAR-10.
    """
    from ..evals import MatrixSpec, run_matrix

    return run_matrix(
        MatrixSpec("eos_pixel_vs_embedding", config=config),
        cache=cache,
    )


def _eos_pixel_vs_embedding_impl(config, cache):
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    pixel_metrics, _ = train_preprocessed(config, "ce", "eos")
    artifacts = cache.get(config, "ce")
    embedding_metrics = evaluate_sampler(artifacts, "eos")
    rows = [
        ["EOS in pixel space"] + _metric_cells(pixel_metrics),
        ["EOS in embedding space"] + _metric_cells(embedding_metrics),
    ]
    report = format_table(
        ["variant", "BAC", "GM", "FM"],
        rows,
        title="EOS: pixel-space vs embedding-space application",
    )
    delta = embedding_metrics["bac"] - pixel_metrics["bac"]
    report += "\nembedding-space advantage: %+.4f BAC" % delta
    return {
        "pixel": pixel_metrics,
        "embedding": embedding_metrics,
        "delta_bac": delta,
        "report": report,
    }
