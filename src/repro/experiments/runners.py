"""Runners that regenerate each of the paper's tables and figures.

Every ``run_*`` function returns a dict with structured ``results`` plus
a ``report`` string whose rows mirror the corresponding paper table or
figure series.  The benchmark suite invokes these with the tiny bench
configuration; ``examples/reproduce_paper.py`` runs them at a larger
scale.

The table runners (``run_table1`` … ``run_table5``) execute every
dataset × loss × sampler cell through the resilience layer
(:func:`repro.parallel.run_cells`, the batched form of
:func:`repro.resilience.run_cell`; pass ``workers=N`` to fan cells out
across processes with bit-identical results): a failing cell is recorded as
``FAILED(reason)`` in the emitted table instead of aborting the sweep,
an optional :class:`~repro.resilience.RetryPolicy` re-runs diverged
cells with seed-bump + LR-backoff, and an optional
:class:`~repro.resilience.RunRegistry` checkpoints each finished cell so
an interrupted sweep resumes where it stopped.
"""

from __future__ import annotations

import numpy as np

from ..core import classifier_weight_norms, norm_imbalance
from ..core.gap import generalization_gap, tp_fp_gap
from ..manifold import TSNE
from ..metrics import evaluate_predictions
from ..resilience import CellFailure
from ..telemetry import monotonic
from ..utils import format_float, format_table
from .config import bench_config, build_sampler
from .pipeline import (
    ExtractorCache,
    evaluate_sampler,
    prewarm_extractors,
    train_preprocessed,
)
from .result import traced_runner

__all__ = [
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_runtime_comparison",
    "run_eos_pixel_vs_embedding",
]

_METRICS = ("bac", "gm", "fm")


def _metric_cells(metrics):
    if isinstance(metrics, CellFailure):
        return [metrics.label()] + ["-"] * (len(_METRICS) - 1)
    return [format_float(metrics[m]) for m in _METRICS]


def _bac(metrics):
    """A cell's BAC, or None when the cell failed (degraded)."""
    if isinstance(metrics, CellFailure):
        return None
    return metrics["bac"]


def _make_cache(cache, registry, retry_policy):
    if cache is not None:
        return cache
    return ExtractorCache(registry=registry, retry_policy=retry_policy)


def _get_artifacts(cache, cfg, loss_name, fail_soft):
    """Phase-1 artifacts, or a CellFailure when training itself fails.

    A failed extractor degrades every cell that depends on it; the
    runner stamps the same failure into each of those cells.
    """
    try:
        return cache.get(cfg, loss_name)
    except Exception as exc:
        if not fail_soft:
            raise
        return CellFailure(str(exc), error_type=type(exc).__name__)


def _sampler_cell(artifacts, name, **eval_kwargs):
    """Thunk for one ``evaluate_sampler`` cell, honoring retry attempts
    (seed bump + fine-tuning LR backoff)."""
    config = artifacts.config

    def thunk(attempt):
        seed = config.seed + (0 if attempt is None else attempt.seed_offset)
        lr = config.finetune_lr * (
            1.0 if attempt is None else attempt.lr_scale
        )
        return evaluate_sampler(
            artifacts, name, seed=seed, finetune_lr=lr, **eval_kwargs
        )

    return thunk


def _timed_sampler_cell(artifacts, name, **eval_kwargs):
    """Like :func:`_sampler_cell` but keeps the resample+tune timing
    (JSON-safe payload: metrics + seconds, no weight arrays)."""
    inner = _sampler_cell(artifacts, name, return_details=True, **eval_kwargs)

    def thunk(attempt):
        details = inner(attempt)
        return {"metrics": details["metrics"], "seconds": details["seconds"]}

    return thunk


def _preprocessed_cell(config, loss_name, sampler_name):
    """Thunk for one pixel-space pre-processing cell (full retraining)."""

    def thunk(attempt):
        cfg = config
        max_seconds = None
        if attempt is not None:
            max_seconds = attempt.max_seconds
            if attempt.seed_offset or attempt.lr_scale != 1.0:
                cfg = config.with_overrides(
                    seed=config.seed + attempt.seed_offset,
                    lr=config.lr * attempt.lr_scale,
                )
        metrics, seconds = train_preprocessed(
            cfg, loss_name, sampler_name, max_seconds=max_seconds
        )
        return {"metrics": metrics, "seconds": seconds}

    return thunk


class _CellGrid:
    """Batch of sweep cells a runner collects, then runs as one unit.

    Each cell is registered with its results-dict ``key``, checkpoint
    ``cell_id`` and thunk; cells whose outcome is already decided (a
    failed extractor degrading every dependent cell) are stamped
    directly.  :meth:`run` evaluates the batch through
    :func:`repro.parallel.run_cells` — at one worker this is exactly the
    per-cell ``run_cell`` loop the runners used to inline (same resume,
    retry, degradation and registry-write behavior); above one worker
    the cells fan out across processes with identical results.
    """

    def __init__(self, registry=None, retry_policy=None, fail_soft=True,
                 workers=None, breaker=None):
        self.registry = registry
        self.retry_policy = retry_policy
        self.fail_soft = fail_soft
        self.workers = workers
        self.breaker = breaker
        self._keys = []
        self._tasks = []
        self._stamped = {}

    def add(self, key, cell_id, thunk):
        self._keys.append(key)
        self._tasks.append((cell_id, thunk))

    def stamp(self, key, outcome):
        self._stamped[key] = outcome

    def run(self):
        from ..parallel import run_cells

        outcomes = run_cells(
            self._tasks,
            registry=self.registry,
            retry_policy=self.retry_policy,
            fail_soft=self.fail_soft,
            max_workers=self.workers,
            breaker=self.breaker,
        )
        results = dict(self._stamped)
        results.update(zip(self._keys, outcomes))
        return results


def _degraded_summary(results):
    """Trailer listing every FAILED cell, or an empty string."""
    failures = [
        (key, value)
        for key, value in results.items()
        if isinstance(value, CellFailure)
    ]
    if not failures:
        return ""
    lines = [
        "",
        "DEGRADED: %d / %d cell(s) failed and were excluded from summaries:"
        % (len(failures), len(results)),
    ]
    for key, failure in failures:
        cell = "/".join(str(part) for part in key)
        lines.append(
            "  %s -> %s after %d attempt(s)"
            % (cell, failure.label(width=60), failure.attempts)
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table I — pre-processing (pixel) vs embedding-space over-sampling (CE)
# ----------------------------------------------------------------------
@traced_runner("table1")
def run_table1(config=None, datasets=("cifar10_like",), cache=None,
               registry=None, retry_policy=None, fail_soft=True,
               workers=None, breaker=None):
    """Pre- vs post- (embedding-space) over-sampling under CE loss.

    Paper shape: in most dataset x sampler cells, the *Post-* variant
    (over-sampling on feature embeddings + head fine-tuning) beats the
    *Pre-* variant (pixel-space over-sampling + full retraining).
    """
    config = config if config is not None else bench_config()
    cache = _make_cache(cache, registry, retry_policy)
    samplers = ("smote", "bsmote", "balsvm")
    prewarm_extractors(
        cache,
        [(config.with_overrides(dataset=d), "ce") for d in datasets],
        max_workers=workers,
    )
    grid = _CellGrid(registry, retry_policy, fail_soft, workers, breaker)
    row_specs = []
    for dataset in datasets:
        cfg = config.with_overrides(dataset=dataset)
        for name in samplers + ("remix",):
            key = (dataset, "pre", name)
            grid.add(key, "t1/%s/pre/%s" % (dataset, name),
                     _preprocessed_cell(cfg, "ce", name))
            row_specs.append((key, [dataset, "Pre-%s" % name], True))
        artifacts = _get_artifacts(cache, cfg, "ce", fail_soft)
        for name in samplers:
            key = (dataset, "post", name)
            if isinstance(artifacts, CellFailure):
                grid.stamp(key, artifacts)
            else:
                grid.add(key, "t1/%s/post/%s" % (dataset, name),
                         _sampler_cell(artifacts, name))
            row_specs.append((key, [dataset, "Post-%s" % name], False))
    outcomes = grid.run()
    results = {}
    rows = []
    for key, prefix, timed in row_specs:
        out = outcomes[key]
        if timed and not isinstance(out, CellFailure):
            metrics = out["metrics"]
        else:
            metrics = out
        results[key] = metrics
        rows.append(prefix + _metric_cells(metrics))

    post_wins = sum(
        1
        for dataset in datasets
        for name in samplers
        if _bac(results[(dataset, "post", name)]) is not None
        and _bac(results[(dataset, "pre", name)]) is not None
        and _bac(results[(dataset, "post", name)])
        > _bac(results[(dataset, "pre", name)])
    )
    report = format_table(
        ["dataset", "method", "BAC", "GM", "FM"],
        rows,
        title="Table I: pre-processing vs feature-embedding over-sampling (CE)",
    )
    report += "\npost beats pre in %d / %d cells (paper: 7/9)" % (
        post_wins,
        len(datasets) * len(samplers),
    )
    report += _degraded_summary(results)
    return {"results": results, "post_wins": post_wins,
            "cells": len(datasets) * len(samplers), "report": report}


# ----------------------------------------------------------------------
# Table II — losses x {baseline, SMOTE, BSMOTE, BalSVM, EOS}
# ----------------------------------------------------------------------
@traced_runner("table2")
def run_table2(
    config=None,
    datasets=("cifar10_like",),
    losses=("ce", "asl", "focal", "ldam"),
    samplers=("none", "smote", "bsmote", "balsvm", "eos"),
    cache=None,
    registry=None,
    retry_policy=None,
    fail_soft=True,
    workers=None,
    breaker=None,
):
    """The paper's main accuracy table.

    Paper shape: EOS is the best sampler in nearly every dataset x loss
    row; every embedding-space sampler beats the raw baseline.
    """
    config = config if config is not None else bench_config()
    cache = _make_cache(cache, registry, retry_policy)
    prewarm_extractors(
        cache,
        [
            (config.with_overrides(dataset=dataset), loss)
            for dataset in datasets
            for loss in losses
        ],
        max_workers=workers,
    )
    grid = _CellGrid(registry, retry_policy, fail_soft, workers, breaker)
    keys = []
    for dataset in datasets:
        cfg = config.with_overrides(dataset=dataset)
        for loss in losses:
            artifacts = _get_artifacts(cache, cfg, loss, fail_soft)
            for name in samplers:
                key = (dataset, loss, name)
                keys.append(key)
                if isinstance(artifacts, CellFailure):
                    grid.stamp(key, artifacts)
                else:
                    grid.add(key, "t2/%s/%s/%s" % (dataset, loss, name),
                             _sampler_cell(artifacts, name))
    results = grid.run()
    rows = [
        list(key) + _metric_cells(results[key]) for key in keys
    ]

    eos_wins = 0
    comparisons = 0
    if "eos" in samplers:
        for dataset in datasets:
            for loss in losses:
                rivals = [
                    _bac(results[(dataset, loss, s)])
                    for s in samplers
                    if s not in ("eos", "none")
                ]
                rivals = [bac for bac in rivals if bac is not None]
                eos_bac = _bac(results[(dataset, loss, "eos")])
                if rivals and eos_bac is not None:
                    comparisons += 1
                    if eos_bac >= max(rivals):
                        eos_wins += 1
    report = format_table(
        ["dataset", "loss", "sampler", "BAC", "GM", "FM"],
        rows,
        title="Table II: baselines & over-sampling in embedding space",
    )
    report += "\nEOS best-of-samplers in %d / %d rows" % (eos_wins, comparisons)
    report += _degraded_summary(results)
    return {"results": results, "eos_wins": eos_wins,
            "comparisons": comparisons, "report": report}


# ----------------------------------------------------------------------
# Table III — EOS vs GAN-based over-sampling
# ----------------------------------------------------------------------
@traced_runner("table3")
def run_table3(
    config=None,
    datasets=("cifar10_like",),
    losses=("ce",),
    samplers=("gamo", "bagan", "cgan", "eos"),
    mode="embedding",
    cache=None,
    registry=None,
    retry_policy=None,
    fail_soft=True,
    workers=None,
    breaker=None,
):
    """GAN over-samplers vs EOS.

    Paper shape: GAMO and BAGAN trail EOS clearly; CGAN is competitive
    but needs one generative model per class (cost recorded in
    ``seconds``), while EOS needs none.

    ``mode`` selects where the GAN samplers run: ``"embedding"``
    (default — every method on identical footing inside the three-phase
    framework) or ``"pixel"`` (the paper's literal protocol: GANs
    balance the raw images as pre-processing, followed by full
    re-training, while EOS still runs in embedding space).  Pixel mode
    is several times slower since each GAN row retrains the CNN.
    """
    if mode not in ("embedding", "pixel"):
        raise ValueError("mode must be 'embedding' or 'pixel'")
    config = config if config is not None else bench_config()
    cache = _make_cache(cache, registry, retry_policy)
    prewarm_extractors(
        cache,
        [
            (config.with_overrides(dataset=dataset), loss)
            for dataset in datasets
            for loss in losses
        ],
        max_workers=workers,
    )
    grid = _CellGrid(registry, retry_policy, fail_soft, workers, breaker)
    keys = []
    for dataset in datasets:
        cfg = config.with_overrides(dataset=dataset)
        for loss in losses:
            artifacts = _get_artifacts(cache, cfg, loss, fail_soft)
            for name in samplers:
                key = (dataset, loss, name)
                keys.append(key)
                cell_id = "t3/%s/%s/%s/%s" % (mode, dataset, loss, name)
                if mode == "pixel" and name != "eos":
                    grid.add(key, cell_id, _preprocessed_cell(cfg, loss, name))
                elif isinstance(artifacts, CellFailure):
                    grid.stamp(key, artifacts)
                else:
                    grid.add(key, cell_id, _timed_sampler_cell(artifacts, name))
    outcomes = grid.run()
    results = {}
    timing = {}
    rows = []
    for key in keys:
        out = outcomes[key]
        if isinstance(out, CellFailure):
            metrics, seconds = out, None
        else:
            metrics, seconds = out["metrics"], out["seconds"]
        results[key] = metrics
        timing[key] = seconds
        rows.append(
            list(key)
            + _metric_cells(metrics)
            + ["%.2fs" % seconds if seconds is not None else "-"]
        )
    report = format_table(
        ["dataset", "loss", "sampler", "BAC", "GM", "FM", "resample+tune"],
        rows,
        title="Table III: GAN-based over-sampling vs EOS (%s space)" % mode,
    )
    report += _degraded_summary(results)
    return {"results": results, "timing": timing, "mode": mode, "report": report}


# ----------------------------------------------------------------------
# Table IV — EOS neighborhood-size sweep
# ----------------------------------------------------------------------
@traced_runner("table4")
def run_table4(
    config=None,
    datasets=("cifar10_like",),
    k_values=(2, 5, 10, 20, 40),
    cache=None,
    registry=None,
    retry_policy=None,
    fail_soft=True,
    workers=None,
    breaker=None,
):
    """EOS K-nearest-neighbor sweep (paper: K in {10..300}, BAC rises
    with K then plateaus).  ``k_values`` defaults scale the sweep to the
    bench dataset size; pass the paper's values at larger scales.
    """
    config = config if config is not None else bench_config()
    cache = _make_cache(cache, registry, retry_policy)
    prewarm_extractors(
        cache,
        [(config.with_overrides(dataset=d), "ce") for d in datasets],
        max_workers=workers,
    )
    grid = _CellGrid(registry, retry_policy, fail_soft, workers, breaker)
    keys = []
    for dataset in datasets:
        cfg = config.with_overrides(dataset=dataset)
        artifacts = _get_artifacts(cache, cfg, "ce", fail_soft)
        for k in k_values:
            key = (dataset, k)
            keys.append(key)
            if isinstance(artifacts, CellFailure):
                grid.stamp(key, artifacts)
            else:
                grid.add(key, "t4/%s/k=%d" % (dataset, k),
                         _sampler_cell(artifacts, "eos", k_neighbors=k))
    results = grid.run()
    rows = [
        [dataset, str(k)] + _metric_cells(results[(dataset, k)])
        for dataset, k in keys
    ]
    report = format_table(
        ["dataset", "K", "BAC", "GM", "FM"],
        rows,
        title="Table IV: EOS nearest-neighbor size analysis",
    )
    report += _degraded_summary(results)
    return {"results": results, "k_values": tuple(k_values), "report": report}


# ----------------------------------------------------------------------
# Table V — architectures with & without EOS
# ----------------------------------------------------------------------
@traced_runner("table5")
def run_table5(config=None, architectures=None, cache=None,
               registry=None, retry_policy=None, fail_soft=True,
               workers=None, breaker=None):
    """EOS across CNN architectures (paper: EOS helps every backbone)."""
    config = config if config is not None else bench_config()
    cache = _make_cache(cache, registry, retry_policy)
    if architectures is None:
        architectures = (
            ("resnet8", {"width_multiplier": 0.5}),
            ("wideresnet", {"depth": 10, "widen_factor": 2, "width_multiplier": 0.5}),
            ("densenet", {"growth_rate": 6, "block_layers": (2, 2, 2)}),
        )
    prewarm_extractors(
        cache,
        [
            (config.with_overrides(model=name, model_kwargs=dict(kwargs)),
             "ce")
            for name, kwargs in architectures
        ],
        max_workers=workers,
    )
    grid = _CellGrid(registry, retry_policy, fail_soft, workers, breaker)
    keys = []
    for model_name, kwargs in architectures:
        cfg = config.with_overrides(model=model_name, model_kwargs=dict(kwargs))
        artifacts = _get_artifacts(cache, cfg, "ce", fail_soft)
        for sampler_name, label in (("none", "baseline"), ("eos", "eos")):
            key = (model_name, label)
            keys.append(key)
            if isinstance(artifacts, CellFailure):
                grid.stamp(key, artifacts)
            else:
                grid.add(key, "t5/%s/%s" % (model_name, label),
                         _sampler_cell(artifacts, sampler_name))
    results = grid.run()
    rows = []
    for model_name, label in keys:
        prefix = model_name if label == "baseline" else "EOS: %s" % model_name
        rows.append([prefix] + _metric_cells(results[(model_name, label)]))
    report = format_table(
        ["network", "BAC", "GM", "FM"],
        rows,
        title="Table V: CNN architectures with & without EOS",
    )
    report += _degraded_summary(results)
    return {"results": results, "report": report}


# ----------------------------------------------------------------------
# Figure 3 — per-class generalization-gap curves
# ----------------------------------------------------------------------
@traced_runner("figure3")
def run_figure3(
    config=None,
    losses=("ce", "asl", "focal", "ldam"),
    samplers=("none", "smote", "bsmote", "balsvm", "eos"),
    cache=None,
):
    """Per-class gap curves per loss and sampler.

    Paper shape: the gap rises with class index (imbalance); SMOTE-family
    curves overlap the baseline (no range change); only EOS flattens the
    tail-class gap.
    """
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    curves = {}
    rows = []
    for loss in losses:
        artifacts = cache.get(config, loss)
        train_labels = artifacts.train.labels
        for name in samplers:
            if name == "none":
                emb, labels = artifacts.train_embeddings, train_labels
            else:
                sampler = build_sampler(
                    name,
                    k_neighbors=config.k_neighbors,
                    random_state=config.seed,
                )
                emb, labels = sampler.fit_resample(
                    artifacts.train_embeddings, train_labels
                )
            gap = generalization_gap(
                emb,
                labels,
                artifacts.test_embeddings,
                artifacts.test.labels,
                artifacts.info["num_classes"],
            )
            curves[(loss, name)] = gap["per_class"]
            rows.append(
                [loss, name]
                + [format_float(v, 3) for v in gap["per_class"]]
                + [format_float(gap["mean"], 3)]
            )
    num_classes = len(next(iter(curves.values())))
    headers = ["loss", "sampler"] + ["c%d" % c for c in range(num_classes)] + ["mean"]
    report = format_table(
        headers, rows, title="Figure 3: per-class generalization gap (tail = minority)"
    )
    from ..utils import ascii_chart

    for loss in losses:
        chart_series = {
            name: curves[(loss, name)]
            for name in samplers
            if (loss, name) in curves
        }
        report += "\n\n" + ascii_chart(
            chart_series,
            width=max(40, 4 * num_classes),
            height=12,
            title="loss=%s (x: class index, y: gap)" % loss,
            x_label="class",
        )
    return {"curves": curves, "report": report}


# ----------------------------------------------------------------------
# Figure 4 — gap for true positives vs false positives
# ----------------------------------------------------------------------
@traced_runner("figure4")
def run_figure4(config=None, datasets=("cifar10_like",), cache=None):
    """TP vs FP generalization gap (paper: FP gap is ~2-4x the TP gap)."""
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    results = {}
    rows = []
    for dataset in datasets:
        cfg = config.with_overrides(dataset=dataset)
        artifacts = cache.get(cfg, "ce")
        from ..core.training import predict_logits

        # Predictions must come from the phase-1 head, not whatever head
        # a previous experiment's fine-tuning left on the shared model.
        artifacts.restore_head()
        preds = predict_logits(
            artifacts.model, artifacts.test.images
        ).argmax(axis=1)
        gaps = tp_fp_gap(
            artifacts.train_embeddings,
            artifacts.train.labels,
            artifacts.test_embeddings,
            artifacts.test.labels,
            preds,
            artifacts.info["num_classes"],
        )
        results[dataset] = gaps
        rows.append(
            [
                dataset,
                format_float(gaps["tp"], 3),
                format_float(gaps["fp"], 3),
                format_float(gaps["ratio"], 2),
            ]
        )
    report = format_table(
        ["dataset", "TP gap", "FP gap", "FP/TP"],
        rows,
        title="Figure 4: generalization gap for TPs vs FPs",
    )
    return {"results": results, "report": report}


# ----------------------------------------------------------------------
# Figure 5 — classifier weight norms per class
# ----------------------------------------------------------------------
@traced_runner("figure5")
def run_figure5(
    config=None,
    losses=("ce", "asl", "focal", "ldam"),
    samplers=("none", "smote", "bsmote", "balsvm", "eos"),
    cache=None,
):
    """Per-class classifier weight norms by loss and sampler.

    Paper shape: baseline norms decay from majority to minority classes;
    EOS yields the largest and most-even norms.
    """
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    profiles = {}
    rows = []
    for loss in losses:
        artifacts = cache.get(config, loss)
        for name in samplers:
            details = evaluate_sampler(artifacts, name, return_details=True)
            norms = classifier_weight_norms(details["head_weight"])
            profiles[(loss, name)] = norms
            summary = norm_imbalance(norms)
            rows.append(
                [loss, name]
                + [format_float(v, 3) for v in norms]
                + [format_float(summary["cv"], 3)]
            )
    num_classes = len(next(iter(profiles.values())))
    headers = ["loss", "sampler"] + ["c%d" % c for c in range(num_classes)] + ["cv"]
    report = format_table(
        headers, rows, title="Figure 5: classifier weight norms per class"
    )
    return {"profiles": profiles, "report": report}


# ----------------------------------------------------------------------
# Figure 6 — t-SNE of a 2-class decision boundary
# ----------------------------------------------------------------------
@traced_runner("figure6")
def run_figure6(
    config=None,
    majority_class=1,
    minority_class=9,
    samplers=("none", "smote", "bsmote", "balsvm", "eos"),
    max_points=150,
    cache=None,
):
    """t-SNE embeddings of majority-vs-minority class structure.

    Paper shape (qualitative): under EOS the minority manifold becomes
    denser/more uniform.  We report embedding coordinates plus two
    quantitative proxies: the minority class's mean nearest-neighbor
    distance in the t-SNE plane (lower = denser), and the minority's
    mean nearest-*enemy* distance (EOS intentionally shrinks this — its
    synthesis targets the class boundary, while SMOTE-family points stay
    interior).
    """
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    artifacts = cache.get(config, "ce")
    embeddings = {}
    rows = []
    for name in samplers:
        if name == "none":
            emb, labels = artifacts.train_embeddings, artifacts.train.labels
        else:
            sampler = build_sampler(
                name, k_neighbors=config.k_neighbors, random_state=config.seed
            )
            emb, labels = sampler.fit_resample(
                artifacts.train_embeddings, artifacts.train.labels
            )
        mask = (labels == majority_class) | (labels == minority_class)
        sub_emb = emb[mask]
        sub_labels = labels[mask]
        if sub_emb.shape[0] > max_points:
            rng = np.random.default_rng(config.seed)
            pick = rng.choice(sub_emb.shape[0], size=max_points, replace=False)
            sub_emb, sub_labels = sub_emb[pick], sub_labels[pick]
        coords = TSNE(perplexity=12, n_iter=250, seed=config.seed).fit_transform(
            sub_emb
        )
        embeddings[name] = (coords, sub_labels)
        density = _minority_density(coords, sub_labels, minority_class)
        margin = _class_margin(coords, sub_labels, minority_class)
        rows.append([name, str(int((sub_labels == minority_class).sum())),
                     format_float(density, 3), format_float(margin, 3)])
    report = format_table(
        ["sampler", "minority pts", "minority mean-NN dist", "nearest-enemy dist"],
        rows,
        title="Figure 6: t-SNE class structure (majority=%d vs minority=%d)"
        % (majority_class, minority_class),
    )
    return {"embeddings": embeddings, "report": report}


def _minority_density(coords, labels, minority_class):
    from ..neighbors import KNeighbors

    pts = coords[labels == minority_class]
    if pts.shape[0] < 2:
        return float("nan")
    index = KNeighbors(k=1).fit(pts)
    dists, _ = index.query(pts, exclude_self=True)
    scale = np.abs(coords).max() or 1.0
    return float(dists.mean() / scale)


def _class_margin(coords, labels, minority_class):
    """Normalized mean distance from each minority point to its nearest
    other-class point in the t-SNE plane.  Low values for EOS reflect
    its boundary-targeted synthesis (samples deliberately approach the
    nearest adversaries); interpolative samplers stay interior."""
    from ..neighbors import nearest_enemies

    if (labels == minority_class).sum() == 0 or len(np.unique(labels)) < 2:
        return float("nan")
    dists, _ = nearest_enemies(coords, labels, k=1)
    scale = np.abs(coords).max() or 1.0
    minority_dists = dists[labels == minority_class, 0]
    finite = minority_dists[np.isfinite(minority_dists)]
    if finite.size == 0:
        return float("nan")
    return float(finite.mean() / scale)


# ----------------------------------------------------------------------
# Figure 7 — BAC vs fine-tuning epochs
# ----------------------------------------------------------------------
@traced_runner("figure7")
def run_figure7(config=None, epochs=30, samplers=("smote", "eos"), cache=None):
    """Fine-tuning length study (paper: both EOS and SMOTE plateau by
    ~epoch 10; EOS keeps a small edge afterwards)."""
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    artifacts = cache.get(config, "ce")
    from ..core import finetune_classifier

    curves = {}
    for name in samplers:
        artifacts.restore_head()
        sampler = build_sampler(
            name, k_neighbors=config.k_neighbors, random_state=config.seed
        )
        emb, labels = sampler.fit_resample(
            artifacts.train_embeddings, artifacts.train.labels
        )

        def eval_hook(epoch):
            from ..core.training import predict_logits

            test_preds = predict_logits(
                artifacts.model, artifacts.test.images
            ).argmax(axis=1)
            train_preds = predict_logits(
                artifacts.model, artifacts.train.images
            ).argmax(axis=1)
            return {
                "test_bac": evaluate_predictions(
                    artifacts.test.labels, test_preds,
                    artifacts.info["num_classes"]
                )["bac"],
                "train_bac": evaluate_predictions(
                    artifacts.train.labels, train_preds,
                    artifacts.info["num_classes"]
                )["bac"],
            }

        history = finetune_classifier(
            artifacts.model,
            emb,
            labels,
            epochs=epochs,
            rng=np.random.default_rng(config.seed + 3),
            eval_hook=eval_hook,
        )
        curves[name] = history
    rows = []
    for name, history in curves.items():
        for rec in history:
            rows.append(
                [
                    name,
                    str(rec["epoch"]),
                    format_float(rec["train_bac"]),
                    format_float(rec["test_bac"]),
                ]
            )
    report = format_table(
        ["sampler", "epoch", "train BAC", "test BAC"],
        rows,
        title="Figure 7: balanced accuracy vs classifier fine-tuning epochs",
    )
    from ..utils import ascii_chart

    chart_series = {}
    for name, history in curves.items():
        chart_series["%s train" % name] = [r["train_bac"] for r in history]
        chart_series["%s test" % name] = [r["test_bac"] for r in history]
    report += "\n\n" + ascii_chart(
        chart_series, width=60, height=12,
        title="fine-tuning curves (x: epoch, y: BAC)", x_label="epoch",
    )
    return {"curves": curves, "report": report}


# ----------------------------------------------------------------------
# §V-E2 — runtime comparison
# ----------------------------------------------------------------------
@traced_runner("runtime_comparison")
def run_runtime_comparison(config=None, samplers=("smote", "bsmote", "balsvm")):
    """Wall-clock cost: pixel-space pre-processing vs the EOS framework.

    Paper shape: pre-processed full training costs ~3x the EOS pipeline
    (train on imbalanced data + embed + fine-tune 10 epochs).
    """
    config = config if config is not None else bench_config()
    pre_seconds = []
    rows = []
    for name in samplers:
        _, seconds = train_preprocessed(config, "ce", name)
        pre_seconds.append(seconds)
        rows.append(["pre-%s (full training)" % name, "%.2f" % seconds])
    avg_pre = float(np.mean(pre_seconds))

    from .pipeline import train_phase1

    start = monotonic()
    artifacts = train_phase1(config, "ce")
    evaluate_sampler(artifacts, "eos")
    eos_seconds = monotonic() - start
    rows.append(["EOS (phase1 + embed + fine-tune)", "%.2f" % eos_seconds])
    speedup = avg_pre / eos_seconds if eos_seconds > 0 else float("inf")
    report = format_table(
        ["pipeline", "seconds"],
        rows,
        title="Runtime: pre-processing vs EOS framework",
    )
    report += "\naverage pre / EOS = %.2fx (paper: ~2.9x)" % speedup
    return {
        "pre_seconds": pre_seconds,
        "eos_seconds": eos_seconds,
        "speedup": speedup,
        "report": report,
    }


# ----------------------------------------------------------------------
# §V-E3 — EOS in pixel space vs embedding space
# ----------------------------------------------------------------------
@traced_runner("eos_pixel_vs_embedding")
def run_eos_pixel_vs_embedding(config=None, cache=None):
    """EOS applied as pixel-space pre-processing vs in embedding space.

    Paper shape: pixel-space EOS loses ~7 BAC points vs embedding-space
    EOS on CIFAR-10.
    """
    config = config if config is not None else bench_config()
    cache = cache if cache is not None else ExtractorCache()
    pixel_metrics, _ = train_preprocessed(config, "ce", "eos")
    artifacts = cache.get(config, "ce")
    embedding_metrics = evaluate_sampler(artifacts, "eos")
    rows = [
        ["EOS in pixel space"] + _metric_cells(pixel_metrics),
        ["EOS in embedding space"] + _metric_cells(embedding_metrics),
    ]
    report = format_table(
        ["variant", "BAC", "GM", "FM"],
        rows,
        title="EOS: pixel-space vs embedding-space application",
    )
    delta = embedding_metrics["bac"] - pixel_metrics["bac"]
    report += "\nembedding-space advantage: %+.4f BAC" % delta
    return {
        "pixel": pixel_metrics,
        "embedding": embedding_metrics,
        "delta_bac": delta,
        "report": report,
    }
