"""Structured runner results: :class:`RunResult` + the tracing wrapper.

:class:`RunResult` is the typed record every runner —
:func:`repro.evals.run_matrix` and the legacy deprecated wrappers —
returns.  The structured fields are attributes:

* ``cells`` (alias ``results``) — the per-cell results mapping;
* ``report`` — the rendered table/figure text;
* ``telemetry`` — the runner's wall time plus, when telemetry is
  enabled, the metrics snapshot captured as the runner finished;
* ``degraded`` — the cell keys whose value is a
  :class:`~repro.resilience.CellFailure` (empty for clean runs);
* ``store_run_id`` — the :class:`repro.evals.ResultStore` run this
  invocation recorded into (None when no store was attached).

Dict-style access (``out["report"]``, ``dict(out)``) still works — the
record stays a :class:`collections.abc.Mapping` over the original
runner output keys — but is deprecated in favor of the attributes and
emits a :class:`DeprecationWarning` for one release.

:func:`traced_runner` is the decorator that wraps a plain-dict runner
in a ``runner`` span and converts its dict into a :class:`RunResult`;
``run_matrix`` inlines the same span/telemetry protocol.
"""

from __future__ import annotations

import functools
import warnings
from collections.abc import Mapping

from ..resilience import CellFailure
from ..telemetry import get_metrics, get_tracer, monotonic

__all__ = ["RunResult", "traced_runner"]


_DICT_ACCESS_MESSAGE = (
    "dict-style access to RunResult is deprecated; use the attributes "
    "(.cells, .report, .telemetry, .degraded, .store_run_id)"
)


class RunResult(Mapping):
    """Typed runner result with a deprecated Mapping compatibility shim.

    Dict-style consumers (``out["report"]``, ``"results" in out``,
    ``dict(out)``) see every original key plus ``telemetry`` and
    ``degraded`` (and ``store_run_id`` when a result store recorded the
    run), exactly as before — behind a :class:`DeprecationWarning`.
    """

    def __init__(self, data, telemetry=None, store_run_id=None):
        self._data = dict(data)
        if "telemetry" not in self._data:
            self._data["telemetry"] = telemetry if telemetry is not None else {}
        if "degraded" not in self._data:
            self._data["degraded"] = _failed_cells(self._data.get("results"))
        if store_run_id is not None and "store_run_id" not in self._data:
            self._data["store_run_id"] = store_run_id

    # -- deprecated mapping shim -----------------------------------------
    def __getitem__(self, key):
        warnings.warn(_DICT_ACCESS_MESSAGE, DeprecationWarning, stacklevel=2)
        return self._data[key]

    def __iter__(self):
        warnings.warn(_DICT_ACCESS_MESSAGE, DeprecationWarning, stacklevel=2)
        return iter(self._data)

    def __len__(self):
        return len(self._data)

    # -- structured fields -----------------------------------------------
    @property
    def cells(self):
        """Per-cell results mapping (empty for figure-style runners)."""
        return self._data.get("results", {})

    @property
    def results(self):
        """Alias of :attr:`cells` (the historical name)."""
        return self.cells

    @property
    def report(self):
        """The rendered table/figure report text."""
        return self._data.get("report", "")

    @property
    def telemetry(self):
        """Runner wall time and (when enabled) the metrics snapshot."""
        return self._data["telemetry"]

    @property
    def degraded(self):
        """Cell keys that degraded to :class:`CellFailure` outcomes."""
        return self._data["degraded"]

    @property
    def store_run_id(self):
        """The result-store run id this run recorded into, or None."""
        return self._data.get("store_run_id")

    def __repr__(self):
        return "RunResult(keys=%s, degraded=%d)" % (
            sorted(map(str, self._data)),
            len(self.degraded),
        )


def _failed_cells(results):
    if not isinstance(results, dict):
        return []
    return [key for key, value in results.items()
            if isinstance(value, CellFailure)]


def traced_runner(name):
    """Wrap a runner: ``runner`` span + dict -> :class:`RunResult`.

    With telemetry disabled this adds two clock reads and a null-span
    context enter/exit; the wrapped runner's dict content is unchanged.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = get_tracer()
            start = monotonic()
            with tracer.span("runner", runner=name):
                out = fn(*args, **kwargs)
            info = {
                "runner": name,
                "enabled": tracer.enabled,
                "seconds": monotonic() - start,
            }
            if tracer.enabled:
                info["metrics"] = get_metrics().snapshot()
            return RunResult(out, telemetry=info)

        return wrapper

    return decorate
