"""Structured runner results: :class:`RunResult` + the tracing wrapper.

Every ``run_table*`` / ``run_figure*`` runner historically returned a
plain dict (``results``, ``report``, extras like ``post_wins``).
:class:`RunResult` keeps that contract — it is a
:class:`collections.abc.Mapping` over the same keys, so ``out["report"]``
and ``dict(out)`` behave exactly as before — while adding attribute
access and two derived fields:

* ``telemetry`` — the runner's wall time plus, when telemetry is
  enabled, the metrics snapshot captured as the runner finished;
* ``degraded`` — the cell keys whose value is a
  :class:`~repro.resilience.CellFailure` (empty for clean runs).

:func:`traced_runner` is the decorator that wraps each runner in a
``runner`` span and converts its dict into a :class:`RunResult`.
"""

from __future__ import annotations

import functools
from collections.abc import Mapping

from ..resilience import CellFailure
from ..telemetry import get_metrics, get_tracer, monotonic

__all__ = ["RunResult", "traced_runner"]


class RunResult(Mapping):
    """Mapping-compatible view of a runner's output dict.

    Dict-style consumers (``out["report"]``, ``"results" in out``,
    ``dict(out)``) see every original key plus ``telemetry`` and
    ``degraded``; attribute access covers the four structured fields.
    """

    def __init__(self, data, telemetry=None):
        self._data = dict(data)
        if "telemetry" not in self._data:
            self._data["telemetry"] = telemetry if telemetry is not None else {}
        if "degraded" not in self._data:
            self._data["degraded"] = _failed_cells(self._data.get("results"))

    # -- mapping protocol ------------------------------------------------
    def __getitem__(self, key):
        return self._data[key]

    def __iter__(self):
        return iter(self._data)

    def __len__(self):
        return len(self._data)

    # -- structured fields -----------------------------------------------
    @property
    def results(self):
        """Per-cell results mapping (empty for figure-style runners)."""
        return self._data.get("results", {})

    @property
    def report(self):
        """The rendered table/figure report text."""
        return self._data.get("report", "")

    @property
    def telemetry(self):
        """Runner wall time and (when enabled) the metrics snapshot."""
        return self._data["telemetry"]

    @property
    def degraded(self):
        """Cell keys that degraded to :class:`CellFailure` outcomes."""
        return self._data["degraded"]

    def __repr__(self):
        return "RunResult(keys=%s, degraded=%d)" % (
            sorted(map(str, self._data)),
            len(self.degraded),
        )


def _failed_cells(results):
    if not isinstance(results, dict):
        return []
    return [key for key, value in results.items()
            if isinstance(value, CellFailure)]


def traced_runner(name):
    """Wrap a runner: ``runner`` span + dict -> :class:`RunResult`.

    With telemetry disabled this adds two clock reads and a null-span
    context enter/exit; the wrapped runner's dict content is unchanged.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = get_tracer()
            start = monotonic()
            with tracer.span("runner", runner=name):
                out = fn(*args, **kwargs)
            info = {
                "runner": name,
                "enabled": tracer.enabled,
                "seconds": monotonic() - start,
            }
            if tracer.enabled:
                info["metrics"] = get_metrics().snapshot()
            return RunResult(out, telemetry=info)

        return wrapper

    return decorate
