"""Experiment harness: configs, pipelines and per-table/figure runners."""

from .config import (
    LOSS_NAMES,
    SAMPLER_NAMES,
    ExperimentConfig,
    bench_config,
    build_sampler,
    full_config,
)
from .pipeline import (
    ExtractorCache,
    Phase1Artifacts,
    evaluate_sampler,
    phase1_fingerprint,
    train_phase1,
    train_preprocessed,
)
from .result import RunResult, traced_runner
from .stats import aggregate_metrics, repeated_sampler_comparison, run_seeds
from .sweeps import grid_sweep, sweep_report
from .runners import (
    run_eos_pixel_vs_embedding,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_runtime_comparison,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

__all__ = [
    "ExperimentConfig",
    "bench_config",
    "full_config",
    "build_sampler",
    "SAMPLER_NAMES",
    "LOSS_NAMES",
    "ExtractorCache",
    "Phase1Artifacts",
    "evaluate_sampler",
    "phase1_fingerprint",
    "train_phase1",
    "train_preprocessed",
    "RunResult",
    "traced_runner",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_runtime_comparison",
    "run_eos_pixel_vs_embedding",
    "aggregate_metrics",
    "run_seeds",
    "repeated_sampler_comparison",
    "grid_sweep",
    "sweep_report",
]
