"""Grid sweeps over experiment configuration fields.

Generic hyper-parameter exploration for the reproduction: cross every
combination of the given config-field values, evaluate each with a
user-supplied function, and report a ranked table.  Used for the
K-neighborhood and fine-tune-length analyses beyond the fixed grids the
paper reports.
"""

from __future__ import annotations

import itertools

from ..evals.views import ranked_metric_table

__all__ = ["grid_sweep", "sweep_report"]


def grid_sweep(config, param_grid, evaluate, max_workers=1):
    """Evaluate ``evaluate(config_variant)`` over a parameter grid.

    Parameters
    ----------
    config:
        Base :class:`repro.experiments.ExperimentConfig`.
    param_grid:
        Dict mapping config field name -> list of values.  Keys that are
        not config fields raise immediately (typo guard).
    evaluate:
        Callable ``(config) -> dict`` returning at least one numeric
        metric (e.g. the BAC/GM/FM triple).
    max_workers:
        Grid points evaluated concurrently (process pool); results are
        identical to serial evaluation for any value.  ``None`` uses the
        process-wide default installed by ``--workers``.

    Returns a list of ``{"params": {...}, "metrics": {...}}`` records in
    grid order.
    """
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    for key in param_grid:
        if not hasattr(config, key):
            raise KeyError("unknown config field %r" % key)
    names = list(param_grid)
    variants = []
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        variants.append((params, config.with_overrides(**params)))

    from ..parallel import parallel_map

    metrics_list = parallel_map(
        lambda item, _seed: dict(evaluate(item[1])),
        variants,
        max_workers=max_workers,
        task_label=lambda item, _index: repr(item[0]),
    )
    return [
        {"params": params, "metrics": metrics}
        for (params, _variant), metrics in zip(variants, metrics_list)
    ]


def sweep_report(results, sort_by="bac", descending=True, title=None):
    """Render sweep results as a ranked text table.

    NaN metrics (degraded or FAILED cells) always sort below every
    finite value — regardless of ``descending`` — keeping grid order
    among themselves, and their cells are marked with a ``*``.

    Rendering delegates to
    :func:`repro.evals.views.ranked_metric_table` — the same view
    function the result store uses — so serial sweeps and store-backed
    reports cannot drift apart.
    """
    return ranked_metric_table(results, sort_by=sort_by,
                               descending=descending, title=title)
