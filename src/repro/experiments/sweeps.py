"""Grid sweeps over experiment configuration fields.

Generic hyper-parameter exploration for the reproduction: cross every
combination of the given config-field values, evaluate each with a
user-supplied function, and report a ranked table.  Used for the
K-neighborhood and fine-tune-length analyses beyond the fixed grids the
paper reports.
"""

from __future__ import annotations

import itertools

from ..utils import format_float, format_table

__all__ = ["grid_sweep", "sweep_report"]


def grid_sweep(config, param_grid, evaluate):
    """Evaluate ``evaluate(config_variant)`` over a parameter grid.

    Parameters
    ----------
    config:
        Base :class:`repro.experiments.ExperimentConfig`.
    param_grid:
        Dict mapping config field name -> list of values.  Keys that are
        not config fields raise immediately (typo guard).
    evaluate:
        Callable ``(config) -> dict`` returning at least one numeric
        metric (e.g. the BAC/GM/FM triple).

    Returns a list of ``{"params": {...}, "metrics": {...}}`` records in
    grid order.
    """
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    for key in param_grid:
        if not hasattr(config, key):
            raise KeyError("unknown config field %r" % key)
    names = list(param_grid)
    results = []
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        variant = config.with_overrides(**params)
        metrics = evaluate(variant)
        results.append({"params": params, "metrics": dict(metrics)})
    return results


def sweep_report(results, sort_by="bac", descending=True, title=None):
    """Render sweep results as a ranked text table."""
    if not results:
        raise ValueError("no sweep results to report")
    param_names = list(results[0]["params"])
    metric_names = list(results[0]["metrics"])
    if sort_by not in metric_names:
        raise KeyError("unknown metric %r" % sort_by)
    ordered = sorted(
        results, key=lambda r: r["metrics"][sort_by], reverse=descending
    )
    rows = []
    for record in ordered:
        rows.append(
            [str(record["params"][name]) for name in param_names]
            + [format_float(record["metrics"][m]) for m in metric_names]
        )
    return format_table(
        param_names + metric_names,
        rows,
        title=title or ("Sweep ranked by %s" % sort_by),
    )
