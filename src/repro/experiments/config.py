"""Experiment configuration and component registries.

An :class:`ExperimentConfig` pins every knob of a reproduction run:
dataset profile and scale, architecture, training lengths, and the EOS
neighborhood.  Two presets are provided:

* ``bench_config()`` — a minutes-scale configuration used by the
  benchmark suite (tiny synthetic datasets, compact CNN, few epochs);
* ``full_config()`` — the larger configuration for the
  ``examples/reproduce_paper.py`` driver.

``build_sampler`` is the single factory the runners use to construct
any over-sampler (classic, SVM-based, GAN-based, or EOS) by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core import EOS
from ..gans import BAGAN, CGAN, GAMO, DeepSMOTE
from ..sampling import (
    ADASYN,
    CCR,
    SWIM,
    BalancedSVMSampler,
    BorderlineSMOTE,
    RadialBasedOversampler,
    RandomOverSampler,
    Remix,
    SMOTE,
)

__all__ = [
    "ExperimentConfig",
    "bench_config",
    "full_config",
    "build_sampler",
    "SAMPLER_NAMES",
    "LOSS_NAMES",
]

#: Losses the paper evaluates, in its presentation order.
LOSS_NAMES = ("ce", "asl", "focal", "ldam")

#: Samplers constructible via :func:`build_sampler`.
SAMPLER_NAMES = (
    "none",
    "ros",
    "smote",
    "bsmote",
    "balsvm",
    "adasyn",
    "remix",
    "rbo",
    "ccr",
    "swim",
    "eos",
    "eos_away",
    "cgan",
    "bagan",
    "gamo",
    "deepsmote",
)


@dataclass
class ExperimentConfig:
    """All knobs of one reproduction run."""

    dataset: str = "cifar10_like"
    scale: str = "tiny"
    model: str = "smallconvnet"
    model_kwargs: dict = field(default_factory=dict)
    phase1_epochs: int = 8
    finetune_epochs: int = 10
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    finetune_lr: float = 0.05
    k_neighbors: int = 10
    #: pixel-space train augmentation (crop+flip).  Off by default: the
    #: synthetic image families are not translation/flip invariant the
    #: way natural images are, so the CIFAR-style augmentations hurt.
    augment: bool = False
    seed: int = 0

    def with_overrides(self, **kwargs):
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def bench_config(**overrides):
    """Minutes-scale configuration used by the benchmark suite."""
    config = ExperimentConfig(
        dataset="cifar10_like",
        scale="tiny",
        model="smallconvnet",
        model_kwargs={"width": 6},
        phase1_epochs=20,
        finetune_epochs=10,
    )
    return config.with_overrides(**overrides) if overrides else config


def full_config(**overrides):
    """Larger configuration for the standalone reproduction driver."""
    config = ExperimentConfig(
        dataset="cifar10_like",
        scale="small",
        model="resnet8",
        model_kwargs={"width_multiplier": 0.5},
        phase1_epochs=20,
        finetune_epochs=10,
    )
    return config.with_overrides(**overrides) if overrides else config


def build_sampler(name, k_neighbors=10, random_state=0, **kwargs):
    """Construct an over-sampler by registry name.

    ``"none"`` returns None (no resampling).  GAN samplers receive their
    own compact defaults; ``k_neighbors`` applies to the neighbor-based
    methods.
    """
    if name == "none":
        return None
    if name == "ros":
        return RandomOverSampler(random_state=random_state, **kwargs)
    if name == "smote":
        return SMOTE(
            k_neighbors=k_neighbors, random_state=random_state, **kwargs
        )
    if name == "bsmote":
        return BorderlineSMOTE(
            k_neighbors=k_neighbors, random_state=random_state, **kwargs
        )
    if name == "balsvm":
        return BalancedSVMSampler(
            k_neighbors=k_neighbors, random_state=random_state, **kwargs
        )
    if name == "adasyn":
        return ADASYN(
            k_neighbors=k_neighbors, random_state=random_state, **kwargs
        )
    if name == "remix":
        return Remix(random_state=random_state, **kwargs)
    if name == "rbo":
        return RadialBasedOversampler(random_state=random_state, **kwargs)
    if name == "ccr":
        return CCR(random_state=random_state, **kwargs)
    if name == "swim":
        return SWIM(random_state=random_state, **kwargs)
    if name == "eos":
        return EOS(
            k_neighbors=k_neighbors, random_state=random_state, **kwargs
        )
    if name == "eos_away":
        return EOS(
            k_neighbors=k_neighbors,
            direction="away",
            random_state=random_state,
            **kwargs,
        )
    if name == "cgan":
        return CGAN(random_state=random_state, **kwargs)
    if name == "bagan":
        return BAGAN(random_state=random_state, **kwargs)
    if name == "gamo":
        return GAMO(random_state=random_state, **kwargs)
    if name == "deepsmote":
        return DeepSMOTE(
            k_neighbors=k_neighbors, random_state=random_state, **kwargs
        )
    raise KeyError(
        "unknown sampler %r (available: %s)" % (name, ", ".join(SAMPLER_NAMES))
    )
