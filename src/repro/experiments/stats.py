"""Multi-seed repetition and aggregation for experiment results.

The paper trains every model on three cuts of the training set and
reports a single representative cut (variation < 2 BAC points).  These
helpers make that protocol explicit: run any metric-producing function
over several seeds and aggregate mean/std per metric.
"""

from __future__ import annotations

import numpy as np

from ..utils import format_float, format_table

__all__ = ["aggregate_metrics", "run_seeds", "repeated_sampler_comparison"]


def aggregate_metrics(metric_dicts):
    """Aggregate a list of {metric: value} dicts into mean/std per metric.

    Returns ``{metric: (mean, std)}``; every dict must share keys.
    """
    if not metric_dicts:
        raise ValueError("no metric dicts to aggregate")
    keys = set(metric_dicts[0])
    for d in metric_dicts[1:]:
        if set(d) != keys:
            raise ValueError("metric dicts have mismatched keys")
    return {
        key: (
            float(np.mean([d[key] for d in metric_dicts])),
            float(np.std([d[key] for d in metric_dicts])),
        )
        for key in keys
    }


def run_seeds(fn, seeds, max_workers=1):
    """Call ``fn(seed)`` (returning a metric dict) for each seed; aggregate.

    ``max_workers`` runs the seeds across worker processes (results are
    identical to serial for any value; ``None`` uses the process-wide
    default the CLI's ``--workers`` installs).  Returns
    ``(per_seed_list, aggregated)``.
    """
    from ..parallel import parallel_map

    per_seed = parallel_map(
        lambda seed, _derived: fn(seed),
        seeds,
        max_workers=max_workers,
        task_label=lambda seed, _index: "seed=%r" % (seed,),
    )
    return per_seed, aggregate_metrics(per_seed)


def repeated_sampler_comparison(config, loss_name, sampler_names, seeds,
                                max_workers=1):
    """Seed-averaged sampler comparison on fresh extractors.

    Trains one extractor per seed (its own training cut and model init)
    and evaluates every sampler on each, mirroring the paper's
    three-cut protocol.  Each seed is one unit of parallel work (the
    extractor training dominates); ``max_workers`` fans seeds out with
    bit-identical results.  Returns a dict with per-sampler aggregated
    metrics and a rendered report.
    """
    from ..parallel import parallel_map
    from .pipeline import evaluate_sampler, train_phase1

    def one_seed(seed, _derived):
        artifacts = train_phase1(config.with_overrides(seed=seed), loss_name)
        return [evaluate_sampler(artifacts, name) for name in sampler_names]

    per_seed = parallel_map(
        one_seed,
        seeds,
        max_workers=max_workers,
        task_label=lambda seed, _index: "seed=%r" % (seed,),
    )
    per_sampler = {name: [] for name in sampler_names}
    for seed_metrics in per_seed:
        for name, metrics in zip(sampler_names, seed_metrics):
            per_sampler[name].append(metrics)

    aggregated = {
        name: aggregate_metrics(runs) for name, runs in per_sampler.items()
    }
    rows = []
    for name, agg in aggregated.items():
        rows.append(
            [name]
            + [
                "%s ±%s" % (format_float(agg[m][0]), format_float(agg[m][1], 3))
                for m in ("bac", "gm", "fm")
            ]
        )
    report = format_table(
        ["sampler", "BAC", "GM", "FM"],
        rows,
        title="Seed-averaged comparison (%s, %s, %d seeds)"
        % (config.dataset, loss_name, len(seeds)),
    )
    return {"per_sampler": per_sampler, "aggregated": aggregated, "report": report}
