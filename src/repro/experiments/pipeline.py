"""Shared experiment machinery: extractor training, sampler evaluation.

The expensive step of every experiment is phase-1 CNN training; many
experiments then compare several samplers on the *same* trained
extractor.  :class:`ExtractorCache` trains each (dataset, loss, model,
seed) combination once and snapshots the model state so each sampler
evaluation starts from identical weights.  The cache is bounded (LRU)
and can be backed by a :class:`repro.resilience.RunRegistry`, in which
case phase-1 artifacts are persisted at the phase boundary and evicted
or interrupted runs reload them from disk instead of retraining.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np

from ..core import ThreePhaseTrainer, extract_features, finetune_classifier
from ..core.gap import generalization_gap
from ..data import make_dataset, standard_augmentation
from ..losses import build_loss
from ..metrics import evaluate_predictions
from ..nn import build_model
from ..optim import SGD
from ..guard import report_phase
from ..resilience import fingerprint_of, maybe_fire
from ..telemetry import get_metrics, get_tracer, monotonic
from ..tensor import default_dtype
from .config import build_sampler

__all__ = [
    "Phase1Artifacts",
    "ExtractorCache",
    "phase1_fingerprint",
    "prewarm_extractors",
    "train_phase1",
    "evaluate_sampler",
    "train_preprocessed",
]


class Phase1Artifacts:
    """Everything produced by one phase-1 training run."""

    def __init__(
        self,
        config,
        loss_name,
        model,
        train,
        test,
        info,
        train_embeddings,
        test_embeddings,
        baseline_metrics,
        head_state,
        train_seconds,
    ):
        self.config = config
        self.loss_name = loss_name
        self.model = model
        self.train = train
        self.test = test
        self.info = info
        self.train_embeddings = train_embeddings
        self.test_embeddings = test_embeddings
        self.baseline_metrics = baseline_metrics
        self.head_state = head_state
        self.train_seconds = train_seconds

    def restore_head(self):
        """Reset the classifier head to its phase-1 weights."""
        self.model.classifier.load_state_dict(self.head_state)

    def baseline_gap(self):
        """Generalization gap of the phase-1 model (no resampling)."""
        return generalization_gap(
            self.train_embeddings,
            self.train.labels,
            self.test_embeddings,
            self.test.labels,
            self.info["num_classes"],
        )


def _make_model_and_data(config, rng_offset=0):
    train, test, info = make_dataset(
        config.dataset, scale=config.scale, seed=config.seed
    )
    model = build_model(
        config.model,
        num_classes=info["num_classes"],
        rng=np.random.default_rng(config.seed + 1 + rng_offset),
        **config.model_kwargs,
    )
    return model, train, test, info


def _loss_kwargs(config, loss_name):
    """Loss hyper-parameters that depend on the training schedule."""
    if loss_name == "ldam":
        # Deferred re-weighting kicks in halfway through training.
        return {"drw_epoch": max(1, config.phase1_epochs // 2)}
    return {}


def _phase1_key(config, loss_name):
    return (
        config.dataset,
        config.scale,
        config.model,
        tuple(sorted(config.model_kwargs.items())),
        config.phase1_epochs,
        config.batch_size,
        config.lr,
        config.augment,
        loss_name,
        config.seed,
    )


def phase1_fingerprint(config, loss_name):
    """Stable registry fingerprint for one phase-1 training run."""
    return fingerprint_of("phase1", *_phase1_key(config, loss_name))


def _train_phase1_attempt(config, loss_name, attempt=None):
    """One phase-1 training trial (possibly a seed-bumped retry)."""
    index = 0 if attempt is None else attempt.index
    seed_offset = 0 if attempt is None else attempt.seed_offset
    lr_scale = 1.0 if attempt is None else attempt.lr_scale
    max_seconds = None if attempt is None else attempt.max_seconds
    report_phase("phase1:%s/%s" % (config.dataset, loss_name))
    maybe_fire("phase1.trial", loss=loss_name, attempt=index)
    model, train, test, info = _make_model_and_data(
        config, rng_offset=seed_offset
    )
    loss = build_loss(
        loss_name,
        class_counts=info["train_counts"],
        **_loss_kwargs(config, loss_name),
    )
    optimizer = SGD(
        model.parameters(),
        lr=config.lr * lr_scale,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    trainer = ThreePhaseTrainer(model, loss, optimizer, sampler=None)
    transform = standard_augmentation() if config.augment else None
    start = monotonic()
    trainer.train_phase1(
        train,
        epochs=config.phase1_epochs,
        batch_size=config.batch_size,
        transform=transform,
        rng=np.random.default_rng(config.seed + 2 + seed_offset),
        max_seconds=max_seconds,
    )
    train_seconds = monotonic() - start
    train_emb = trainer.extract_embeddings(train)
    test_emb = extract_features(model, test.images)
    baseline = trainer.phase1.evaluate(test)
    head_state = model.classifier.state_dict()
    return Phase1Artifacts(
        config,
        loss_name,
        model,
        train,
        test,
        info,
        train_emb,
        test_emb,
        baseline,
        head_state,
        train_seconds,
    )


def _load_phase1_artifacts(config, loss_name, registry, fingerprint):
    """Rebuild :class:`Phase1Artifacts` from persisted registry state.

    Datasets are regenerated deterministically from the config (they are
    seeded), the model skeleton is rebuilt and its persisted weights
    loaded, so a resumed run is bit-identical to the run that wrote the
    checkpoint.
    """
    model, train, test, info = _make_model_and_data(config)
    model_state, head_state, train_pair, test_pair, meta = (
        registry.load_phase1(fingerprint)
    )
    model.load_state_dict(model_state)
    train_emb, _ = train_pair
    test_emb, _ = test_pair
    return Phase1Artifacts(
        config,
        loss_name,
        model,
        train,
        test,
        info,
        train_emb,
        test_emb,
        dict(meta["baseline_metrics"]),
        head_state,
        meta["train_seconds"],
    )


def _save_phase1_artifacts(registry, fingerprint, artifacts):
    get_metrics().counter("cache.persists").inc()
    registry.save_phase1(
        fingerprint,
        artifacts.model.state_dict(),
        artifacts.head_state,
        artifacts.train_embeddings,
        artifacts.train.labels,
        artifacts.test_embeddings,
        artifacts.test.labels,
        {
            "loss": artifacts.loss_name,
            "train_seconds": artifacts.train_seconds,
            "baseline_metrics": artifacts.baseline_metrics,
        },
    )


def train_phase1(config, loss_name, registry=None, retry_policy=None):
    """Train one extractor end-to-end; returns :class:`Phase1Artifacts`.

    With a ``registry``, previously persisted artifacts for the same
    configuration are loaded instead of retraining, and fresh training
    results are persisted at the phase boundary.  With a
    ``retry_policy``, a divergent or timed-out trial is re-run with the
    policy's deterministic seed-bump and LR-backoff schedule.
    """
    fingerprint = None
    if registry is not None:
        fingerprint = phase1_fingerprint(config, loss_name)
        if registry.has_phase1(fingerprint):
            return _load_phase1_artifacts(
                config, loss_name, registry, fingerprint
            )
    if retry_policy is None:
        artifacts = _train_phase1_attempt(config, loss_name)
    else:
        artifacts = retry_policy.run(
            lambda attempt: _train_phase1_attempt(config, loss_name, attempt)
        )
    if registry is not None:
        _save_phase1_artifacts(registry, fingerprint, artifacts)
    return artifacts


class ExtractorCache:
    """Bounded LRU memo of phase-1 training, optionally registry-backed.

    Parameters
    ----------
    max_entries:
        In-memory bound; the least-recently-used artifact set is evicted
        when exceeded.  ``None`` means unbounded (the pre-resilience
        behavior).
    registry:
        Optional :class:`repro.resilience.RunRegistry`.  Artifacts are
        persisted on first training, and cache misses (including
        re-requests for evicted entries) reload from disk instead of
        retraining.
    retry_policy:
        Optional :class:`repro.resilience.RetryPolicy` applied to each
        phase-1 training run.

    Ownership
    ---------
    A cache instance is owned by the process that created it.  The
    mutating paths (:meth:`get` / :meth:`put`) refuse to run in a forked
    child: fork copies the cache's memory copy-on-write, so a child's
    insertions and LRU promotions would silently diverge from the
    parent's — the entry "lands" in a cache nobody ever reads again and
    the hit/miss statistics lie.  The correct pattern is the one
    :func:`prewarm_extractors` uses: workers ship picklable artifacts
    back and the *parent* calls :meth:`put`.  Read-only probes
    (:meth:`contains` / :meth:`stats`) stay legal from any process.
    """

    def __init__(self, max_entries=8, registry=None, retry_policy=None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self._cache = OrderedDict()
        self.max_entries = max_entries
        self.registry = registry
        self.retry_policy = retry_policy
        self._owner_pid = os.getpid()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _check_owner(self, method):
        if os.getpid() != self._owner_pid:
            raise RuntimeError(
                "ExtractorCache.%s called from process %d, but the cache "
                "is owned by process %d: a forked child's mutations are "
                "invisible to the parent (copy-on-write), so the entry "
                "would be silently lost.  Return artifacts to the owning "
                "process and call put() there (see prewarm_extractors)."
                % (method, os.getpid(), self._owner_pid)
            )

    def get(self, config, loss_name):
        self._check_owner("get")
        key = _phase1_key(config, loss_name)
        metrics = get_metrics()
        if key in self._cache:
            self._hits += 1
            metrics.counter("cache.hits").inc()
            self._cache.move_to_end(key)
            return self._cache[key]
        self._misses += 1
        metrics.counter("cache.misses").inc()
        artifacts = train_phase1(
            config,
            loss_name,
            registry=self.registry,
            retry_policy=self.retry_policy,
        )
        self._cache[key] = artifacts
        if self.max_entries is not None:
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
                self._evictions += 1
                metrics.counter("cache.evictions").inc()
        return artifacts

    def contains(self, config, loss_name):
        """True when :meth:`get` would not retrain (memory or registry)."""
        key = _phase1_key(config, loss_name)
        if key in self._cache:
            return True
        if self.registry is not None:
            return self.registry.has_phase1(
                phase1_fingerprint(config, loss_name)
            )
        return False

    def put(self, config, loss_name, artifacts):
        """Seed the cache with externally trained artifacts.

        Used by :func:`prewarm_extractors` after parallel phase-1
        training: artifacts are persisted to the registry (if one is
        attached and doesn't have them yet) and inserted as the
        most-recently-used entry, honoring the LRU bound.
        """
        self._check_owner("put")
        key = _phase1_key(config, loss_name)
        if self.registry is not None:
            fingerprint = phase1_fingerprint(config, loss_name)
            if not self.registry.has_phase1(fingerprint):
                _save_phase1_artifacts(self.registry, fingerprint, artifacts)
        self._cache[key] = artifacts
        self._cache.move_to_end(key)
        if self.max_entries is not None:
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
                self._evictions += 1
                get_metrics().counter("cache.evictions").inc()
        return artifacts

    def stats(self):
        """Cache effectiveness counters (survive :meth:`clear`)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "size": len(self._cache),
            "max_entries": self.max_entries,
        }

    def clear(self):
        self._cache.clear()


def prewarm_extractors(cache, jobs, max_workers=None):
    """Train the distinct phase-1 extractors ``jobs`` needs, in parallel.

    ``jobs`` is an iterable of ``(config, loss_name)`` pairs (duplicates
    and already-cached entries are skipped).  Each remaining extractor
    trains in its own worker process — reusing the cache's retry policy
    — and ships back only picklable state (weight dicts + embeddings);
    the parent rebuilds :class:`Phase1Artifacts` through the same
    deterministic reconstruction path the registry-resume machinery
    uses, then seeds ``cache`` via :meth:`ExtractorCache.put`.

    A job whose worker fails is left untrained: the runner's serial
    ``cache.get`` fallback re-trains (or re-raises) with full context,
    so prewarming never changes outcomes — only wall-clock.  Returns
    the number of extractors warmed.
    """
    from ..parallel import TaskFailure, parallel_map, resolve_workers

    unique, seen = [], set()
    for config, loss_name in jobs:
        key = _phase1_key(config, loss_name)
        if key in seen:
            continue
        seen.add(key)
        if not cache.contains(config, loss_name):
            unique.append((config, loss_name))
    if len(unique) < 2 or resolve_workers(max_workers) <= 1:
        return 0

    retry_policy = cache.retry_policy

    def train_job(job, _seed):
        config, loss_name = job
        if retry_policy is None:
            artifacts = _train_phase1_attempt(config, loss_name)
        else:
            artifacts = retry_policy.run(
                lambda attempt: _train_phase1_attempt(
                    config, loss_name, attempt
                )
            )
        return {
            "model_state": artifacts.model.state_dict(),
            "head_state": artifacts.head_state,
            "train_embeddings": artifacts.train_embeddings,
            "test_embeddings": artifacts.test_embeddings,
            "baseline_metrics": artifacts.baseline_metrics,
            "train_seconds": artifacts.train_seconds,
        }

    outs = parallel_map(
        train_job,
        unique,
        max_workers=max_workers,
        on_error="return",
        task_label=lambda job, _index: "phase1/%s/%s"
        % (job[0].dataset, job[1]),
    )
    warmed = 0
    for (config, loss_name), out in zip(unique, outs):
        if isinstance(out, TaskFailure):
            continue
        model, train, test, info = _make_model_and_data(config)
        model.load_state_dict(out["model_state"])
        cache.put(config, loss_name, Phase1Artifacts(
            config,
            loss_name,
            model,
            train,
            test,
            info,
            out["train_embeddings"],
            out["test_embeddings"],
            out["baseline_metrics"],
            out["head_state"],
            out["train_seconds"],
        ))
        warmed += 1
    return warmed


def evaluate_sampler(
    artifacts,
    sampler_name,
    finetune_epochs=None,
    k_neighbors=None,
    finetune_lr=None,
    sampler_kwargs=None,
    return_details=False,
    seed=None,
):
    """Fine-tune the cached extractor's head with one sampler; score it.

    The classifier head is restored to its phase-1 state first, so calls
    are independent and order-insensitive.  ``sampler_name="none"``
    scores the phase-1 baseline without fine-tuning.  ``seed`` overrides
    the config seed for the sampler and fine-tuning RNG — retry policies
    use it to bump the random draw of a diverged cell deterministically.
    """
    config = artifacts.config
    finetune_epochs = (
        finetune_epochs if finetune_epochs is not None else config.finetune_epochs
    )
    k = k_neighbors if k_neighbors is not None else config.k_neighbors
    lr = finetune_lr if finetune_lr is not None else config.finetune_lr
    seed = seed if seed is not None else config.seed
    artifacts.restore_head()

    if sampler_name == "none":
        metrics = dict(artifacts.baseline_metrics)
        resampled = (artifacts.train_embeddings, artifacts.train.labels)
        seconds = 0.0
    else:
        sampler = build_sampler(
            sampler_name,
            k_neighbors=k,
            random_state=seed,
            **(sampler_kwargs or {}),
        )
        start = monotonic()
        emb, labels = sampler.fit_resample(
            artifacts.train_embeddings, artifacts.train.labels
        )
        # Samplers interpolate with float64 coefficients and so widen
        # float32 embeddings; narrow once at the phase boundary so the
        # fine-tune loop (and the returned details) stay in the
        # substrate default instead of re-casting every epoch.
        emb = np.asarray(emb, dtype=default_dtype())
        with get_tracer().span("finetune", sampler=sampler_name):
            finetune_classifier(
                artifacts.model,
                emb,
                labels,
                epochs=finetune_epochs,
                lr=lr,
                rng=np.random.default_rng(seed + 3),
            )
        seconds = monotonic() - start
        preds = _predict(artifacts)
        metrics = evaluate_predictions(
            artifacts.test.labels, preds, artifacts.info["num_classes"]
        )
        resampled = (emb, labels)

    if not return_details:
        return metrics
    return {
        "metrics": metrics,
        "resampled": resampled,
        "seconds": seconds,
        "head_weight": artifacts.model.classifier.weight.data.copy(),
    }


def _predict(artifacts, batch_size=256):
    from ..core.training import predict_logits

    logits = predict_logits(artifacts.model, artifacts.test.images, batch_size)
    return logits.argmax(axis=1)


def train_preprocessed(config, loss_name, sampler_name, sampler_kwargs=None,
                       max_seconds=None):
    """Pixel-space pre-processing baseline: resample images, train end-to-end.

    Images are flattened for the sampler and reshaped back, matching how
    SMOTE-family methods are applied to image data as a pre-processing
    step.  ``max_seconds`` bounds the training wall-clock (see
    :meth:`repro.core.Trainer.fit`).  Returns (metrics, wall_seconds).
    """
    from ..data import ArrayDataset

    model, train, test, info = _make_model_and_data(config, rng_offset=7)
    start = monotonic()

    if sampler_name == "none":
        resampled_train = train
    else:
        sampler = build_sampler(
            sampler_name,
            k_neighbors=config.k_neighbors,
            random_state=config.seed,
            **(sampler_kwargs or {}),
        )
        flat = train.images.reshape(len(train), -1)
        flat_res, labels_res = sampler.fit_resample(flat, train.labels)
        images_res = np.clip(flat_res, 0.0, 1.0).reshape(
            (-1,) + train.image_shape
        )
        resampled_train = ArrayDataset(images_res, labels_res)

    # The resampled (balanced) set has ~ratio x more batches per epoch:
    # the cost the paper's efficiency analysis highlights.
    loss = build_loss(loss_name, class_counts=np.bincount(
        resampled_train.labels, minlength=info["num_classes"]))
    optimizer = SGD(
        model.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    trainer = ThreePhaseTrainer(model, loss, optimizer, sampler=None)
    transform = standard_augmentation() if config.augment else None
    trainer.train_phase1(
        resampled_train,
        epochs=config.phase1_epochs,
        batch_size=config.batch_size,
        transform=transform,
        rng=np.random.default_rng(config.seed + 4),
        max_seconds=max_seconds,
    )
    seconds = monotonic() - start
    metrics = trainer.phase1.evaluate(test)
    return metrics, seconds
