"""Shared experiment machinery: extractor training, sampler evaluation.

The expensive step of every experiment is phase-1 CNN training; many
experiments then compare several samplers on the *same* trained
extractor.  :class:`ExtractorCache` trains each (dataset, loss, model,
seed) combination once and snapshots the model state so each sampler
evaluation starts from identical weights.
"""

from __future__ import annotations

import time

import numpy as np

from ..core import ThreePhaseTrainer, extract_features, finetune_classifier
from ..core.gap import generalization_gap
from ..data import make_dataset, standard_augmentation
from ..losses import build_loss
from ..metrics import evaluate_predictions
from ..nn import build_model
from ..optim import SGD
from .config import build_sampler

__all__ = [
    "Phase1Artifacts",
    "ExtractorCache",
    "train_phase1",
    "evaluate_sampler",
    "train_preprocessed",
]


class Phase1Artifacts:
    """Everything produced by one phase-1 training run."""

    def __init__(
        self,
        config,
        loss_name,
        model,
        train,
        test,
        info,
        train_embeddings,
        test_embeddings,
        baseline_metrics,
        head_state,
        train_seconds,
    ):
        self.config = config
        self.loss_name = loss_name
        self.model = model
        self.train = train
        self.test = test
        self.info = info
        self.train_embeddings = train_embeddings
        self.test_embeddings = test_embeddings
        self.baseline_metrics = baseline_metrics
        self.head_state = head_state
        self.train_seconds = train_seconds

    def restore_head(self):
        """Reset the classifier head to its phase-1 weights."""
        self.model.classifier.load_state_dict(self.head_state)

    def baseline_gap(self):
        """Generalization gap of the phase-1 model (no resampling)."""
        return generalization_gap(
            self.train_embeddings,
            self.train.labels,
            self.test_embeddings,
            self.test.labels,
            self.info["num_classes"],
        )


def _make_model_and_data(config, rng_offset=0):
    train, test, info = make_dataset(
        config.dataset, scale=config.scale, seed=config.seed
    )
    model = build_model(
        config.model,
        num_classes=info["num_classes"],
        rng=np.random.default_rng(config.seed + 1 + rng_offset),
        **config.model_kwargs,
    )
    return model, train, test, info


def _loss_kwargs(config, loss_name):
    """Loss hyper-parameters that depend on the training schedule."""
    if loss_name == "ldam":
        # Deferred re-weighting kicks in halfway through training.
        return {"drw_epoch": max(1, config.phase1_epochs // 2)}
    return {}


def train_phase1(config, loss_name):
    """Train one extractor end-to-end; returns :class:`Phase1Artifacts`."""
    model, train, test, info = _make_model_and_data(config)
    loss = build_loss(
        loss_name,
        class_counts=info["train_counts"],
        **_loss_kwargs(config, loss_name),
    )
    optimizer = SGD(
        model.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    trainer = ThreePhaseTrainer(model, loss, optimizer, sampler=None)
    transform = standard_augmentation() if config.augment else None
    start = time.perf_counter()
    trainer.train_phase1(
        train,
        epochs=config.phase1_epochs,
        batch_size=config.batch_size,
        transform=transform,
        rng=np.random.default_rng(config.seed + 2),
    )
    train_seconds = time.perf_counter() - start
    train_emb = trainer.extract_embeddings(train)
    test_emb = extract_features(model, test.images)
    baseline = trainer.phase1.evaluate(test)
    head_state = model.classifier.state_dict()
    return Phase1Artifacts(
        config,
        loss_name,
        model,
        train,
        test,
        info,
        train_emb,
        test_emb,
        baseline,
        head_state,
        train_seconds,
    )


class ExtractorCache:
    """Memoizes phase-1 training by (dataset, scale, model, loss, seed)."""

    def __init__(self):
        self._cache = {}

    def get(self, config, loss_name):
        key = (
            config.dataset,
            config.scale,
            config.model,
            tuple(sorted(config.model_kwargs.items())),
            config.phase1_epochs,
            config.batch_size,
            config.lr,
            config.augment,
            loss_name,
            config.seed,
        )
        if key not in self._cache:
            self._cache[key] = train_phase1(config, loss_name)
        return self._cache[key]

    def clear(self):
        self._cache.clear()


def evaluate_sampler(
    artifacts,
    sampler_name,
    finetune_epochs=None,
    k_neighbors=None,
    finetune_lr=None,
    sampler_kwargs=None,
    return_details=False,
):
    """Fine-tune the cached extractor's head with one sampler; score it.

    The classifier head is restored to its phase-1 state first, so calls
    are independent and order-insensitive.  ``sampler_name="none"``
    scores the phase-1 baseline without fine-tuning.
    """
    config = artifacts.config
    finetune_epochs = (
        finetune_epochs if finetune_epochs is not None else config.finetune_epochs
    )
    k = k_neighbors if k_neighbors is not None else config.k_neighbors
    lr = finetune_lr if finetune_lr is not None else config.finetune_lr
    artifacts.restore_head()

    if sampler_name == "none":
        metrics = dict(artifacts.baseline_metrics)
        resampled = (artifacts.train_embeddings, artifacts.train.labels)
        seconds = 0.0
    else:
        sampler = build_sampler(
            sampler_name,
            k_neighbors=k,
            random_state=config.seed,
            **(sampler_kwargs or {}),
        )
        start = time.perf_counter()
        emb, labels = sampler.fit_resample(
            artifacts.train_embeddings, artifacts.train.labels
        )
        finetune_classifier(
            artifacts.model,
            emb,
            labels,
            epochs=finetune_epochs,
            lr=lr,
            rng=np.random.default_rng(config.seed + 3),
        )
        seconds = time.perf_counter() - start
        preds = _predict(artifacts)
        metrics = evaluate_predictions(
            artifacts.test.labels, preds, artifacts.info["num_classes"]
        )
        resampled = (emb, labels)

    if not return_details:
        return metrics
    return {
        "metrics": metrics,
        "resampled": resampled,
        "seconds": seconds,
        "head_weight": artifacts.model.classifier.weight.data.copy(),
    }


def _predict(artifacts, batch_size=256):
    from ..core.training import predict_logits

    logits = predict_logits(artifacts.model, artifacts.test.images, batch_size)
    return logits.argmax(axis=1)


def train_preprocessed(config, loss_name, sampler_name, sampler_kwargs=None):
    """Pixel-space pre-processing baseline: resample images, train end-to-end.

    Images are flattened for the sampler and reshaped back, matching how
    SMOTE-family methods are applied to image data as a pre-processing
    step.  Returns (metrics, wall_seconds).
    """
    from ..data import ArrayDataset

    model, train, test, info = _make_model_and_data(config, rng_offset=7)
    start = time.perf_counter()

    if sampler_name == "none":
        resampled_train = train
    else:
        sampler = build_sampler(
            sampler_name,
            k_neighbors=config.k_neighbors,
            random_state=config.seed,
            **(sampler_kwargs or {}),
        )
        flat = train.images.reshape(len(train), -1)
        flat_res, labels_res = sampler.fit_resample(flat, train.labels)
        images_res = np.clip(flat_res, 0.0, 1.0).reshape(
            (-1,) + train.image_shape
        )
        resampled_train = ArrayDataset(images_res, labels_res)

    # The resampled (balanced) set has ~ratio x more batches per epoch:
    # the cost the paper's efficiency analysis highlights.
    loss = build_loss(loss_name, class_counts=np.bincount(
        resampled_train.labels, minlength=info["num_classes"]))
    optimizer = SGD(
        model.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    trainer = ThreePhaseTrainer(model, loss, optimizer, sampler=None)
    transform = standard_augmentation() if config.augment else None
    trainer.train_phase1(
        resampled_train,
        epochs=config.phase1_epochs,
        batch_size=config.batch_size,
        transform=transform,
        rng=np.random.default_rng(config.seed + 4),
    )
    seconds = time.perf_counter() - start
    metrics = trainer.phase1.evaluate(test)
    return metrics, seconds
