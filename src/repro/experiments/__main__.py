"""Command-line entry point: ``python -m repro.experiments <keys...>``.

Runs the selected paper experiments (or all of them) and prints each
reproduced table.  Keys: t1-t5 (Tables I-V), f3-f7 (Figures 3-7),
rt (runtime comparison), px (pixel-vs-embedding EOS).

Examples::

    python -m repro.experiments t2 f3
    python -m repro.experiments --scale tiny --datasets cifar10_like
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    ExtractorCache,
    bench_config,
    run_eos_pixel_vs_embedding,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_runtime_comparison,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)


def build_registry(config, datasets, cache):
    """Map experiment keys to (title, runner-thunk)."""
    return {
        "t1": ("Table I (pre vs post over-sampling)",
               lambda: run_table1(config, datasets=datasets, cache=cache)),
        "t2": ("Table II (losses x samplers)",
               lambda: run_table2(config, datasets=datasets, cache=cache)),
        "t3": ("Table III (GAN comparison)",
               lambda: run_table3(config, datasets=datasets, cache=cache)),
        "t4": ("Table IV (EOS K sweep)",
               lambda: run_table4(config, datasets=datasets, cache=cache)),
        "t5": ("Table V (architectures)",
               lambda: run_table5(config, cache=cache)),
        "f3": ("Figure 3 (gap curves)", lambda: run_figure3(config, cache=cache)),
        "f4": ("Figure 4 (TP vs FP gap)",
               lambda: run_figure4(config, datasets=datasets, cache=cache)),
        "f5": ("Figure 5 (weight norms)", lambda: run_figure5(config, cache=cache)),
        "f6": ("Figure 6 (t-SNE boundary)", lambda: run_figure6(config, cache=cache)),
        "f7": ("Figure 7 (fine-tune epochs)",
               lambda: run_figure7(config, cache=cache)),
        "rt": ("Runtime comparison (V-E2)",
               lambda: run_runtime_comparison(config)),
        "px": ("EOS pixel vs embedding (V-E3)",
               lambda: run_eos_pixel_vs_embedding(config, cache=cache)),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("keys", nargs="*", help="experiment keys (default: all)")
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--datasets", nargs="+", default=["cifar10_like"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    config = bench_config(scale=args.scale, seed=args.seed)
    cache = ExtractorCache()
    registry = build_registry(config, tuple(args.datasets), cache)

    keys = args.keys or list(registry)
    unknown = [key for key in keys if key not in registry]
    if unknown:
        parser.error(
            "unknown keys: %s (valid: %s)"
            % (", ".join(unknown), ", ".join(registry))
        )

    for key in keys:
        title, runner = registry[key]
        print("=" * 72)
        print("%s  [%s]" % (title, key))
        print("=" * 72)
        start = time.perf_counter()
        out = runner()
        print(out["report"])
        print("(%.1fs)\n" % (time.perf_counter() - start))
    return 0


if __name__ == "__main__":
    sys.exit(main())
