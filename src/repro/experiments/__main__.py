"""Command-line entry point: ``python -m repro.experiments <keys...>``.

Runs the selected paper experiments (or all of them) and prints each
reproduced table.  Keys: t1-t5 (Tables I-V), f3-f7 (Figures 3-7),
rt (runtime comparison), px (pixel-vs-embedding EOS).

Fault tolerance: ``--checkpoint-dir`` checkpoints every table cell and
phase-1 extractor through a :class:`repro.resilience.RunRegistry`
(``--resume`` continues an interrupted run from it), ``--max-retries`` /
``--trial-timeout`` retry diverged or overlong trials with seed-bump +
LR-backoff, and failed cells degrade to ``FAILED(reason)`` rows unless
``--fail-fast`` is given.

Parallelism: ``--workers N`` evaluates sweep cells and phase-1
trainings across N worker processes (``repro.parallel``); results and
reports are bit-identical to ``--workers 1`` for any N.

Result store: ``--store PATH`` appends every run — cell results,
telemetry snapshot, config/git fingerprint — to the sqlite store at
PATH (``repro.evals``).  Tables regenerate from it without retraining:
``repro-report t2 --store PATH``.

Hardening (``repro.guard``): ``--task-deadline`` arms the pool's
hung-worker watchdog (SIGKILL + same-seed re-dispatch past the
deadline), ``--strict-resume`` makes a corrupted checkpoint artifact
raise instead of being quarantined and recomputed, and
``--breaker-threshold`` installs a per-configuration circuit breaker
that converts repeated equivalent failures into immediate
``FAILED(circuit_open: ...)`` cells (``--reset-breakers`` clears the
persisted breaker state before running).

Examples::

    python -m repro.experiments t2 f3
    python -m repro.experiments --scale tiny --datasets cifar10_like
    python -m repro.experiments t2 --checkpoint-dir runs/t2 --max-retries 2
    python -m repro.experiments t2 --checkpoint-dir runs/t2 --resume
"""

from __future__ import annotations

import argparse
import sys

from .. import telemetry
from ..evals import MatrixSpec, run_matrix
from ..guard import CircuitBreaker
from ..resilience import RetryPolicy, RunRegistry, fingerprint_of
from . import ExtractorCache, bench_config

__all__ = ["build_registry", "main"]


def build_registry(config, datasets, cache, run_registry=None,
                   retry_policy=None, fail_soft=True, workers=None,
                   breaker=None, store=None):
    """Map experiment keys to (title, runner-thunk).

    Every key routes through :func:`repro.evals.run_matrix`.
    ``run_registry`` / ``retry_policy`` / ``fail_soft`` / ``workers`` /
    ``breaker`` apply to the table views (the sweeps worth
    checkpointing, parallelizing and guarding); figure views execute
    directly.  ``store`` records every run in the sqlite result store.
    """
    run_kwargs = {
        "store": store,
        "cache": cache,
        "registry": run_registry,
        "retry_policy": retry_policy,
        "fail_soft": fail_soft,
        "workers": workers,
        "breaker": breaker,
    }

    def entry(title, spec):
        return (title, lambda: run_matrix(spec, **run_kwargs))

    return {
        "t1": entry("Table I (pre vs post over-sampling)",
                    MatrixSpec("table1", config=config, datasets=datasets)),
        "t2": entry("Table II (losses x samplers)",
                    MatrixSpec("table2", config=config, datasets=datasets)),
        "t3": entry("Table III (GAN comparison)",
                    MatrixSpec("table3", config=config, datasets=datasets)),
        "t4": entry("Table IV (EOS K sweep)",
                    MatrixSpec("table4", config=config, datasets=datasets)),
        "t5": entry("Table V (architectures)",
                    MatrixSpec("table5", config=config)),
        "f3": entry("Figure 3 (gap curves)",
                    MatrixSpec("figure3", config=config)),
        "f4": entry("Figure 4 (TP vs FP gap)",
                    MatrixSpec("figure4", config=config, datasets=datasets)),
        "f5": entry("Figure 5 (weight norms)",
                    MatrixSpec("figure5", config=config)),
        "f6": entry("Figure 6 (t-SNE boundary)",
                    MatrixSpec("figure6", config=config)),
        "f7": entry("Figure 7 (fine-tune epochs)",
                    MatrixSpec("figure7", config=config)),
        "rt": entry("Runtime comparison (V-E2)",
                    MatrixSpec("runtime_comparison", config=config)),
        "px": entry("EOS pixel vs embedding (V-E3)",
                    MatrixSpec("eos_pixel_vs_embedding", config=config)),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("keys", nargs="*", help="experiment keys (default: all)")
    parser.add_argument(
        "--table", type=int, action="append", default=None, metavar="N",
        help="shorthand for table keys: --table 2 is equivalent to t2 "
             "(repeatable)",
    )
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--datasets", nargs="+", default=["cifar10_like"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="checkpoint cells + phase-1 artifacts into DIR (atomic "
             "manifest; enables crash-safe sweeps)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted run from --checkpoint-dir "
             "(completed cells are loaded, not recomputed)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retry diverged/timed-out trials up to N times with "
             "deterministic seed-bump and LR-backoff (default: 0)",
    )
    parser.add_argument(
        "--trial-timeout", type=float, default=None, metavar="SECONDS",
        help="per-trial wall-clock budget; overlong trials raise and "
             "follow the retry/degradation path",
    )
    parser.add_argument(
        "--task-deadline", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock deadline enforced by the worker "
             "watchdog (--workers > 1): a hung worker is SIGKILLed and "
             "its cell re-dispatched under the same seed",
    )
    parser.add_argument(
        "--strict-resume", action="store_true",
        help="raise CheckpointCorruptError when a resumed artifact "
             "fails digest verification, instead of quarantining it "
             "and recomputing",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=None, metavar="N",
        help="open a circuit breaker after N equivalent failures under "
             "one configuration family; further matching cells settle "
             "as FAILED(circuit_open: ...) without running (state "
             "persists in --checkpoint-dir)",
    )
    parser.add_argument(
        "--reset-breakers", action="store_true",
        help="clear persisted circuit-breaker state in --checkpoint-dir "
             "before running",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="abort the sweep on the first failed cell instead of "
             "recording it as FAILED(reason)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="enable telemetry and export the run's trace (spans, "
             "events, metrics snapshot) to PATH as JSON lines; summarize "
             "with `repro-trace PATH`",
    )
    parser.add_argument(
        "--no-telemetry", action="store_true",
        help="force the no-op tracer even when --trace-out is given",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="evaluate sweep cells and phase-1 trainings across N worker "
             "processes; results are bit-identical to --workers 1 "
             "(default: 1, exact serial execution)",
    )
    parser.add_argument(
        "--store", metavar="PATH",
        help="record every run (cells, telemetry, config/git fingerprint) "
             "in the sqlite result store at PATH; regenerate tables later "
             "with `repro-report <view> --store PATH`",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    if args.strict_resume and not args.checkpoint_dir:
        parser.error("--strict-resume requires --checkpoint-dir")
    if args.breaker_threshold is not None and args.breaker_threshold < 1:
        parser.error("--breaker-threshold must be >= 1")
    if args.task_deadline is not None and args.task_deadline <= 0:
        parser.error("--task-deadline must be positive")

    retry_policy = None
    if (args.max_retries > 0 or args.trial_timeout is not None
            or args.task_deadline is not None):
        retry_policy = RetryPolicy(
            max_retries=max(args.max_retries, 0),
            trial_timeout=args.trial_timeout,
            task_deadline=args.task_deadline,
        )

    run_registry = None
    if args.checkpoint_dir:
        run_registry = RunRegistry(args.checkpoint_dir,
                                   strict=args.strict_resume)
        has_prior_cells = bool(run_registry.cell_statuses())
        if has_prior_cells and not args.resume:
            parser.error(
                "%s already holds a checkpointed run; pass --resume to "
                "continue it or use a fresh --checkpoint-dir"
                % args.checkpoint_dir
            )
        run_registry.ensure_fingerprint(
            fingerprint_of("cli", args.scale, tuple(args.datasets), args.seed)
        )

    if args.reset_breakers and run_registry is not None:
        run_registry.reset_breakers()

    breaker = None
    if args.breaker_threshold is not None:
        breaker = CircuitBreaker(threshold=args.breaker_threshold,
                                 store=run_registry)

    from ..parallel import set_default_workers

    set_default_workers(args.workers)

    config = bench_config(scale=args.scale, seed=args.seed)
    cache = ExtractorCache(registry=run_registry, retry_policy=retry_policy)
    store = None
    if args.store:
        from ..evals import ResultStore

        store = ResultStore(args.store)
    registry = build_registry(
        config,
        tuple(args.datasets),
        cache,
        run_registry=run_registry,
        retry_policy=retry_policy,
        fail_soft=not args.fail_fast,
        workers=args.workers,
        breaker=breaker,
        store=store,
    )

    keys = list(args.keys)
    for n in args.table or ():
        key = "t%d" % n
        if key not in keys:
            keys.append(key)
    keys = keys or list(registry)
    unknown = [key for key in keys if key not in registry]
    if unknown:
        parser.error(
            "unknown keys: %s (valid: %s)"
            % (", ".join(unknown), ", ".join(registry))
        )

    trace_out = None if args.no_telemetry else args.trace_out
    if trace_out is not None:
        telemetry.enable()
    try:
        for key in keys:
            title, runner = registry[key]
            print("=" * 72)
            print("%s  [%s]" % (title, key))
            print("=" * 72)
            start = telemetry.monotonic()
            out = runner()
            print(out.report)
            print("(%.1fs)\n" % (telemetry.monotonic() - start))
    finally:
        if trace_out is not None:
            telemetry.disable(trace_out)
            print("trace: %s (summarize with `repro-trace %s`)"
                  % (trace_out, trace_out))
        if store is not None:
            print("store: %s" % store.summary())
            store.close()
    if run_registry is not None:
        print("checkpoint: %s" % run_registry.summary())
    if breaker is not None:
        for key, signature in breaker.open_breakers().items():
            print("breaker open: %s -> %s" % (key, signature))
    return 0


if __name__ == "__main__":
    sys.exit(main())
