"""Declarative experiment matrix + queryable sqlite result store.

``repro.evals`` is the system's source of truth for results:

* :class:`MatrixSpec` declares one paper view and its axes (datasets ×
  samplers × losses × seeds × hyper-parameters, with include/exclude
  predicates); :func:`compile_matrix` turns it into a deterministic
  cell plan.
* :func:`run_matrix` executes any spec through the full
  resilience/guard contract — the single entry point behind the legacy
  ``run_table*`` / ``run_figure*`` wrappers.
* :class:`ResultStore` is the append-only, schema-versioned sqlite
  archive of every cell result, telemetry snapshot, config/git
  fingerprint, and BENCH entry across runs.
* :func:`regenerate` / :func:`perf_report` and the ``repro-report``
  CLI render tables and the perf trajectory as views over the store —
  no retraining.
"""

from .matrix import (
    ALL_VIEWS,
    FIGURE_VIEWS,
    TABLE_VIEWS,
    MatrixCell,
    MatrixPlan,
    MatrixSpec,
    compile_matrix,
    plan_from_payload,
    plan_to_payload,
    spec_to_payload,
)
from .report import load_run_results, perf_report, regenerate, runs_report
from .runner import run_matrix
from .store import SCHEMA_VERSION, EvalsStoreError, ResultStore
from .views import degraded_summary, metric_cells, ranked_metric_table, render_view

__all__ = [
    "ALL_VIEWS",
    "FIGURE_VIEWS",
    "TABLE_VIEWS",
    "MatrixCell",
    "MatrixPlan",
    "MatrixSpec",
    "compile_matrix",
    "plan_from_payload",
    "plan_to_payload",
    "spec_to_payload",
    "load_run_results",
    "perf_report",
    "regenerate",
    "runs_report",
    "run_matrix",
    "SCHEMA_VERSION",
    "EvalsStoreError",
    "ResultStore",
    "degraded_summary",
    "metric_cells",
    "ranked_metric_table",
    "render_view",
]
