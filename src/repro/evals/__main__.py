"""Command-line entry point: ``repro-report`` (``python -m repro.evals``).

Regenerates paper tables and figures as views over the sqlite result
store — no retraining — and reports cross-run history::

    repro-report table2                  # regenerate Table II from the store
    repro-report t2 --run-id 3           # a specific recorded run
    repro-report runs                    # list every recorded run
    repro-report perf                    # run durations + BENCH diffs
    repro-report ingest-bench BENCH_*.json   # append BENCH history

The store (``--store``, default ``evals.sqlite``) is populated by
``run_matrix(spec, store=...)`` or ``python -m repro.experiments
--store``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .matrix import ALL_VIEWS
from .report import perf_report, regenerate, runs_report
from .store import EvalsStoreError, ResultStore

__all__ = ["main"]

_ALIASES = {
    "t1": "table1", "t2": "table2", "t3": "table3", "t4": "table4",
    "t5": "table5",
    "f3": "figure3", "f4": "figure4", "f5": "figure5", "f6": "figure6",
    "f7": "figure7",
    "rt": "runtime_comparison", "px": "eos_pixel_vs_embedding",
}


def _ingest_bench(store, paths):
    if not paths:
        raise EvalsStoreError("ingest-bench needs at least one JSON path")
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        name = (payload.get("benchmark") if isinstance(payload, dict)
                else None) or os.path.basename(path)
        store.record_bench(name, payload, source=os.path.abspath(path))
        print("ingested %s as %r" % (path, name))
    print(store.summary())


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-report", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "target",
        help="view name (table1..table5, figure3..figure7, "
             "runtime_comparison, eos_pixel_vs_embedding; aliases "
             "t1-t5/f3-f7/rt/px), or runs | perf | ingest-bench",
    )
    parser.add_argument("paths", nargs="*",
                        help="BENCH json files (ingest-bench only)")
    parser.add_argument("--store", default="evals.sqlite", metavar="PATH",
                        help="sqlite result store (default: evals.sqlite)")
    parser.add_argument("--run-id", type=int, default=None, metavar="N",
                        help="regenerate a specific recorded run "
                             "(default: newest complete run of the view)")
    args = parser.parse_args(argv)

    target = _ALIASES.get(args.target, args.target)
    if target not in ALL_VIEWS + ("runs", "perf", "ingest-bench"):
        parser.error(
            "unknown target %r (views: %s; or runs, perf, ingest-bench)"
            % (args.target, ", ".join(ALL_VIEWS))
        )
    if target != "ingest-bench" and args.paths:
        parser.error("positional paths are only valid with ingest-bench")
    if target == "runs" or target == "perf":
        if args.run_id is not None:
            parser.error("--run-id only applies to view targets")

    if target != "ingest-bench" and not os.path.exists(args.store):
        print("store %s does not exist; run a matrix with --store first"
              % args.store, file=sys.stderr)
        return 1

    with ResultStore(args.store) as store:
        try:
            if target == "runs":
                print(runs_report(store))
            elif target == "perf":
                print(perf_report(store))
            elif target == "ingest-bench":
                _ingest_bench(store, args.paths)
            else:
                print(regenerate(store, target, run_id=args.run_id))
        except EvalsStoreError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
