"""Shared rendering: every table/report string comes from one place.

These functions are the single source of the reproduction's report
text.  ``run_matrix`` renders a live run through them, the result
store's ``repro-report`` CLI renders recorded cells through them, and
``sweep_report`` delegates to :func:`ranked_metric_table` — so a live
sweep, a store-backed regeneration, and a serial grid sweep cannot
drift apart formatting-wise.

Only :mod:`repro.utils` (formatting), :mod:`repro.resilience`
(CellFailure) and the stdlib are imported here; rendering a stored run
must not drag in numpy or the training stack.
"""

from __future__ import annotations

import math

from ..resilience import CellFailure
from ..utils import format_float, format_table

__all__ = [
    "degraded_summary",
    "metric_cells",
    "ranked_metric_table",
    "render_view",
]

_METRICS = ("bac", "gm", "fm")


def metric_cells(metrics):
    """The BAC/GM/FM triple as table cells, or a FAILED label."""
    if isinstance(metrics, CellFailure):
        return [metrics.label()] + ["-"] * (len(_METRICS) - 1)
    return [format_float(metrics[m]) for m in _METRICS]


def _bac(metrics):
    """A cell's BAC, or None when the cell failed (degraded)."""
    if isinstance(metrics, CellFailure):
        return None
    return metrics["bac"]


def degraded_summary(results):
    """Trailer listing every FAILED cell, or an empty string."""
    failures = [
        (key, value)
        for key, value in results.items()
        if isinstance(value, CellFailure)
    ]
    if not failures:
        return ""
    lines = [
        "",
        "DEGRADED: %d / %d cell(s) failed and were excluded from summaries:"
        % (len(failures), len(results)),
    ]
    for key, failure in failures:
        cell = "/".join(str(part) for part in key)
        lines.append(
            "  %s -> %s after %d attempt(s)"
            % (cell, failure.label(width=60), failure.attempts)
        )
    return "\n".join(lines)


def _post_wins_summary(summary, results):
    datasets = summary["datasets"]
    samplers = summary["samplers"]
    post_wins = sum(
        1
        for dataset in datasets
        for name in samplers
        if _bac(results[(dataset, "post", name)]) is not None
        and _bac(results[(dataset, "pre", name)]) is not None
        and _bac(results[(dataset, "post", name)])
        > _bac(results[(dataset, "pre", name)])
    )
    cells = len(datasets) * len(samplers)
    text = "\npost beats pre in %d / %d cells (paper: 7/9)" % (post_wins, cells)
    return text, {"post_wins": post_wins, "cells": cells}


def _eos_wins_summary(summary, results):
    datasets = summary["datasets"]
    losses = summary["losses"]
    samplers = summary["samplers"]
    eos_wins = 0
    comparisons = 0
    if "eos" in samplers:
        for dataset in datasets:
            for loss in losses:
                rivals = [
                    _bac(results[(dataset, loss, s)])
                    for s in samplers
                    if s not in ("eos", "none")
                ]
                rivals = [bac for bac in rivals if bac is not None]
                eos_bac = _bac(results[(dataset, loss, "eos")])
                if rivals and eos_bac is not None:
                    comparisons += 1
                    if eos_bac >= max(rivals):
                        eos_wins += 1
    text = "\nEOS best-of-samplers in %d / %d rows" % (eos_wins, comparisons)
    return text, {"eos_wins": eos_wins, "comparisons": comparisons}


_SUMMARIES = {
    "post_wins": _post_wins_summary,
    "eos_wins": _eos_wins_summary,
}


def render_view(plan, results, timing=None):
    """Render a compiled plan over its results.

    ``results`` maps each cell key to a metrics dict or a
    :class:`CellFailure`; ``timing`` (for ``show_seconds`` plans) maps
    keys to resample+tune seconds or None.  Returns ``(report,
    extras)`` where ``extras`` carries the summary statistics
    (``post_wins`` / ``eos_wins`` …) the legacy runners exposed.
    """
    timing = timing or {}
    rows = []
    for cell in plan.cells:
        row = list(cell.row) + metric_cells(results[cell.key])
        if plan.show_seconds:
            seconds = timing.get(cell.key)
            row.append("%.2fs" % seconds if seconds is not None else "-")
        rows.append(row)
    report = format_table(list(plan.headers), rows, title=plan.title)
    extras = {}
    render_summary = _SUMMARIES.get(plan.summary.get("kind"))
    if render_summary is not None:
        text, extras = render_summary(plan.summary, results)
        report += text
    report += degraded_summary(results)
    return report, extras


# ----------------------------------------------------------------------
# Ranked sweep table (shared by sweep_report and stored-sweep views)
# ----------------------------------------------------------------------
def _rank_key(value, descending):
    """Sort key placing NaN (degraded/failed cells) last, always."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        return (1, 0.0)
    if math.isnan(value):
        return (1, 0.0)
    return (0, -value if descending else value)


def ranked_metric_table(results, sort_by="bac", descending=True, title=None):
    """Render sweep records as a ranked text table.

    NaN metrics (degraded or FAILED cells) always sort below every
    finite value — regardless of ``descending`` — keeping grid order
    among themselves, and their cells are marked with a ``*``.
    """
    if not results:
        raise ValueError("no sweep results to report")
    param_names = list(results[0]["params"])
    metric_names = list(results[0]["metrics"])
    if sort_by not in metric_names:
        raise KeyError("unknown metric %r" % sort_by)
    ordered = sorted(
        results, key=lambda r: _rank_key(r["metrics"][sort_by], descending)
    )
    rows = []
    flagged = False
    for record in ordered:
        cells = [str(record["params"][name]) for name in param_names]
        for name in metric_names:
            value = record["metrics"][name]
            text = format_float(value)
            try:
                if math.isnan(float(value)):
                    text += "*"
                    flagged = True
            except (TypeError, ValueError):  # repro: noqa[RES002] non-numeric metric cells render as-is; only NaN needs flagging
                pass
            cells.append(text)
        rows.append(cells)
    table = format_table(
        param_names + metric_names,
        rows,
        title=title or ("Sweep ranked by %s" % sort_by),
    )
    if flagged:
        table += "\n* nan metric (degraded/failed evaluation); ranked last"
    return table
