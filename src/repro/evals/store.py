"""Append-only sqlite result store: every cell result, across runs.

One :class:`ResultStore` owns one sqlite database (WAL mode,
schema-versioned) accumulating experiment history:

* ``runs`` — one row per ``run_matrix`` invocation: view, spec/plan
  snapshots, config + git fingerprint, final report, wall time;
* ``cells`` — one row per recorded cell outcome.  The
  ``(run_id, cell_id, status)`` unique index plus ``INSERT OR IGNORE``
  makes recording idempotent: a resumed run may replay every
  checkpointed cell without creating duplicate rows;
* ``telemetry`` — the metrics snapshot captured as a run finished;
* ``bench`` — ingested ``BENCH_*.json`` entries, so the perf-trajectory
  view can diff speed against prior recorded runs.

Writes happen from the parent process only: ``run_matrix`` records
cells through the :class:`~repro.resilience.RunRegistry` cell sink,
which :mod:`repro.parallel.run_cells` invokes in the parent as worker
results arrive.  Rows are never updated or deleted once written — the
only mutation is flipping a run's ``status`` from ``running`` to
``complete`` when it finishes.

EVAL001 pins every other module to this file: direct
``sqlite3.connect`` elsewhere would bypass the schema versioning and
the append-only discipline.
"""

from __future__ import annotations

import json
import os
import sqlite3

from ..telemetry import wall_time

__all__ = ["EvalsStoreError", "ResultStore", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id        INTEGER PRIMARY KEY,
    view          TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'running',
    fingerprint   TEXT,
    git_sha       TEXT,
    config_json   TEXT,
    spec_json     TEXT,
    plan_json     TEXT,
    extras_json   TEXT,
    report        TEXT,
    seconds       REAL,
    created_wall  REAL NOT NULL,
    finished_wall REAL
);
CREATE TABLE IF NOT EXISTS cells (
    id            INTEGER PRIMARY KEY,
    run_id        INTEGER NOT NULL REFERENCES runs(run_id),
    position      INTEGER NOT NULL,
    cell_id       TEXT NOT NULL,
    key_json      TEXT NOT NULL,
    status        TEXT NOT NULL,
    payload_json  TEXT NOT NULL,
    recorded_wall REAL NOT NULL
);
CREATE UNIQUE INDEX IF NOT EXISTS cells_run_cell_status
    ON cells(run_id, cell_id, status);
CREATE TABLE IF NOT EXISTS telemetry (
    id            INTEGER PRIMARY KEY,
    run_id        INTEGER NOT NULL REFERENCES runs(run_id),
    snapshot_json TEXT NOT NULL,
    recorded_wall REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS bench (
    id            INTEGER PRIMARY KEY,
    name          TEXT NOT NULL,
    source        TEXT,
    payload_json  TEXT NOT NULL,
    ingested_wall REAL NOT NULL
);
"""


class EvalsStoreError(RuntimeError):
    """Schema mismatch or an impossible store operation."""


def _json(value):
    return json.dumps(value, sort_keys=True, default=_coerce)


def _coerce(value):
    # numpy scalars reach payloads from metric dicts; their float/int
    # conversion is exact for the dtypes the metrics layer produces.
    if hasattr(value, "item"):
        return value.item()
    raise TypeError("not JSON serializable: %r" % (value,))


class ResultStore:
    """Queryable append-only archive of experiment-matrix runs."""

    def __init__(self, path):
        self.path = os.fspath(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=5000")
        with self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta(key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
            elif int(row["value"]) != SCHEMA_VERSION:
                raise EvalsStoreError(
                    "store %s has schema version %s; this code reads "
                    "version %d" % (self.path, row["value"], SCHEMA_VERSION)
                )

    def close(self):
        self._conn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def begin_run(self, view, fingerprint=None, spec=None, plan=None,
                  config=None, git_sha=None):
        """Open a run row (status ``running``) and return its id."""
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs(view, status, fingerprint, git_sha, "
                "config_json, spec_json, plan_json, created_wall) "
                "VALUES (?, 'running', ?, ?, ?, ?, ?, ?)",
                (view, fingerprint, git_sha,
                 _json(config) if config is not None else None,
                 _json(spec) if spec is not None else None,
                 _json(plan) if plan is not None else None,
                 wall_time()),
            )
        return cursor.lastrowid

    def is_resumable_run(self, run_id, fingerprint):
        """True when ``run_id`` is still open under the same fingerprint.

        A resumed sweep re-binds to its original run row only when the
        spec fingerprint matches — resuming under a different
        configuration must open a fresh run, never mix rows.
        """
        row = self._conn.execute(
            "SELECT status, fingerprint FROM runs WHERE run_id=?",
            (run_id,),
        ).fetchone()
        return (row is not None and row["status"] == "running"
                and row["fingerprint"] == fingerprint)

    def finish_run(self, run_id, report=None, extras=None, cells=(),
                   telemetry=None, seconds=None):
        """Seal a run: replay any unrecorded cells, stamp the report.

        The cell replay is idempotent (``INSERT OR IGNORE`` against the
        unique index), so finishing a resumed run re-presents every
        checkpointed cell without duplicating the rows the interrupted
        run already wrote.
        """
        now = wall_time()
        with self._conn:
            for row in cells:
                self._insert_cell(run_id, row, now)
            if telemetry is not None:
                self._conn.execute(
                    "INSERT INTO telemetry(run_id, snapshot_json, "
                    "recorded_wall) VALUES (?, ?, ?)",
                    (run_id, _json(telemetry), now),
                )
            self._conn.execute(
                "UPDATE runs SET status='complete', report=?, "
                "extras_json=?, seconds=?, finished_wall=? WHERE run_id=?",
                (report, _json(extras) if extras is not None else None,
                 seconds, now, run_id),
            )

    def run_row(self, run_id):
        """The full ``runs`` row, or None."""
        row = self._conn.execute(
            "SELECT * FROM runs WHERE run_id=?", (run_id,)
        ).fetchone()
        return dict(row) if row is not None else None

    def runs(self, view=None):
        """All run rows (optionally one view), oldest first."""
        if view is None:
            rows = self._conn.execute(
                "SELECT * FROM runs ORDER BY run_id"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM runs WHERE view=? ORDER BY run_id", (view,)
            ).fetchall()
        return [dict(row) for row in rows]

    def latest_run_id(self, view, status=None):
        """Newest run id for a view (optionally restricted by status)."""
        query = "SELECT run_id FROM runs WHERE view=?"
        params = [view]
        if status is not None:
            query += " AND status=?"
            params.append(status)
        row = self._conn.execute(
            query + " ORDER BY run_id DESC LIMIT 1", params
        ).fetchone()
        return row["run_id"] if row is not None else None

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    def _insert_cell(self, run_id, row, now):
        self._conn.execute(
            "INSERT OR IGNORE INTO cells(run_id, position, cell_id, "
            "key_json, status, payload_json, recorded_wall) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (run_id, row["position"], row["cell_id"],
             _json(list(row["key"])), row["status"],
             _json(row["payload"]), now),
        )

    def record_cell(self, run_id, cell_id, position, key, status, payload):
        """Record one cell outcome (idempotent)."""
        with self._conn:
            self._insert_cell(
                run_id,
                {"position": position, "cell_id": cell_id, "key": key,
                 "status": status, "payload": payload},
                wall_time(),
            )

    def cell_rows(self, run_id):
        """Every raw cell row of a run, in insertion order."""
        rows = self._conn.execute(
            "SELECT * FROM cells WHERE run_id=? ORDER BY id", (run_id,)
        ).fetchall()
        return [dict(row) for row in rows]

    def cell_results(self, run_id):
        """Best outcome per cell id: a ``done`` row wins over ``failed``.

        Returns ``{cell_id: {"status", "key", "payload", "position"}}``.
        """
        chosen = {}
        for row in self.cell_rows(run_id):
            prior = chosen.get(row["cell_id"])
            if prior is not None and prior["status"] == "done":
                continue
            chosen[row["cell_id"]] = {
                "status": row["status"],
                "position": row["position"],
                "key": tuple(json.loads(row["key_json"])),
                "payload": json.loads(row["payload_json"]),
            }
        return chosen

    # ------------------------------------------------------------------
    # BENCH history
    # ------------------------------------------------------------------
    def record_bench(self, name, payload, source=None):
        """Append one BENCH entry (a parsed ``BENCH_*.json`` payload)."""
        with self._conn:
            self._conn.execute(
                "INSERT INTO bench(name, source, payload_json, "
                "ingested_wall) VALUES (?, ?, ?, ?)",
                (name, source, _json(payload), wall_time()),
            )

    def bench_rows(self, name=None):
        """Ingested BENCH entries, oldest first."""
        if name is None:
            rows = self._conn.execute(
                "SELECT * FROM bench ORDER BY id"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM bench WHERE name=? ORDER BY id", (name,)
            ).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------
    def telemetry_rows(self, run_id):
        """Telemetry snapshots recorded for a run."""
        rows = self._conn.execute(
            "SELECT * FROM telemetry WHERE run_id=? ORDER BY id", (run_id,)
        ).fetchall()
        return [dict(row) for row in rows]

    def summary(self):
        """One-line human summary of the store's contents."""
        runs = self._conn.execute("SELECT COUNT(*) AS n FROM runs").fetchone()
        cells = self._conn.execute(
            "SELECT COUNT(*) AS n FROM cells"
        ).fetchone()
        bench = self._conn.execute(
            "SELECT COUNT(*) AS n FROM bench"
        ).fetchone()
        return "%d run(s), %d cell row(s), %d bench entr(ies) in %s" % (
            runs["n"], cells["n"], bench["n"], self.path,
        )
