"""Regenerate tables, run listings and the perf trajectory from the store.

A completed matrix run carries its full rendering recipe — the
compiled plan (title, headers, row labels, summary spec) plus every
cell payload — so :func:`regenerate` rebuilds any table *byte-identical*
to the live runner's report without retraining a single cell: the same
:func:`repro.evals.views.render_view` renders both.

:func:`perf_report` is the cross-run view: per-view run history
(duration + headline BAC, with deltas against the previous run of the
same view) joined with ingested ``BENCH_*.json`` history, so a speed or
metric regression surfaces as a signed diff instead of requiring a
manual comparison of checkpoint dirs.
"""

from __future__ import annotations

import json

from ..resilience import failure_from_payload
from ..utils import format_table
from .matrix import plan_from_payload
from .store import EvalsStoreError
from .views import render_view

__all__ = ["load_run_results", "perf_report", "regenerate", "runs_report"]


def _resolve_run(store, view, run_id):
    if run_id is None:
        run_id = store.latest_run_id(view, status="complete")
        if run_id is None:
            run_id = store.latest_run_id(view)
    if run_id is None:
        raise EvalsStoreError("store %s has no run for view %r"
                              % (store.path, view))
    run = store.run_row(run_id)
    if run is None:
        raise EvalsStoreError("store %s has no run %r"
                              % (store.path, run_id))
    return run


def load_run_results(store, run):
    """Rebuild (plan, results, timing) for a stored table run."""
    plan = plan_from_payload(json.loads(run["plan_json"]))
    recorded = store.cell_results(run["run_id"])
    results = {}
    timing = {}
    missing = []
    for cell in plan.cells:
        row = recorded.get(cell.cell_id)
        if row is None:
            missing.append(cell.cell_id)
            continue
        if row["status"] == "failed":
            results[cell.key] = failure_from_payload(row["payload"])
            if cell.timed:
                timing[cell.key] = None
        elif cell.timed:
            results[cell.key] = row["payload"]["metrics"]
            timing[cell.key] = row["payload"]["seconds"]
        else:
            results[cell.key] = row["payload"]
    if missing:
        raise EvalsStoreError(
            "run %d of view %r is missing %d cell(s) (%s); resume the "
            "run before regenerating its table"
            % (run["run_id"], plan.view, len(missing),
               ", ".join(missing[:5]))
        )
    return plan, results, timing


def regenerate(store, view, run_id=None):
    """Re-render a view's report from recorded cells (no retraining).

    Table views re-render through :func:`render_view`; figure views
    (whose row data is not cell-structured) return the report recorded
    when the run finished.
    """
    run = _resolve_run(store, view, run_id)
    if run.get("plan_json"):
        plan, results, timing = load_run_results(store, run)
        report, _ = render_view(plan, results, timing)
        return report
    if run.get("report") is None:
        raise EvalsStoreError(
            "run %d of view %r never finished and recorded no report"
            % (run["run_id"], run["view"])
        )
    return run["report"]


def runs_report(store):
    """Table of every recorded run, oldest first."""
    rows = []
    for run in store.runs():
        rows.append([
            str(run["run_id"]),
            run["view"],
            run["status"],
            "%.1fs" % run["seconds"] if run["seconds"] is not None else "-",
            (run["git_sha"] or "-")[:12],
            run["fingerprint"] or "-",
        ])
    if not rows:
        return "store %s holds no runs yet" % store.path
    return format_table(
        ["run", "view", "status", "seconds", "git", "fingerprint"],
        rows,
        title="Recorded matrix runs (%s)" % store.path,
    )


# ----------------------------------------------------------------------
# Perf trajectory: run history + BENCH history, with deltas
# ----------------------------------------------------------------------
def _mean_bac(store, run):
    values = []
    for row in store.cell_results(run["run_id"]).values():
        if row["status"] != "done":
            continue
        payload = row["payload"]
        metrics = payload.get("metrics", payload)
        bac = metrics.get("bac") if isinstance(metrics, dict) else None
        if isinstance(bac, (int, float)):
            values.append(float(bac))
    if not values:
        return None
    return sum(values) / len(values)


def _delta(value, prior):
    if value is None or prior is None:
        return "-"
    return "%+.4f" % (value - prior)


def perf_report(store):
    """Cross-run perf trajectory: durations, headline BAC, BENCH diffs."""
    sections = []

    rows = []
    previous = {}
    for run in store.runs():
        if run["status"] != "complete":
            continue
        view = run["view"]
        seconds = run["seconds"]
        bac = _mean_bac(store, run)
        prior_seconds, prior_bac = previous.get(view, (None, None))
        rows.append([
            str(run["run_id"]),
            view,
            "%.2fs" % seconds if seconds is not None else "-",
            ("%+.2fs" % (seconds - prior_seconds)
             if seconds is not None and prior_seconds is not None else "-"),
            "%.4f" % bac if bac is not None else "-",
            _delta(bac, prior_bac),
        ])
        previous[view] = (seconds, bac)
    if rows:
        sections.append(format_table(
            ["run", "view", "seconds", "Δs vs prev", "mean BAC",
             "ΔBAC vs prev"],
            rows,
            title="Perf trajectory: completed runs per view",
        ))
    else:
        sections.append("no completed runs recorded yet")

    bench_rows = []
    last_seen = {}
    for entry in store.bench_rows():
        payload = json.loads(entry["payload_json"])
        scalars = _flatten_scalars(payload)
        prior = last_seen.get(entry["name"], {})
        for field in sorted(scalars):
            value = scalars[field]
            bench_rows.append([
                entry["name"],
                field,
                "%.4f" % value,
                _delta(value, prior.get(field)),
            ])
        last_seen[entry["name"]] = scalars
    if bench_rows:
        sections.append(format_table(
            ["benchmark", "field", "value", "Δ vs prev"],
            bench_rows,
            title="BENCH history",
        ))
    return "\n\n".join(sections)


def _flatten_scalars(payload, prefix=""):
    """Numeric leaves of a nested BENCH payload, dot-joined."""
    scalars = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            scalars.update(_flatten_scalars(value, prefix + str(key) + "."))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        scalars[prefix[:-1]] = float(payload)
    return scalars
