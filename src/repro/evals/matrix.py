"""Declarative experiment matrix: spec -> deterministic cell plan.

A :class:`MatrixSpec` names one paper view (``table1`` … ``table5``, the
figures, or the two §V-E studies) plus the axes to sweep — datasets,
losses, samplers, seeds, and arbitrary config-field hyper-parameter
axes — and optional ``include`` / ``exclude`` predicates.
:func:`compile_matrix` turns a table spec into a :class:`MatrixPlan`: an
ordered tuple of :class:`MatrixCell` records carrying exactly the
results-dict key, checkpoint ``cell_id``, row label, config overrides
and evaluation kwargs the legacy ``run_table*`` runners produced, so a
plan executed through :func:`repro.evals.run_matrix` is byte-identical
to the runner it replaces.

Compilation is pure and deterministic: the same spec compiles to the
same cell ordering regardless of worker count, process, or platform —
the ordering is the nested axis iteration order, never a hash or a
timestamp.  Plans round-trip through JSON (:func:`plan_to_payload` /
:func:`plan_from_payload`) so a completed run's table can be
regenerated from the result store without touching the spec's
callables.

This module is dependency-free (stdlib only) by design: the result
store and the report CLI import it without dragging in numpy or the
training stack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = [
    "ALL_VIEWS",
    "FIGURE_VIEWS",
    "TABLE_VIEWS",
    "MatrixCell",
    "MatrixPlan",
    "MatrixSpec",
    "compile_matrix",
    "plan_from_payload",
    "plan_to_payload",
    "spec_to_payload",
]

TABLE_VIEWS = ("table1", "table2", "table3", "table4", "table5")
FIGURE_VIEWS = (
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "runtime_comparison",
    "eos_pixel_vs_embedding",
)
ALL_VIEWS = TABLE_VIEWS + FIGURE_VIEWS

#: Default axis values per view, matching the legacy runner signatures.
_DEFAULTS = {
    "table1": {"datasets": ("cifar10_like",),
               "samplers": ("smote", "bsmote", "balsvm")},
    "table2": {"datasets": ("cifar10_like",),
               "losses": ("ce", "asl", "focal", "ldam"),
               "samplers": ("none", "smote", "bsmote", "balsvm", "eos")},
    "table3": {"datasets": ("cifar10_like",),
               "losses": ("ce",),
               "samplers": ("gamo", "bagan", "cgan", "eos"),
               "mode": "embedding"},
    "table4": {"datasets": ("cifar10_like",),
               "k_values": (2, 5, 10, 20, 40)},
    "table5": {"architectures": (
        ("resnet8", {"width_multiplier": 0.5}),
        ("wideresnet", {"depth": 10, "widen_factor": 2,
                        "width_multiplier": 0.5}),
        ("densenet", {"growth_rate": 6, "block_layers": (2, 2, 2)}),
    )},
    "figure3": {"losses": ("ce", "asl", "focal", "ldam"),
                "samplers": ("none", "smote", "bsmote", "balsvm", "eos")},
    "figure4": {"datasets": ("cifar10_like",)},
    "figure5": {"losses": ("ce", "asl", "focal", "ldam"),
                "samplers": ("none", "smote", "bsmote", "balsvm", "eos")},
    "figure6": {"samplers": ("none", "smote", "bsmote", "balsvm", "eos")},
    "figure7": {"samplers": ("smote", "eos")},
    "runtime_comparison": {"samplers": ("smote", "bsmote", "balsvm")},
    "eos_pixel_vs_embedding": {},
}

_METRIC_HEADERS = ("BAC", "GM", "FM")


@dataclass(frozen=True)
class MatrixCell:
    """One grid cell of a compiled plan.

    ``key`` is the results-dict key the runners always used (e.g.
    ``("cifar10_like", "ce", "eos")``), ``cell_id`` the checkpoint /
    store identifier (``"t2/cifar10_like/ce/eos"``), ``row`` the
    leading label columns of the rendered table.  ``kind`` selects the
    evaluation path: ``"sampler"`` (embedding-space fine-tune),
    ``"timed_sampler"`` (same, keeping resample+tune seconds), or
    ``"preprocessed"`` (pixel-space full retraining).
    """

    key: tuple
    cell_id: str
    kind: str
    row: tuple
    loss: str
    sampler: str
    overrides: dict = field(default_factory=dict)
    eval_kwargs: dict = field(default_factory=dict)

    @property
    def timed(self):
        """True when the cell payload is ``{"metrics", "seconds"}``."""
        return self.kind != "sampler"

    @property
    def dataset(self):
        return self.overrides.get("dataset")


@dataclass(frozen=True)
class MatrixPlan:
    """A compiled, ordered grid plus everything needed to render it."""

    view: str
    title: str
    headers: tuple
    cells: tuple
    summary: dict
    show_seconds: bool = False
    extras: dict = field(default_factory=dict)
    prewarm: tuple = ()


@dataclass
class MatrixSpec:
    """Declarative description of one experiment matrix.

    Any axis left as ``None`` takes the view's paper default (the same
    default the legacy runner signature carried).  ``seeds`` and
    ``hyper`` add extra grid axes: each combination re-runs every base
    cell with the named config fields overridden, an extra key
    component, an extra table column, and a ``/field=value`` cell-id
    suffix.  ``include`` / ``exclude`` are predicates over
    :class:`MatrixCell` applied after axis expansion.
    """

    view: str
    config: object = None
    datasets: tuple = None
    losses: tuple = None
    samplers: tuple = None
    seeds: tuple = None
    hyper: dict = None
    k_values: tuple = None
    architectures: tuple = None
    mode: str = None
    include: object = None
    exclude: object = None
    options: dict = None

    def resolved(self, axis):
        """The axis value, falling back to the view's paper default."""
        value = getattr(self, axis, None)
        if value is None:
            value = _DEFAULTS.get(self.view, {}).get(axis)
        if isinstance(value, list):
            value = tuple(value)
        return value


def spec_to_payload(spec):
    """JSON-able snapshot of a spec (for fingerprints and the store)."""
    payload = {"view": spec.view}
    for axis in ("datasets", "losses", "samplers", "seeds", "k_values",
                 "mode"):
        value = spec.resolved(axis)
        if value is not None:
            payload[axis] = list(value) if isinstance(value, tuple) else value
    architectures = spec.resolved("architectures")
    if architectures is not None:
        payload["architectures"] = [
            [name, dict(kwargs)] for name, kwargs in architectures
        ]
    if spec.hyper:
        payload["hyper"] = {name: list(values)
                            for name, values in spec.hyper.items()}
    if spec.options:
        payload["options"] = dict(spec.options)
    payload["filtered"] = bool(spec.include or spec.exclude)
    return payload


# ----------------------------------------------------------------------
# Per-view base grids (pre axis-expansion), mirroring the legacy runners
# ----------------------------------------------------------------------
def _compile_table1(spec):
    datasets = spec.resolved("datasets")
    samplers = spec.resolved("samplers")
    cells = []
    for dataset in datasets:
        for name in tuple(samplers) + ("remix",):
            cells.append(MatrixCell(
                key=(dataset, "pre", name),
                cell_id="t1/%s/pre/%s" % (dataset, name),
                kind="preprocessed",
                row=(dataset, "Pre-%s" % name),
                loss="ce", sampler=name,
                overrides={"dataset": dataset},
            ))
        for name in samplers:
            cells.append(MatrixCell(
                key=(dataset, "post", name),
                cell_id="t1/%s/post/%s" % (dataset, name),
                kind="sampler",
                row=(dataset, "Post-%s" % name),
                loss="ce", sampler=name,
                overrides={"dataset": dataset},
            ))
    return dict(
        title="Table I: pre-processing vs feature-embedding "
              "over-sampling (CE)",
        labels=("dataset", "method"),
        cells=cells,
        summary={"kind": "post_wins", "datasets": list(datasets),
                 "samplers": list(samplers)},
    )


def _compile_table2(spec):
    datasets = spec.resolved("datasets")
    losses = spec.resolved("losses")
    samplers = spec.resolved("samplers")
    cells = [
        MatrixCell(
            key=(dataset, loss, name),
            cell_id="t2/%s/%s/%s" % (dataset, loss, name),
            kind="sampler",
            row=(dataset, loss, name),
            loss=loss, sampler=name,
            overrides={"dataset": dataset},
        )
        for dataset in datasets
        for loss in losses
        for name in samplers
    ]
    return dict(
        title="Table II: baselines & over-sampling in embedding space",
        labels=("dataset", "loss", "sampler"),
        cells=cells,
        summary={"kind": "eos_wins", "datasets": list(datasets),
                 "losses": list(losses), "samplers": list(samplers)},
    )


def _compile_table3(spec):
    mode = spec.resolved("mode")
    if mode not in ("embedding", "pixel"):
        raise ValueError("mode must be 'embedding' or 'pixel'")
    datasets = spec.resolved("datasets")
    losses = spec.resolved("losses")
    samplers = spec.resolved("samplers")
    cells = []
    for dataset in datasets:
        for loss in losses:
            for name in samplers:
                pixel_pre = mode == "pixel" and name != "eos"
                cells.append(MatrixCell(
                    key=(dataset, loss, name),
                    cell_id="t3/%s/%s/%s/%s" % (mode, dataset, loss, name),
                    kind="preprocessed" if pixel_pre else "timed_sampler",
                    row=(dataset, loss, name),
                    loss=loss, sampler=name,
                    overrides={"dataset": dataset},
                ))
    return dict(
        title="Table III: GAN-based over-sampling vs EOS (%s space)" % mode,
        labels=("dataset", "loss", "sampler"),
        cells=cells,
        summary={"kind": "none"},
        show_seconds=True,
        extras={"mode": mode},
    )


def _compile_table4(spec):
    datasets = spec.resolved("datasets")
    k_values = spec.resolved("k_values")
    cells = [
        MatrixCell(
            key=(dataset, k),
            cell_id="t4/%s/k=%d" % (dataset, k),
            kind="sampler",
            row=(dataset, str(k)),
            loss="ce", sampler="eos",
            overrides={"dataset": dataset},
            eval_kwargs={"k_neighbors": k},
        )
        for dataset in datasets
        for k in k_values
    ]
    return dict(
        title="Table IV: EOS nearest-neighbor size analysis",
        labels=("dataset", "K"),
        cells=cells,
        summary={"kind": "none"},
        extras={"k_values": tuple(k_values)},
    )


def _compile_table5(spec):
    architectures = spec.resolved("architectures")
    cells = []
    for model_name, kwargs in architectures:
        overrides = {"model": model_name, "model_kwargs": dict(kwargs)}
        for sampler_name, label in (("none", "baseline"), ("eos", "eos")):
            prefix = (model_name if label == "baseline"
                      else "EOS: %s" % model_name)
            cells.append(MatrixCell(
                key=(model_name, label),
                cell_id="t5/%s/%s" % (model_name, label),
                kind="sampler",
                row=(prefix,),
                loss="ce", sampler=sampler_name,
                overrides=dict(overrides),
            ))
    return dict(
        title="Table V: CNN architectures with & without EOS",
        labels=("network",),
        cells=cells,
        summary={"kind": "none"},
    )


_VIEW_COMPILERS = {
    "table1": _compile_table1,
    "table2": _compile_table2,
    "table3": _compile_table3,
    "table4": _compile_table4,
    "table5": _compile_table5,
}


# ----------------------------------------------------------------------
# Axis expansion, filtering, prewarm derivation
# ----------------------------------------------------------------------
def _axis_names(spec):
    names = []
    if spec.seeds:
        names.append("seed")
    if spec.hyper:
        names.extend(spec.hyper)
    return names


def _axis_combos(spec, names):
    pools = []
    for name in names:
        pools.append(tuple(spec.seeds) if name == "seed"
                     else tuple(spec.hyper[name]))
    return [dict(zip(names, values))
            for values in itertools.product(*pools)]


def _expand_cell(cell, combo):
    suffix = "/".join("%s=%s" % (name, value)
                      for name, value in combo.items())
    overrides = dict(cell.overrides)
    overrides.update(combo)
    return MatrixCell(
        key=cell.key + tuple(combo.values()),
        cell_id=cell.cell_id + "/" + suffix,
        kind=cell.kind,
        row=cell.row + tuple(str(value) for value in combo.values()),
        loss=cell.loss,
        sampler=cell.sampler,
        overrides=overrides,
        eval_kwargs=dict(cell.eval_kwargs),
    )


def _derive_prewarm(cells):
    """Unique (overrides, loss) extractor jobs, in first-use order.

    Only non-``preprocessed`` cells need a phase-1 extractor; deriving
    the list from the surviving cells means an ``exclude`` predicate
    also prunes the extractors it made unnecessary.
    """
    seen = set()
    jobs = []
    for cell in cells:
        if cell.kind == "preprocessed":
            continue
        marker = (repr(sorted(cell.overrides.items(), key=repr)), cell.loss)
        if marker in seen:
            continue
        seen.add(marker)
        jobs.append((dict(cell.overrides), cell.loss))
    return tuple(jobs)


def compile_matrix(spec):
    """Compile a table spec into a deterministic :class:`MatrixPlan`."""
    if spec.view not in _VIEW_COMPILERS:
        if spec.view in FIGURE_VIEWS:
            raise ValueError(
                "view %r is a figure view; run_matrix executes it "
                "directly without a cell plan" % spec.view
            )
        raise ValueError("unknown view %r (valid: %s)"
                         % (spec.view, ", ".join(ALL_VIEWS)))
    base = _VIEW_COMPILERS[spec.view](spec)
    names = _axis_names(spec)
    cells = list(base["cells"])
    summary = dict(base["summary"])
    headers = list(base["labels"])
    if names:
        combos = _axis_combos(spec, names)
        cells = [_expand_cell(cell, combo)
                 for combo in combos for cell in base["cells"]]
        headers += names
        # Extra axes change row multiplicity; the paper-shape summary
        # lines (post-wins, EOS-wins) are defined on the base grid only.
        summary = {"kind": "none"}
    if spec.include is not None:
        cells = [cell for cell in cells if spec.include(cell)]
    if spec.exclude is not None:
        cells = [cell for cell in cells if not spec.exclude(cell)]
    headers += list(_METRIC_HEADERS)
    if base.get("show_seconds"):
        headers.append("resample+tune")
    return MatrixPlan(
        view=spec.view,
        title=base["title"],
        headers=tuple(headers),
        cells=tuple(cells),
        summary=summary,
        show_seconds=bool(base.get("show_seconds")),
        extras=dict(base.get("extras", {})),
        prewarm=_derive_prewarm(cells),
    )


# ----------------------------------------------------------------------
# JSON round-trip (for the result store)
# ----------------------------------------------------------------------
def plan_to_payload(plan):
    """JSON-able form of a plan; inverse of :func:`plan_from_payload`."""
    return {
        "view": plan.view,
        "title": plan.title,
        "headers": list(plan.headers),
        "summary": dict(plan.summary),
        "show_seconds": plan.show_seconds,
        "extras": {key: (list(value) if isinstance(value, tuple) else value)
                   for key, value in plan.extras.items()},
        "cells": [
            {
                "key": list(cell.key),
                "cell_id": cell.cell_id,
                "kind": cell.kind,
                "row": list(cell.row),
                "loss": cell.loss,
                "sampler": cell.sampler,
                "eval_kwargs": dict(cell.eval_kwargs),
            }
            for cell in plan.cells
        ],
    }


def plan_from_payload(payload):
    """Rebuild the rendering-relevant half of a plan from JSON.

    Cell ``overrides`` and the prewarm list are deliberately dropped:
    a stored plan only ever renders recorded results, it never
    re-executes cells.
    """
    cells = tuple(
        MatrixCell(
            key=tuple(entry["key"]),
            cell_id=entry["cell_id"],
            kind=entry["kind"],
            row=tuple(entry["row"]),
            loss=entry["loss"],
            sampler=entry["sampler"],
            eval_kwargs=dict(entry.get("eval_kwargs", {})),
        )
        for entry in payload["cells"]
    )
    return MatrixPlan(
        view=payload["view"],
        title=payload["title"],
        headers=tuple(payload["headers"]),
        cells=cells,
        summary=dict(payload["summary"]),
        show_seconds=bool(payload["show_seconds"]),
        extras=dict(payload.get("extras", {})),
    )
