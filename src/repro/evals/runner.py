"""``run_matrix``: the single entry point for every paper experiment.

A :class:`~repro.evals.matrix.MatrixSpec` compiles to a deterministic
cell plan and executes through the existing resilience/guard contract
(:func:`repro.parallel.run_cells` — checkpoint resume, retry with
seed-bump + LR-backoff, FAILED-cell degradation, circuit breakers,
bit-identical results at any worker count).  Figure views execute
their dedicated implementations directly.

With ``store=`` set, every cell outcome is appended to the
:class:`~repro.evals.store.ResultStore` *as it completes*, from the
parent process only: the store subscribes to the
:class:`~repro.resilience.RunRegistry` cell sink, which fires after
each manifest flush.  A killed run therefore leaves its completed
cells both in the checkpoint manifest and in the store; resuming with
the same registry re-binds to the same store run (matched by spec
fingerprint) and the idempotent insert discipline guarantees no
duplicate rows.
"""

from __future__ import annotations

import json
import subprocess

from ..resilience import CellFailure, fingerprint_of
from ..telemetry import get_metrics, get_tracer, monotonic
from .matrix import FIGURE_VIEWS, TABLE_VIEWS, MatrixSpec, compile_matrix
from .matrix import plan_to_payload, spec_to_payload
from .store import ResultStore
from .views import render_view

__all__ = ["run_matrix"]


def run_matrix(spec, *, store=None, cache=None, registry=None,
               retry_policy=None, fail_soft=True, workers=None,
               breaker=None):
    """Execute one experiment matrix and return a ``RunResult``.

    Parameters mirror the legacy table runners: ``cache`` shares
    phase-1 extractors across calls, ``registry`` checkpoints cells
    and artifacts, ``retry_policy`` / ``fail_soft`` / ``breaker``
    control the failure path, ``workers`` fans cells out across
    processes.  ``store`` — a :class:`ResultStore` or a path — records
    the run; pass a path to have the store opened and closed around
    this call.
    """
    from ..experiments.result import RunResult

    if isinstance(spec, str):
        spec = MatrixSpec(view=spec)
    own_store = store is not None and not isinstance(store, ResultStore)
    if own_store:
        store = ResultStore(store)
    tracer = get_tracer()
    start = monotonic()
    try:
        with tracer.span("runner", runner=spec.view):
            if spec.view in TABLE_VIEWS:
                data, run_id, cell_rows = _run_grid(
                    spec, store, cache, registry, retry_policy,
                    fail_soft, workers, breaker,
                )
            elif spec.view in FIGURE_VIEWS:
                data, run_id, cell_rows = _run_figure(spec, store, cache)
            else:
                raise ValueError(
                    "unknown view %r (valid: %s)"
                    % (spec.view, ", ".join(TABLE_VIEWS + FIGURE_VIEWS))
                )
        info = {
            "runner": spec.view,
            "enabled": tracer.enabled,
            "seconds": monotonic() - start,
        }
        if tracer.enabled:
            info["metrics"] = get_metrics().snapshot()
        if store is not None and run_id is not None:
            store.finish_run(
                run_id,
                report=data.get("report", ""),
                extras=_json_safe_extras(data),
                cells=cell_rows,
                telemetry=info.get("metrics"),
                seconds=info["seconds"],
            )
        return RunResult(data, telemetry=info, store_run_id=run_id)
    finally:
        if own_store:
            store.close()


# ----------------------------------------------------------------------
# Table views: compiled plan -> cell grid -> rendered view
# ----------------------------------------------------------------------
def _run_grid(spec, store, cache, registry, retry_policy, fail_soft,
              workers, breaker):
    from ..experiments import runners as R
    from ..experiments.config import bench_config
    from ..experiments.pipeline import prewarm_extractors

    config = spec.config if spec.config is not None else bench_config()
    for name in (spec.hyper or {}):
        if not hasattr(config, name):
            raise KeyError("unknown config field %r" % name)
    plan = compile_matrix(spec)
    cache = R._make_cache(cache, registry, retry_policy)

    run_id = None
    if store is not None:
        run_id = _bind_run(store, spec, plan, config, registry)
        if registry is not None:
            positions = {cell.cell_id: (index, cell)
                         for index, cell in enumerate(plan.cells)}

            def sink(cell_id, payload, status):
                entry = positions.get(cell_id)
                if entry is None:
                    return
                index, cell = entry
                store.record_cell(run_id, cell_id, index, cell.key,
                                  status, payload)

            registry.set_cell_sink(sink)
    try:
        prewarm_extractors(
            cache,
            [(config.with_overrides(**overrides), loss)
             for overrides, loss in plan.prewarm],
            max_workers=workers,
        )
        grid = R._CellGrid(registry, retry_policy, fail_soft, workers,
                           breaker)
        artifacts_memo = {}
        for cell in plan.cells:
            cfg = (config.with_overrides(**cell.overrides)
                   if cell.overrides else config)
            if cell.kind == "preprocessed":
                grid.add(cell.key, cell.cell_id,
                         R._preprocessed_cell(cfg, cell.loss, cell.sampler))
                continue
            memo_key = (repr(sorted(cell.overrides.items(), key=repr)),
                        cell.loss)
            if memo_key not in artifacts_memo:
                artifacts_memo[memo_key] = R._get_artifacts(
                    cache, cfg, cell.loss, fail_soft
                )
            artifacts = artifacts_memo[memo_key]
            if isinstance(artifacts, CellFailure):
                grid.stamp(cell.key, artifacts)
            elif cell.kind == "timed_sampler":
                grid.add(cell.key, cell.cell_id,
                         R._timed_sampler_cell(artifacts, cell.sampler,
                                               **cell.eval_kwargs))
            else:
                grid.add(cell.key, cell.cell_id,
                         R._sampler_cell(artifacts, cell.sampler,
                                         **cell.eval_kwargs))
        outcomes = grid.run()
    finally:
        if store is not None and registry is not None:
            registry.set_cell_sink(None)

    results, timing, cell_rows = _assemble(plan, outcomes)
    report, summary_extras = render_view(plan, results, timing)
    data = {"results": results}
    if plan.show_seconds:
        data["timing"] = timing
    data.update(plan.extras)
    data.update(summary_extras)
    data["report"] = report
    return data, run_id, cell_rows


def _assemble(plan, outcomes):
    """Split raw outcomes into results/timing plus store cell rows."""
    results = {}
    timing = {}
    rows = []
    for index, cell in enumerate(plan.cells):
        out = outcomes[cell.key]
        if isinstance(out, CellFailure):
            metrics, seconds = out, None
            payload, status = out.to_payload(), "failed"
        elif cell.timed:
            metrics, seconds = out["metrics"], out["seconds"]
            payload, status = out, "done"
        else:
            metrics, seconds = out, None
            payload, status = out, "done"
        results[cell.key] = metrics
        if cell.timed:
            timing[cell.key] = seconds
        rows.append({"position": index, "cell_id": cell.cell_id,
                     "key": cell.key, "status": status,
                     "payload": payload})
    return results, timing, rows


def _bind_run(store, spec, plan, config, registry):
    """Open a store run, or re-bind to the one a resumed registry holds."""
    spec_payload = spec_to_payload(spec)
    fingerprint = fingerprint_of(
        "evals", json.dumps(spec_payload, sort_keys=True), repr(config)
    )
    if registry is not None:
        prior = registry.evals_run_id()
        if prior is not None and store.is_resumable_run(prior, fingerprint):
            return prior
    run_id = store.begin_run(
        spec.view,
        fingerprint=fingerprint,
        spec=spec_payload,
        plan=plan_to_payload(plan),
        config=_config_payload(config),
        git_sha=_git_sha(),
    )
    if registry is not None:
        registry.bind_evals_run(run_id)
    return run_id


def _config_payload(config):
    import dataclasses

    try:
        return dataclasses.asdict(config)
    except TypeError:
        return {"repr": repr(config)}


def _git_sha():
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _json_safe_extras(data):
    """The JSON-serializable extras of a run's output dict.

    Figure outputs carry arrays and tuple-keyed curve dicts; those are
    reproducible from the stored report/cells and are skipped rather
    than coerced.
    """
    extras = {}
    for key, value in data.items():
        if key in ("results", "report", "timing"):
            continue
        try:
            json.dumps(value, default=_coerce_scalar)
        except (TypeError, ValueError):
            continue
        extras[key] = value
    return extras


def _coerce_scalar(value):
    if hasattr(value, "item"):
        return value.item()
    raise TypeError("not JSON serializable: %r" % (value,))


# ----------------------------------------------------------------------
# Figure views: direct execution of the dedicated implementations
# ----------------------------------------------------------------------
def _run_figure(spec, store, cache):
    from ..experiments import runners as R

    for axis in ("seeds", "hyper", "include", "exclude"):
        if getattr(spec, axis, None):
            raise ValueError(
                "%s is only supported for table views, not %r"
                % (axis, spec.view)
            )
    config = spec.config
    options = dict(spec.options or {})
    run_id = None
    if store is not None:
        run_id = store.begin_run(
            spec.view,
            fingerprint=fingerprint_of(
                "evals", json.dumps(spec_to_payload(spec), sort_keys=True),
                repr(config),
            ),
            spec=spec_to_payload(spec),
            git_sha=_git_sha(),
        )
    view = spec.view
    if view == "figure3":
        data = R._figure3_impl(config, losses=spec.resolved("losses"),
                               samplers=spec.resolved("samplers"),
                               cache=cache)
    elif view == "figure4":
        data = R._figure4_impl(config, datasets=spec.resolved("datasets"),
                               cache=cache)
    elif view == "figure5":
        data = R._figure5_impl(config, losses=spec.resolved("losses"),
                               samplers=spec.resolved("samplers"),
                               cache=cache)
    elif view == "figure6":
        data = R._figure6_impl(config, samplers=spec.resolved("samplers"),
                               cache=cache, **options)
    elif view == "figure7":
        data = R._figure7_impl(config, samplers=spec.resolved("samplers"),
                               cache=cache, **options)
    elif view == "runtime_comparison":
        data = R._runtime_comparison_impl(
            config, samplers=spec.resolved("samplers")
        )
    else:
        data = R._eos_pixel_vs_embedding_impl(config, cache=cache)
    return data, run_id, ()
