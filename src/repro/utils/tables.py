"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

__all__ = ["format_table", "format_float"]


def format_float(value, digits=4):
    """Format a float like the paper's tables (.7581 style)."""
    if value is None:
        return "-"
    if isinstance(value, float) and value != value:  # NaN
        return "nan"
    text = "%.*f" % (digits, value)
    if text.startswith("0."):
        return text[1:]
    if text.startswith("-0."):
        return "-" + text[2:]
    return text


def format_table(headers, rows, title=None):
    """Render rows (lists of str) under headers as an aligned text table."""
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
