"""ASCII line charts for rendering the paper's figures in a terminal.

No plotting library is available in the reproduction environment, so
the figure runners render their series as text charts: each series gets
a marker character, points are plotted on a character grid with a
labeled y-axis, and a legend follows.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_chart"]

_MARKERS = "*o+x#@%&"


def ascii_chart(series, width=60, height=16, title=None, x_label=None,
                y_label=None):
    """Render named series as an ASCII chart.

    Parameters
    ----------
    series:
        Dict mapping series name -> 1-D array of y values.  All series
        share the x axis 0..n-1 (lengths may differ).
    width, height:
        Plot-area size in characters.
    title, x_label, y_label:
        Optional labels.

    Returns the chart as a single string.
    """
    if not series:
        raise ValueError("no series to plot")
    cleaned = {}
    for name, values in series.items():
        arr = np.asarray(values, dtype=np.float64).ravel()
        finite = arr[np.isfinite(arr)]
        if finite.size == 0:
            continue
        cleaned[name] = arr
    if not cleaned:
        raise ValueError("all series are empty or non-finite")

    y_min = min(np.nanmin(v[np.isfinite(v)]) for v in cleaned.values())
    y_max = max(np.nanmax(v[np.isfinite(v)]) for v in cleaned.values())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_max = max(len(v) for v in cleaned.values()) - 1
    x_max = max(x_max, 1)

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, values) in enumerate(cleaned.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in enumerate(values):
            if not np.isfinite(y):
                continue
            col = int(round(x / x_max * (width - 1)))
            row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    label_width = 8
    for i, row in enumerate(grid):
        if i == 0:
            label = "%7.3g" % y_max
        elif i == height - 1:
            label = "%7.3g" % y_min
        else:
            label = " " * 7
        lines.append("%s |%s" % (label.rjust(label_width - 1), "".join(row)))
    lines.append(" " * label_width + "+" + "-" * width)
    axis_note = "0 .. %d" % x_max
    if x_label:
        axis_note += "  (%s)" % x_label
    lines.append(" " * label_width + " " + axis_note)
    legend = "  ".join(
        "%s=%s" % (_MARKERS[i % len(_MARKERS)], name)
        for i, name in enumerate(cleaned)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
