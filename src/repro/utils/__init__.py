"""Utility helpers (tables, ASCII charts, serialization)."""

from .charts import ascii_chart
from .serialization import (
    atomic_write,
    atomic_write_json,
    digest_path,
    file_sha256,
    load_arrays,
    load_dataset,
    load_embeddings,
    load_model,
    read_digest,
    save_arrays,
    save_dataset,
    save_embeddings,
    save_model,
)
from .tables import format_float, format_table

__all__ = [
    "format_table",
    "ascii_chart",
    "format_float",
    "atomic_write",
    "atomic_write_json",
    "digest_path",
    "file_sha256",
    "read_digest",
    "save_arrays",
    "load_arrays",
    "save_model",
    "load_model",
    "save_embeddings",
    "load_embeddings",
    "save_dataset",
    "load_dataset",
]
