"""Utility helpers (tables, ASCII charts, serialization)."""

from .charts import ascii_chart
from .serialization import (
    load_dataset,
    load_embeddings,
    load_model,
    save_dataset,
    save_embeddings,
    save_model,
)
from .tables import format_float, format_table

__all__ = [
    "format_table",
    "ascii_chart",
    "format_float",
    "save_model",
    "load_model",
    "save_embeddings",
    "load_embeddings",
    "save_dataset",
    "load_dataset",
]
