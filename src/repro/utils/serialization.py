"""Checkpointing: save/load models, embeddings and datasets as .npz files.

The three-phase framework naturally checkpoints at two places — after
phase-1 training (model weights) and after embedding extraction (the
(N, D) embedding matrix + labels).  These helpers make both durable.

Every writer goes through :func:`atomic_write`: the payload is written
to a temp file in the destination directory, fsynced, and renamed over
the target with ``os.replace``.  A crash mid-write therefore leaves
either the previous checkpoint or no file — never a torn one — which is
the invariant the resume machinery in :mod:`repro.resilience` relies
on (lint rule RES001 flags artifact writes that bypass this).

Atomicity protects against *torn* files; it cannot detect silent
corruption (a flipped bit, a truncated copy, an artifact edited out of
band).  Array writers therefore also record a sha256 sidecar
(``<artifact>.sha256``) which the resume machinery verifies before
trusting an artifact — see :mod:`repro.guard.integrity`.  Readers wrap
low-level decode failures (``zipfile.BadZipFile``, ``EOFError`` ...) in
:class:`repro.resilience.CheckpointCorruptError` naming the path and
the expected digest, so a truncated checkpoint surfaces as one typed,
quarantine-able failure instead of a raw zip traceback.  Lint rule
RES003 keeps checkpoint I/O routed through this module so no reader
bypasses verification.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
import zlib

import numpy as np

__all__ = [
    "atomic_write",
    "atomic_write_json",
    "digest_path",
    "file_sha256",
    "read_digest",
    "save_arrays",
    "load_arrays",
    "save_model",
    "load_model",
    "save_embeddings",
    "load_embeddings",
    "save_dataset",
    "load_dataset",
]

#: Exceptions that mean "this file does not decode as a valid npz".
_DECODE_ERRORS = (zipfile.BadZipFile, zlib.error, EOFError, ValueError)


def file_sha256(path, chunk_size=1 << 20):
    """Hex sha256 digest of a file's contents (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def digest_path(path):
    """The sidecar path holding ``path``'s recorded sha256 digest."""
    return os.fspath(path) + ".sha256"


def read_digest(path):
    """The recorded digest for ``path``, or None when no sidecar exists."""
    sidecar = digest_path(path)
    if not os.path.exists(sidecar):
        return None
    with open(sidecar, "r", encoding="utf-8") as handle:
        return handle.read().strip() or None


def _write_digest(path):
    """Atomically record ``path``'s current digest in its sidecar."""
    data = (file_sha256(path) + "\n").encode("ascii")
    atomic_write(digest_path(path), lambda handle: handle.write(data))
    return path


def _fsync_directory(directory):
    """Force a directory's entry table to stable storage.

    ``os.replace`` makes the rename visible immediately, but only an
    fsync on the *parent directory* makes it durable: without it, a
    power loss after the rename can replay the directory from its
    journal and resurrect the old entry — the renamed file vanishes
    even though the writer saw it land.  Filesystems that refuse
    directory fsync (some network mounts) degrade to the pre-durability
    behavior rather than failing the write.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # repro: noqa[RES002] directory fsync unsupported here (e.g. NFS); visibility is still atomic
        pass
    finally:
        os.close(fd)


def atomic_write(path, write):
    """Atomically create/replace ``path`` with the bytes ``write`` emits.

    ``write`` receives a binary file handle opened on a temp file in the
    same directory; after it returns, the temp file is fsynced,
    atomically renamed onto ``path``, and the parent directory is
    fsynced so the rename itself survives power loss (a renamed-but-
    unjournaled directory entry can otherwise vanish on replay).  On
    any failure the temp file is removed and the previous ``path`` (if
    any) is left untouched.

    Two fault points bracket the crash windows: ``artifact.replace``
    fires between the fsynced temp write and the rename (a kill there
    leaves the *previous* artifact intact), and ``artifact.dirsync``
    fires between the rename and the directory fsync (a kill there
    leaves the *new* artifact in place — the rename already happened,
    the fsync only pins it down).

    Returns the final path as a string.
    """
    from ..resilience.faults import maybe_fire

    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        maybe_fire("artifact.replace", path=path,
                   name=os.path.basename(path))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # repro: noqa[RES002] best-effort temp cleanup while re-raising the real error
            pass
        raise
    maybe_fire("artifact.dirsync", path=path, name=os.path.basename(path))
    _fsync_directory(directory)
    return path


def atomic_write_json(path, payload, indent=2, digest=False):
    """Atomically serialize ``payload`` as JSON to ``path``.

    With ``digest=True`` a sha256 sidecar is recorded alongside, making
    the file verifiable by :func:`repro.guard.verify_artifact`.
    """
    data = json.dumps(payload, indent=indent, sort_keys=True).encode("utf-8")
    atomic_write(path, lambda handle: handle.write(data))
    if digest:
        _write_digest(path)
    return os.fspath(path)


def _npz_path(path):
    """Match ``np.savez``'s suffix behavior for handle-based writes."""
    path = os.fspath(path)
    return path if path.endswith(".npz") else path + ".npz"


def _flip_bytes(path, count=8):
    """Deterministically corrupt a file in place (the ``corrupt`` fault).

    XORs ``count`` bytes at the file's midpoint — enough to break the
    zip member CRC without changing the file's size, which is exactly
    the silent-corruption shape digest verification exists to catch.
    """
    size = os.path.getsize(path)
    offset = size // 2
    with open(path, "r+b") as handle:
        handle.seek(offset)
        chunk = handle.read(count)
        handle.seek(offset)
        handle.write(bytes(byte ^ 0xFF for byte in chunk))
    return path


def _save_npz(path, arrays):
    from ..resilience.faults import maybe_fire

    final = atomic_write(
        _npz_path(path),
        lambda handle: np.savez_compressed(handle, **arrays),  # repro: noqa[RES001] this lambda writes into atomic_write's temp handle, not the final path
    )
    _write_digest(final)
    if maybe_fire("artifact.saved", path=final,
                  name=os.path.basename(final)) == "corrupt":
        _flip_bytes(final)
    return final


def _corrupt_error(path, exc):
    from ..resilience.errors import CheckpointCorruptError

    return CheckpointCorruptError(
        "checkpoint artifact %s is corrupt or truncated (%s: %s)"
        % (path, type(exc).__name__, exc),
        path=path,
        expected=read_digest(path),
    )


def _load_npz(path, reader):
    """Open an ``.npz`` and apply ``reader`` to it, typing decode errors."""
    path = os.fspath(path)
    try:
        with np.load(path) as data:
            return reader(data)
    except _DECODE_ERRORS as exc:
        raise _corrupt_error(path, exc) from exc


def save_arrays(path, arrays):
    """Atomically persist a flat ``{name: ndarray}`` mapping as ``.npz``.

    A sha256 sidecar (``<path>.sha256``) is recorded after the write so
    resume-time readers can verify the artifact before trusting it.
    """
    return _save_npz(path, dict(arrays))


def load_arrays(path):
    """Load a ``{name: ndarray}`` mapping saved by :func:`save_arrays`.

    A truncated or corrupted file raises
    :class:`repro.resilience.CheckpointCorruptError` naming the path and
    the expected digest instead of a raw ``zipfile``/``EOFError``.
    """
    return _load_npz(path, lambda data: {key: data[key] for key in data.files})


def save_model(model, path):
    """Write a module's state dict to an ``.npz`` file (atomically)."""
    return _save_npz(path, model.state_dict())


def load_model(model, path):
    """Load an ``.npz`` checkpoint into a compatible module (in place).

    An incompatible checkpoint raises ``ValueError`` naming every
    missing, unexpected, or shape-mismatched entry — not a numpy
    broadcast error from deep inside ``load_state_dict``.
    """
    state = load_arrays(path)
    expected = model.state_dict()
    problems = []
    for name in sorted(set(expected) - set(state)):
        problems.append("missing %r" % name)
    for name in sorted(set(state) - set(expected)):
        problems.append("unexpected %r" % name)
    for name in sorted(set(state) & set(expected)):
        if expected[name].shape != state[name].shape:
            problems.append(
                "shape mismatch for %r: checkpoint %s vs model %s"
                % (name, state[name].shape, expected[name].shape)
            )
    if problems:
        raise ValueError(
            "checkpoint %s does not fit the model: %s"
            % (path, "; ".join(problems))
        )
    model.load_state_dict(state)
    return model


def save_embeddings(path, embeddings, labels):
    """Persist an (N, D) embedding matrix and its labels (atomically)."""
    embeddings = np.asarray(embeddings)
    labels = np.asarray(labels)
    if embeddings.shape[0] != labels.shape[0]:
        raise ValueError("embeddings and labels must be aligned")
    return _save_npz(path, {"embeddings": embeddings, "labels": labels})


def load_embeddings(path):
    """Load (embeddings, labels) saved by :func:`save_embeddings`."""
    return _load_npz(path, lambda data: (data["embeddings"], data["labels"]))


def save_dataset(path, dataset):
    """Persist an :class:`repro.data.ArrayDataset` (atomically)."""
    return _save_npz(path, {"images": dataset.images, "labels": dataset.labels})


def load_dataset(path):
    """Load an :class:`repro.data.ArrayDataset` saved by :func:`save_dataset`."""
    from ..data import ArrayDataset

    return _load_npz(
        path, lambda data: ArrayDataset(data["images"], data["labels"])
    )
