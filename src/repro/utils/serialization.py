"""Checkpointing: save/load models, embeddings and datasets as .npz files.

The three-phase framework naturally checkpoints at two places — after
phase-1 training (model weights) and after embedding extraction (the
(N, D) embedding matrix + labels).  These helpers make both durable.

Every writer goes through :func:`atomic_write`: the payload is written
to a temp file in the destination directory, fsynced, and renamed over
the target with ``os.replace``.  A crash mid-write therefore leaves
either the previous checkpoint or no file — never a torn one — which is
the invariant the resume machinery in :mod:`repro.resilience` relies
on (lint rule RES001 flags artifact writes that bypass this).
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

__all__ = [
    "atomic_write",
    "atomic_write_json",
    "save_arrays",
    "load_arrays",
    "save_model",
    "load_model",
    "save_embeddings",
    "load_embeddings",
    "save_dataset",
    "load_dataset",
]


def atomic_write(path, write):
    """Atomically create/replace ``path`` with the bytes ``write`` emits.

    ``write`` receives a binary file handle opened on a temp file in the
    same directory; after it returns, the temp file is fsynced and
    atomically renamed onto ``path``.  On any failure the temp file is
    removed and the previous ``path`` (if any) is left untouched.

    Returns the final path as a string.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # repro: noqa[RES002] best-effort temp cleanup while re-raising the real error
            pass
        raise
    return path


def atomic_write_json(path, payload, indent=2):
    """Atomically serialize ``payload`` as JSON to ``path``."""
    data = json.dumps(payload, indent=indent, sort_keys=True).encode("utf-8")
    return atomic_write(path, lambda handle: handle.write(data))


def _npz_path(path):
    """Match ``np.savez``'s suffix behavior for handle-based writes."""
    path = os.fspath(path)
    return path if path.endswith(".npz") else path + ".npz"


def _save_npz(path, arrays):
    return atomic_write(
        _npz_path(path),
        lambda handle: np.savez_compressed(handle, **arrays),  # repro: noqa[RES001] this lambda runs inside atomic_write's temp handle
    )


def save_arrays(path, arrays):
    """Atomically persist a flat ``{name: ndarray}`` mapping as ``.npz``."""
    return _save_npz(path, dict(arrays))


def load_arrays(path):
    """Load a ``{name: ndarray}`` mapping saved by :func:`save_arrays`."""
    with np.load(path) as data:
        return {key: data[key] for key in data.files}


def save_model(model, path):
    """Write a module's state dict to an ``.npz`` file (atomically)."""
    return _save_npz(path, model.state_dict())


def load_model(model, path):
    """Load an ``.npz`` checkpoint into a compatible module (in place).

    An incompatible checkpoint raises ``ValueError`` naming every
    missing, unexpected, or shape-mismatched entry — not a numpy
    broadcast error from deep inside ``load_state_dict``.
    """
    with np.load(path) as data:
        state = {key: data[key] for key in data.files}
    expected = model.state_dict()
    problems = []
    for name in sorted(set(expected) - set(state)):
        problems.append("missing %r" % name)
    for name in sorted(set(state) - set(expected)):
        problems.append("unexpected %r" % name)
    for name in sorted(set(state) & set(expected)):
        if expected[name].shape != state[name].shape:
            problems.append(
                "shape mismatch for %r: checkpoint %s vs model %s"
                % (name, state[name].shape, expected[name].shape)
            )
    if problems:
        raise ValueError(
            "checkpoint %s does not fit the model: %s"
            % (path, "; ".join(problems))
        )
    model.load_state_dict(state)
    return model


def save_embeddings(path, embeddings, labels):
    """Persist an (N, D) embedding matrix and its labels (atomically)."""
    embeddings = np.asarray(embeddings)
    labels = np.asarray(labels)
    if embeddings.shape[0] != labels.shape[0]:
        raise ValueError("embeddings and labels must be aligned")
    return _save_npz(path, {"embeddings": embeddings, "labels": labels})


def load_embeddings(path):
    """Load (embeddings, labels) saved by :func:`save_embeddings`."""
    with np.load(path) as data:
        return data["embeddings"], data["labels"]


def save_dataset(path, dataset):
    """Persist an :class:`repro.data.ArrayDataset` (atomically)."""
    return _save_npz(path, {"images": dataset.images, "labels": dataset.labels})


def load_dataset(path):
    """Load an :class:`repro.data.ArrayDataset` saved by :func:`save_dataset`."""
    from ..data import ArrayDataset

    with np.load(path) as data:
        return ArrayDataset(data["images"], data["labels"])
