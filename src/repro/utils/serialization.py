"""Checkpointing: save/load models, embeddings and datasets as .npz files.

The three-phase framework naturally checkpoints at two places — after
phase-1 training (model weights) and after embedding extraction (the
(N, D) embedding matrix + labels).  These helpers make both durable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "save_model",
    "load_model",
    "save_embeddings",
    "load_embeddings",
    "save_dataset",
    "load_dataset",
]


def save_model(model, path):
    """Write a module's state dict to an ``.npz`` file."""
    state = model.state_dict()
    np.savez_compressed(path, **state)


def load_model(model, path):
    """Load an ``.npz`` checkpoint into a compatible module (in place)."""
    with np.load(path) as data:
        state = {key: data[key] for key in data.files}
    model.load_state_dict(state)
    return model


def save_embeddings(path, embeddings, labels):
    """Persist an (N, D) embedding matrix and its labels."""
    embeddings = np.asarray(embeddings)
    labels = np.asarray(labels)
    if embeddings.shape[0] != labels.shape[0]:
        raise ValueError("embeddings and labels must be aligned")
    np.savez_compressed(path, embeddings=embeddings, labels=labels)


def load_embeddings(path):
    """Load (embeddings, labels) saved by :func:`save_embeddings`."""
    with np.load(path) as data:
        return data["embeddings"], data["labels"]


def save_dataset(path, dataset):
    """Persist an :class:`repro.data.ArrayDataset`."""
    np.savez_compressed(path, images=dataset.images, labels=dataset.labels)


def load_dataset(path):
    """Load an :class:`repro.data.ArrayDataset` saved by :func:`save_dataset`."""
    from ..data import ArrayDataset

    with np.load(path) as data:
        return ArrayDataset(data["images"], data["labels"])
