"""Common over-/under-sampler interface.

Every sampler implements ``fit_resample(X, y) -> (X_res, y_res)`` over a
2D feature matrix — which may hold flattened pixels (pre-processing
usage) or CNN feature embeddings (the paper's phase-2 usage).  The
resampled output always contains the original samples followed by the
synthetic/duplicated ones, so callers can recover the synthetic block.

:meth:`BaseSampler.fit_resample` is a template method: it validates the
inputs exactly once, stamps telemetry (a ``sampler.fit_resample`` span
with input/output class histograms, plus per-class synthetic counters),
and delegates the actual work to the protected :meth:`_fit_resample`
hook.  Subclasses either override ``_fit_resample`` wholesale
(under-samplers, combined pipelines) or just :meth:`_generate`, the
per-class synthesis hook used by the default ``_fit_resample``.
"""

from __future__ import annotations

import inspect

import numpy as np

from .._validation import validate_xy
from ..telemetry import get_metrics, get_tracer, monotonic

__all__ = ["BaseSampler", "sampling_targets", "validate_xy"]


def sampling_targets(y, strategy="auto"):
    """Number of *synthetic* samples needed per class.

    ``"auto"`` balances every class up to the largest class count.  A
    dict {class: total_count} requests explicit totals.  Returns a dict
    {class: n_new} with only the classes that need new samples.
    """
    y = np.asarray(y, dtype=np.int64)
    counts = np.bincount(y)
    present = np.nonzero(counts)[0]
    if strategy == "auto":
        n_max = counts.max()
        return {
            int(c): int(n_max - counts[c]) for c in present if counts[c] < n_max
        }
    if isinstance(strategy, dict):
        targets = {}
        for c, total in strategy.items():
            have = counts[c] if c < len(counts) else 0
            if have == 0:
                raise ValueError("class %r has no samples to resample from" % c)
            if total < have:
                raise ValueError(
                    "target %d for class %r is below its current count %d"
                    % (total, c, have)
                )
            if total > have:
                targets[int(c)] = int(total - have)
        return targets
    raise ValueError("unknown sampling strategy %r" % strategy)


def _class_histogram(y):
    counts = np.bincount(y)
    return {
        int(c): int(counts[c]) for c in np.nonzero(counts)[0]
    }


class BaseSampler:
    """Base class for resamplers.

    Subclasses implement :meth:`_fit_resample` (full control) or just
    :meth:`_generate` (per-class synthesis under the default balancing
    loop).  The public :meth:`fit_resample` wrapper owns validation and
    telemetry so no subclass repeats either.
    """

    def __init__(self, sampling_strategy="auto", random_state=0):
        self.sampling_strategy = sampling_strategy
        self.random_state = random_state

    def _rng(self):
        return np.random.default_rng(self.random_state)

    # ------------------------------------------------------------------
    # Public template
    # ------------------------------------------------------------------
    def fit_resample(self, x, y):
        """Resample (x, y); returns originals followed by synthetic rows."""
        x, y = validate_xy(x, y)
        tracer = get_tracer()
        if not tracer.enabled:
            return self._fit_resample(x, y)

        name = type(self).__name__
        start = monotonic()
        with tracer.span("sampler.fit_resample", sampler=name) as span:
            x_res, y_res = self._fit_resample(x, y)
            n_in, n_out = int(y.shape[0]), int(y_res.shape[0])
            classes_in = _class_histogram(y)
            classes_out = _class_histogram(y_res)
            span.set(
                n_in=n_in,
                n_out=n_out,
                n_synthetic=max(0, n_out - n_in),
                n_removed=max(0, n_in - n_out),
                classes_in=classes_in,
                classes_out=classes_out,
            )
        metrics = get_metrics()
        metrics.counter("sampler.fit_resample.calls").inc()
        metrics.histogram("sampler.%s.seconds" % name).observe(
            monotonic() - start
        )
        for cls, n_after in classes_out.items():
            grown = n_after - classes_in.get(cls, 0)
            if grown > 0:
                metrics.counter("sampler.synthetic.class_%d" % cls).inc(grown)
        return x_res, y_res

    # ------------------------------------------------------------------
    # Protected hooks
    # ------------------------------------------------------------------
    def _fit_resample(self, x, y):
        """Default balancing loop: per-class :meth:`_generate` synthesis."""
        rng = self._rng()
        targets = sampling_targets(y, self.sampling_strategy)
        new_x, new_y = [x], [y]
        for cls, n_new in sorted(targets.items()):
            if n_new <= 0:
                continue
            synth = self._generate(x, y, cls, n_new, rng)
            if synth.shape[0] != n_new:
                raise RuntimeError(
                    "%s produced %d samples for class %d, expected %d"
                    % (type(self).__name__, synth.shape[0], cls, n_new)
                )
            new_x.append(synth)
            new_y.append(np.full(n_new, cls, dtype=np.int64))
        return np.concatenate(new_x), np.concatenate(new_y)

    def _generate(self, x, y, cls, n_new, rng):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get_params(self):
        """Constructor parameters as a dict (sklearn-style).

        Read back from the instance attributes of the same name, so the
        values reflect what the sampler will actually use; signature
        parameters a subclass resolves away (e.g. a factory argument it
        never stores) are omitted.
        """
        params = {}
        for name, param in inspect.signature(type(self).__init__).parameters.items():
            if name == "self" or param.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            if hasattr(self, name):
                params[name] = getattr(self, name)
        return params

    def __repr__(self):
        args = ", ".join(
            "%s=%r" % (name, value) for name, value in self.get_params().items()
        )
        return "%s(%s)" % (type(self).__name__, args)
