"""Common over-/under-sampler interface.

Every sampler implements ``fit_resample(X, y) -> (X_res, y_res)`` over a
2D feature matrix — which may hold flattened pixels (pre-processing
usage) or CNN feature embeddings (the paper's phase-2 usage).  The
resampled output always contains the original samples followed by the
synthetic/duplicated ones, so callers can recover the synthetic block.
"""

from __future__ import annotations

import numpy as np

from .._validation import validate_xy

__all__ = ["BaseSampler", "sampling_targets", "validate_xy"]


def sampling_targets(y, strategy="auto"):
    """Number of *synthetic* samples needed per class.

    ``"auto"`` balances every class up to the largest class count.  A
    dict {class: total_count} requests explicit totals.  Returns a dict
    {class: n_new} with only the classes that need new samples.
    """
    y = np.asarray(y, dtype=np.int64)
    counts = np.bincount(y)
    present = np.nonzero(counts)[0]
    if strategy == "auto":
        n_max = counts.max()
        return {
            int(c): int(n_max - counts[c]) for c in present if counts[c] < n_max
        }
    if isinstance(strategy, dict):
        targets = {}
        for c, total in strategy.items():
            have = counts[c] if c < len(counts) else 0
            if have == 0:
                raise ValueError("class %r has no samples to resample from" % c)
            if total < have:
                raise ValueError(
                    "target %d for class %r is below its current count %d"
                    % (total, c, have)
                )
            if total > have:
                targets[int(c)] = int(total - have)
        return targets
    raise ValueError("unknown sampling strategy %r" % strategy)


class BaseSampler:
    """Base class for resamplers.

    Subclasses implement :meth:`_generate` which returns the synthetic
    samples for one class.
    """

    def __init__(self, sampling_strategy="auto", random_state=0):
        self.sampling_strategy = sampling_strategy
        self.random_state = random_state

    def _rng(self):
        return np.random.default_rng(self.random_state)

    def fit_resample(self, x, y):
        """Resample (x, y); returns originals followed by synthetic rows."""
        x, y = validate_xy(x, y)
        rng = self._rng()
        targets = sampling_targets(y, self.sampling_strategy)
        new_x, new_y = [x], [y]
        for cls, n_new in sorted(targets.items()):
            if n_new <= 0:
                continue
            synth = self._generate(x, y, cls, n_new, rng)
            if synth.shape[0] != n_new:
                raise RuntimeError(
                    "%s produced %d samples for class %d, expected %d"
                    % (type(self).__name__, synth.shape[0], cls, n_new)
                )
            new_x.append(synth)
            new_y.append(np.full(n_new, cls, dtype=np.int64))
        return np.concatenate(new_x), np.concatenate(new_y)

    def _generate(self, x, y, cls, n_new, rng):
        raise NotImplementedError
