"""SMOTE and Borderline-SMOTE over-samplers (Chawla 2002; Han 2005).

Both are *interpolative*: synthetic points are convex combinations of
same-class neighbors, and therefore never leave the convex hull of the
minority class — the limitation (no feature-range expansion) that
motivates the paper's EOS.
"""

from __future__ import annotations

import numpy as np

from ..neighbors import KNeighbors
from .base import BaseSampler

__all__ = ["SMOTE", "BorderlineSMOTE"]


def _interpolate(bases, neighbors, rng):
    """Classic SMOTE step: ``base + u * (neighbor - base)``, u ~ U[0, 1]."""
    u = rng.random((bases.shape[0], 1))
    return bases + u * (neighbors - bases)


class SMOTE(BaseSampler):
    """Synthetic Minority Over-sampling TEchnique.

    For each synthetic sample: pick a random minority point, pick one of
    its ``k_neighbors`` nearest same-class neighbors, and interpolate
    uniformly between them.  Classes with a single sample fall back to
    duplication.
    """

    def __init__(self, k_neighbors=5, sampling_strategy="auto", random_state=0):
        super().__init__(sampling_strategy, random_state)
        if k_neighbors <= 0:
            raise ValueError("k_neighbors must be positive")
        self.k_neighbors = k_neighbors

    def _generate(self, x, y, cls, n_new, rng):
        pool = x[y == cls]
        if pool.shape[0] == 1:
            return np.repeat(pool, n_new, axis=0)
        k = min(self.k_neighbors, pool.shape[0] - 1)
        index = KNeighbors(k=k).fit(pool)
        _, nn_idx = index.query(pool, exclude_self=True)

        base_ids = rng.integers(0, pool.shape[0], size=n_new)
        nbr_col = rng.integers(0, nn_idx.shape[1], size=n_new)
        neighbors = pool[nn_idx[base_ids, nbr_col]]
        return _interpolate(pool[base_ids], neighbors, rng)


class BorderlineSMOTE(BaseSampler):
    """Borderline-SMOTE (variant 1).

    Only *danger* points seed interpolation: minority points whose
    ``m_neighbors``-neighborhood (over the full dataset) contains at
    least half enemies but is not entirely enemies ("noise").  If no
    danger points exist the sampler falls back to plain SMOTE behaviour
    over the whole class.
    """

    def __init__(
        self,
        k_neighbors=5,
        m_neighbors=10,
        sampling_strategy="auto",
        random_state=0,
    ):
        super().__init__(sampling_strategy, random_state)
        if k_neighbors <= 0 or m_neighbors <= 0:
            raise ValueError("neighbor counts must be positive")
        self.k_neighbors = k_neighbors
        self.m_neighbors = m_neighbors

    def danger_mask(self, x, y, cls):
        """Boolean mask over class-``cls`` rows marking danger points."""
        pool_idx = np.nonzero(y == cls)[0]
        m = min(self.m_neighbors, x.shape[0] - 1)
        index = KNeighbors(k=m).fit(x)
        _, nn_idx = index.query(x[pool_idx], exclude_self=True,
                                self_indices=pool_idx)
        enemy_counts = (y[nn_idx] != cls).sum(axis=1)
        half = nn_idx.shape[1] / 2.0
        return (enemy_counts >= half) & (enemy_counts < nn_idx.shape[1])

    def _generate(self, x, y, cls, n_new, rng):
        pool = x[y == cls]
        if pool.shape[0] == 1:
            return np.repeat(pool, n_new, axis=0)
        danger = self.danger_mask(x, y, cls)
        if danger.any():
            seeds = pool[danger]
            seed_rows = np.nonzero(danger)[0]
        else:
            seeds = pool
            seed_rows = np.arange(pool.shape[0])
        k = min(self.k_neighbors, pool.shape[0] - 1)
        index = KNeighbors(k=k).fit(pool)
        _, nn_idx = index.query(seeds, exclude_self=True,
                                self_indices=seed_rows)

        base_ids = rng.integers(0, seeds.shape[0], size=n_new)
        nbr_col = rng.integers(0, nn_idx.shape[1], size=n_new)
        neighbors = pool[nn_idx[base_ids, nbr_col]]
        return _interpolate(seeds[base_ids], neighbors, rng)
