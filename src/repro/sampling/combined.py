"""Combined over-sampling + cleaning pipelines (SMOTE-ENN, SMOTE-Tomek).

The classic two-stage recipes: over-sample to balance, then clean the
result with a neighborhood editor to remove the synthetic (and original)
points that landed in overlap regions.  Both reuse the library's SMOTE
and cleaning blocks; any over-sampler with ``fit_resample`` can be
substituted via the ``oversampler`` argument (e.g. EOS-Tomek).
"""

from __future__ import annotations

from .base import BaseSampler
from .cleaning import EditedNearestNeighbors, TomekLinks
from .smote import SMOTE

__all__ = ["SMOTEENN", "SMOTETomek"]


class _CombinedSampler(BaseSampler):
    """Over-sample then clean; shared implementation."""

    def __init__(self, oversampler, cleaner):
        self.oversampler = oversampler
        self.cleaner = cleaner

    def _fit_resample(self, x, y):
        x_over, y_over = self.oversampler.fit_resample(x, y)
        return self.cleaner.fit_resample(x_over, y_over)


class SMOTEENN(_CombinedSampler):
    """SMOTE followed by Edited-Nearest-Neighbors cleaning.

    Parameters
    ----------
    k_neighbors:
        SMOTE neighborhood size.
    enn_neighbors:
        ENN voting neighborhood size.
    oversampler:
        Optional replacement for the SMOTE stage (any ``fit_resample``
        object); when given, ``k_neighbors`` is ignored.
    """

    def __init__(
        self,
        k_neighbors=5,
        enn_neighbors=3,
        sampling_strategy="auto",
        random_state=0,
        oversampler=None,
    ):
        self.k_neighbors = k_neighbors
        self.enn_neighbors = enn_neighbors
        self.sampling_strategy = sampling_strategy
        self.random_state = random_state
        if oversampler is None:
            oversampler = SMOTE(
                k_neighbors=k_neighbors,
                sampling_strategy=sampling_strategy,
                random_state=random_state,
            )
        super().__init__(
            oversampler, EditedNearestNeighbors(k_neighbors=enn_neighbors)
        )


class SMOTETomek(_CombinedSampler):
    """SMOTE followed by Tomek-link removal.

    Parameters as :class:`SMOTEENN`; the cleaning stage drops the
    majority member of every Tomek link in the balanced set.
    """

    def __init__(
        self,
        k_neighbors=5,
        sampling_strategy="auto",
        random_state=0,
        oversampler=None,
        link_strategy="majority",
    ):
        self.k_neighbors = k_neighbors
        self.sampling_strategy = sampling_strategy
        self.random_state = random_state
        self.link_strategy = link_strategy
        if oversampler is None:
            oversampler = SMOTE(
                k_neighbors=k_neighbors,
                sampling_strategy=sampling_strategy,
                random_state=random_state,
            )
        super().__init__(oversampler, TomekLinks(strategy=link_strategy))
