"""Remix-style pixel-space augmentation (Bellinger et al. 2021).

Remix expands the minority-class footprint in *pixel space* by mixing a
minority image with a randomly drawn (often majority) image, while
assigning the mixed sample the *minority* label whenever the class-count
disparity exceeds ``kappa`` — the label-disentangled relaxation of mixup
that boosts minority recall.

Because it operates on raw images, the paper uses it only as a
pre-processing baseline (Table I); mixing already-balanced embeddings
would double-balance.
"""

from __future__ import annotations

import numpy as np

from .base import BaseSampler

__all__ = ["Remix"]


class Remix(BaseSampler):
    """Mixup-based minority over-sampler with Remix label assignment.

    Parameters
    ----------
    alpha:
        Beta(alpha, alpha) parameter for the mixing coefficient.
    kappa:
        Class-count ratio above which the mixed sample takes the
        minority label outright (Remix's tau rule simplified: we always
        oversample *for* a specific minority class, mixing its images
        with random partners and keeping the minority label when the
        partner class is at least ``kappa``× larger, otherwise biasing
        the mix strongly toward the minority image).
    """

    def __init__(self, alpha=1.0, kappa=3.0, sampling_strategy="auto", random_state=0):
        super().__init__(sampling_strategy, random_state)
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if kappa < 1:
            raise ValueError("kappa must be >= 1")
        self.alpha = alpha
        self.kappa = kappa

    def _generate(self, x, y, cls, n_new, rng):
        counts = np.bincount(y, minlength=int(y.max()) + 1)
        pool_idx = np.nonzero(y == cls)[0]
        partner_idx = rng.integers(0, x.shape[0], size=n_new)
        base_idx = pool_idx[rng.integers(0, len(pool_idx), size=n_new)]

        lam = rng.beta(self.alpha, self.alpha, size=n_new)
        partner_labels = y[partner_idx]
        ratio = counts[partner_labels] / max(counts[cls], 1)
        # When the partner class dominates, Remix hands the minority the
        # full label; we additionally cap the partner's pixel weight so
        # the synthetic image stays minority-recognizable.
        dominated = ratio >= self.kappa
        lam = np.where(dominated, np.maximum(lam, 0.5), np.maximum(lam, 0.8))

        mixed = lam[:, None] * x[base_idx] + (1.0 - lam[:, None]) * x[partner_idx]
        return mixed
