"""Balanced-SVM over-sampling (Farquad & Bose 2012).

SMOTE generates the synthetic candidates; a linear SVM trained on the
*real* data then replaces each candidate's label with the SVM's
prediction.  Candidates the margin classifier assigns to another class
therefore migrate there, cleaning up synthetic points that landed on the
wrong side of the decision boundary.
"""

from __future__ import annotations

import numpy as np

from ..svm import LinearSVM
from .base import BaseSampler
from .smote import SMOTE

__all__ = ["BalancedSVMSampler"]


class BalancedSVMSampler(BaseSampler):
    """SMOTE + SVM relabeling.

    Parameters
    ----------
    k_neighbors:
        SMOTE neighborhood size.
    svm_params:
        Keyword arguments forwarded to :class:`repro.svm.LinearSVM`.
    keep_labels:
        When True, keeps the SMOTE labels and *drops* relabeled-away
        points instead of moving them (a stricter cleaning variant).
    """

    def __init__(
        self,
        k_neighbors=5,
        sampling_strategy="auto",
        random_state=0,
        svm_params=None,
        keep_labels=False,
    ):
        super().__init__(
            sampling_strategy=sampling_strategy, random_state=random_state
        )
        self.k_neighbors = k_neighbors
        self.svm_params = dict(svm_params or {})
        self.keep_labels = keep_labels

    def _fit_resample(self, x, y):
        smote = SMOTE(
            k_neighbors=self.k_neighbors,
            sampling_strategy=self.sampling_strategy,
            random_state=self.random_state,
        )
        x_res, y_res = smote.fit_resample(x, y)
        n_orig = x.shape[0]
        synth_x = x_res[n_orig:]
        synth_y = y_res[n_orig:]
        if synth_x.shape[0] == 0:
            return x_res, y_res

        # Standardize features for the SVM: hinge subgradients are not
        # scale-invariant and raw pixel vectors (hundreds of dims in
        # [0, 1]) destabilize the fixed learning rate otherwise.
        mean = x.mean(axis=0)
        std = x.std(axis=0)
        std = np.where(std > 1e-8, std, 1.0)
        svm_params = {"class_weight": "balanced", **self.svm_params}
        svm = LinearSVM(seed=self.random_state, **svm_params)
        svm.fit((x - mean) / std, y)
        predicted = svm.predict((synth_x - mean) / std)

        if self.keep_labels:
            keep = predicted == synth_y
            synth_x = synth_x[keep]
            synth_y = synth_y[keep]
        else:
            synth_y = predicted.astype(np.int64)
        return (
            np.concatenate([x, synth_x]),
            np.concatenate([y, synth_y]),
        )
