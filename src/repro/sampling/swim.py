"""SWIM: Sampling WIth the Majority (Bellinger et al. 2020, ref [47]).

Designed for *extreme* imbalance (a handful of minority points), SWIM
generates synthetic minority samples using the **majority** class's
density: each synthetic point is a jittered copy of a minority point
constrained to stay on (approximately) the same Mahalanobis density
contour of the majority distribution — so new points spread along the
majority's shape without drifting into its high-density core.
"""

from __future__ import annotations

import numpy as np

from .base import BaseSampler

__all__ = ["SWIM"]


class SWIM(BaseSampler):
    """Mahalanobis-contour minority expansion.

    Parameters
    ----------
    spread:
        Std of the jitter applied in whitened majority space.
    shrink_reg:
        Ridge added to the majority covariance before inversion.
    """

    def __init__(
        self, spread=0.35, shrink_reg=1e-3, sampling_strategy="auto", random_state=0
    ):
        super().__init__(sampling_strategy, random_state)
        if spread <= 0:
            raise ValueError("spread must be positive")
        if shrink_reg < 0:
            raise ValueError("shrink_reg must be non-negative")
        self.spread = spread
        self.shrink_reg = shrink_reg

    def _whitener(self, majority):
        """Return (mean, W, W_inv) whitening the majority distribution."""
        mean = majority.mean(axis=0)
        centered = majority - mean
        cov = centered.T @ centered / max(majority.shape[0] - 1, 1)
        cov += self.shrink_reg * np.eye(cov.shape[0])
        # Symmetric eigendecomposition for a stable inverse square root.
        values, vectors = np.linalg.eigh(cov)
        values = np.maximum(values, 1e-12)
        w = vectors @ np.diag(values ** -0.5) @ vectors.T
        w_inv = vectors @ np.diag(values ** 0.5) @ vectors.T
        return mean, w, w_inv

    def _generate(self, x, y, cls, n_new, rng):
        minority = x[y == cls]
        majority = x[y != cls]
        if majority.shape[0] <= x.shape[1]:
            # Not enough majority data to estimate a covariance: fall
            # back to gaussian jitter around minority points.
            picks = rng.integers(0, minority.shape[0], size=n_new)
            jitter = rng.normal(
                0.0, self.spread * (minority.std(axis=0) + 1e-12), (n_new, x.shape[1])
            )
            return minority[picks] + jitter

        mean, w, w_inv = self._whitener(majority)
        # Whitened minority seeds.
        seeds = (minority - mean) @ w
        picks = rng.integers(0, seeds.shape[0], size=n_new)
        base = seeds[picks]
        norms = np.linalg.norm(base, axis=1, keepdims=True)
        norms = np.maximum(norms, 1e-12)

        # Jitter in whitened space, then rescale back to the seed's
        # Mahalanobis radius so density w.r.t. the majority is preserved.
        jittered = base + rng.normal(0.0, self.spread, size=base.shape)
        new_norms = np.linalg.norm(jittered, axis=1, keepdims=True)
        new_norms = np.maximum(new_norms, 1e-12)
        on_contour = jittered * (norms / new_norms)
        return on_contour @ w_inv + mean
