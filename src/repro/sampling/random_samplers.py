"""Random over-/under-sampling baselines."""

from __future__ import annotations

import numpy as np

from .base import BaseSampler

__all__ = ["RandomOverSampler", "RandomUnderSampler"]


class RandomOverSampler(BaseSampler):
    """Balance classes by duplicating minority samples with replacement."""

    def _generate(self, x, y, cls, n_new, rng):
        pool = np.nonzero(y == cls)[0]
        picks = rng.choice(pool, size=n_new, replace=True)
        return x[picks].copy()


class RandomUnderSampler(BaseSampler):
    """Balance classes by discarding majority samples.

    Keeps ``min_count`` samples per class (the smallest class count, or
    an explicit per-class dict via ``sampling_strategy``).
    """

    def _fit_resample(self, x, y):
        rng = self._rng()
        counts = np.bincount(y)
        present = np.nonzero(counts)[0]
        if self.sampling_strategy == "auto":
            target = {int(c): int(counts[present].min()) for c in present}
        elif isinstance(self.sampling_strategy, dict):
            target = {int(c): int(n) for c, n in self.sampling_strategy.items()}
        else:
            raise ValueError(
                "unknown sampling strategy %r" % self.sampling_strategy
            )
        keep = []
        for c in present:
            idx = np.nonzero(y == c)[0]
            want = min(target.get(int(c), len(idx)), len(idx))
            keep.append(rng.choice(idx, size=want, replace=False))
        keep = np.sort(np.concatenate(keep))
        return x[keep].copy(), y[keep].copy()
