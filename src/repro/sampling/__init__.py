"""Over- and under-sampling baselines with a shared fit_resample API."""

from .adasyn import ADASYN
from .balanced_svm import BalancedSVMSampler
from .base import BaseSampler, sampling_targets, validate_xy
from .ccr import CCR
from .cleaning import EditedNearestNeighbors, TomekLinks, find_tomek_links
from .combined import SMOTEENN, SMOTETomek
from .random_samplers import RandomOverSampler, RandomUnderSampler
from .rbo import RadialBasedOversampler
from .remix import Remix
from .smote import SMOTE, BorderlineSMOTE
from .swim import SWIM

__all__ = [
    "BaseSampler",
    "sampling_targets",
    "validate_xy",
    "RandomOverSampler",
    "RandomUnderSampler",
    "SMOTE",
    "BorderlineSMOTE",
    "ADASYN",
    "BalancedSVMSampler",
    "Remix",
    "RadialBasedOversampler",
    "CCR",
    "SWIM",
    "TomekLinks",
    "EditedNearestNeighbors",
    "find_tomek_links",
    "SMOTEENN",
    "SMOTETomek",
]
