"""Under-sampling cleaning methods: Tomek links and Edited Nearest Neighbors.

Classic neighborhood-based cleaning, used standalone or as the cleaning
stage of combined methods (:mod:`repro.sampling.ccr`).  Both operate on
the same (X, y) interface as the over-samplers but *remove* points:

* **Tomek links** — a pair (a, b) of different classes where each is the
  other's nearest neighbor marks a boundary conflict; removing the
  majority member sharpens the boundary.
* **ENN** — remove every (majority) point whose k-neighborhood majority
  vote disagrees with its label; a stronger smoother than Tomek links.
"""

from __future__ import annotations

import numpy as np

from .._validation import validate_xy
from ..neighbors import KNeighbors
from .base import BaseSampler

__all__ = ["TomekLinks", "EditedNearestNeighbors", "find_tomek_links"]


def find_tomek_links(x, y):
    """Return an (m, 2) array of index pairs forming Tomek links."""
    x, y = validate_xy(x, y)
    if x.shape[0] < 2:
        return np.empty((0, 2), dtype=np.int64)
    index = KNeighbors(k=1).fit(x)
    _, nn = index.query(x, exclude_self=True)
    nearest = nn[:, 0]
    links = []
    for i in range(x.shape[0]):
        j = nearest[i]
        if j > i and nearest[j] == i and y[i] != y[j]:
            links.append((i, j))
    return np.asarray(links, dtype=np.int64).reshape(-1, 2)


class TomekLinks(BaseSampler):
    """Remove the majority-class member of every Tomek link.

    ``strategy="majority"`` (default) removes only majority-side points;
    ``strategy="both"`` removes both link members.
    """

    def __init__(self, strategy="majority"):
        if strategy not in ("majority", "both"):
            raise ValueError("strategy must be 'majority' or 'both'")
        self.strategy = strategy

    def _fit_resample(self, x, y):
        links = find_tomek_links(x, y)
        if links.size == 0:
            return x.copy(), y.copy()
        counts = np.bincount(y)
        drop = set()
        for i, j in links:
            if self.strategy == "both":
                drop.update((int(i), int(j)))
            else:
                # Drop the member of the more frequent class.
                drop.add(int(i) if counts[y[i]] >= counts[y[j]] else int(j))
        keep = np.array(
            [idx for idx in range(x.shape[0]) if idx not in drop], dtype=np.int64
        )
        return x[keep].copy(), y[keep].copy()


class EditedNearestNeighbors(BaseSampler):
    """Remove points whose k-NN majority vote disagrees with their label.

    ``protect_minority`` (default True) never removes points of the
    smallest classes — the standard usage when cleaning imbalanced data
    is to smooth the majority, not to erase the minority.
    """

    def __init__(self, k_neighbors=3, protect_minority=True):
        if k_neighbors <= 0:
            raise ValueError("k_neighbors must be positive")
        self.k_neighbors = k_neighbors
        self.protect_minority = protect_minority

    def _fit_resample(self, x, y):
        n = x.shape[0]
        if n <= self.k_neighbors:
            return x.copy(), y.copy()
        index = KNeighbors(k=self.k_neighbors).fit(x)
        _, nn = index.query(x, exclude_self=True)
        votes = y[nn]
        num_classes = int(y.max()) + 1
        counts = np.bincount(y, minlength=num_classes)
        # Protect classes strictly smaller than the largest: on an
        # already-balanced set (e.g. after SMOTE) nothing is protected
        # and cleaning edits both sides of the boundary.
        max_count = counts.max()
        minority_classes = set(
            np.nonzero((counts > 0) & (counts < max_count))[0].tolist()
        )
        keep = []
        for i in range(n):
            vote_counts = np.bincount(votes[i], minlength=num_classes)
            majority_vote = vote_counts.argmax()
            if majority_vote == y[i]:
                keep.append(i)
            elif self.protect_minority and int(y[i]) in minority_classes:
                keep.append(i)
        keep = np.asarray(keep, dtype=np.int64)
        return x[keep].copy(), y[keep].copy()
