"""CCR: Combined Cleaning and Resampling (Koziarski et al., paper ref [58]).

CCR couples two mechanisms around each minority point:

1. **Cleaning** — an energy budget grows a sphere around every minority
   point; majority points caught inside the sphere are *pushed out* to
   its surface, clearing overlap around the minority.
2. **Resampling** — synthetic minority points are drawn inside the
   spheres, with more samples allocated to points whose spheres stayed
   small (the hard, majority-crowded ones).

This reproduction implements the standard single-pass CCR for the
multiclass case by running the binary procedure one minority class at a
time against all other points.
"""

from __future__ import annotations

import numpy as np

from .base import BaseSampler, sampling_targets

__all__ = ["CCR"]


class CCR(BaseSampler):
    """Combined cleaning and resampling.

    Parameters
    ----------
    energy:
        Per-point budget spent expanding the cleaning sphere; larger
        energy -> larger spheres -> more cleaning.
    sampling_strategy, random_state:
        As in the other samplers.
    """

    def __init__(self, energy=0.25, sampling_strategy="auto", random_state=0):
        if energy <= 0:
            raise ValueError("energy must be positive")
        super().__init__(
            sampling_strategy=sampling_strategy, random_state=random_state
        )
        self.energy = energy

    # ------------------------------------------------------------------
    def _spheres(self, minority, others):
        """Radius of each minority point's sphere under the energy budget.

        Expanding a sphere costs 1 unit per unit radius, plus each
        enclosed majority point multiplies the cost of further
        expansion.  We implement the standard incremental scheme:
        sort distances to majority points and spend energy segment by
        segment, where the i-th segment (between the i-th and (i+1)-th
        nearest majority point) costs ``(i + 1) * delta_radius``.
        """
        n_min = minority.shape[0]
        radii = np.zeros(n_min)
        if others.shape[0] == 0:
            return np.full(n_min, self.energy), [np.empty(0, np.int64)] * n_min
        d2 = (
            (minority ** 2).sum(axis=1)[:, None]
            - 2.0 * minority @ others.T
            + (others ** 2).sum(axis=1)[None, :]
        )
        dists = np.sqrt(np.clip(d2, 0.0, None))
        caught = []
        for i in range(n_min):
            order = np.argsort(dists[i])
            sorted_d = dists[i][order]
            budget = self.energy
            radius = 0.0
            inside = 0
            for k, boundary in enumerate(sorted_d):
                # Cost to expand from `radius` to `boundary` with k points
                # already inside: (k + 1) per unit.
                cost = (inside + 1) * (boundary - radius)
                if budget < cost:
                    radius += budget / (inside + 1)
                    budget = 0.0
                    break
                budget -= cost
                radius = boundary
                inside += 1
            if budget > 0:
                radius += budget / (inside + 1)
            radii[i] = radius
            caught.append(order[:inside])
        return radii, caught

    @staticmethod
    def _push_out(minority, others, radii, caught):
        """Translate caught majority points to their sphere's surface."""
        moved = others.copy()
        for i, inside in enumerate(caught):
            for j in inside:
                direction = moved[j] - minority[i]
                norm = np.linalg.norm(direction)
                if norm < 1e-12:
                    direction = np.random.default_rng(j).normal(
                        size=minority.shape[1]
                    )
                    norm = np.linalg.norm(direction)
                moved[j] = minority[i] + direction / norm * radii[i] * (1 + 1e-6)
        return moved

    # ------------------------------------------------------------------
    def _fit_resample(self, x, y):
        """Clean around each deficient class, then oversample inside spheres."""
        rng = self._rng()
        targets = sampling_targets(y, self.sampling_strategy)
        x = x.copy()

        synth_x, synth_y = [], []
        for cls, n_new in sorted(targets.items()):
            cls_mask = y == cls
            minority = x[cls_mask]
            other_idx = np.nonzero(~cls_mask)[0]
            others = x[other_idx]

            radii, caught = self._spheres(minority, others)
            x[other_idx] = self._push_out(minority, others, radii, caught)

            if n_new <= 0:
                continue
            # Inverse-radius allocation: crowded points get more samples.
            inv = 1.0 / np.maximum(radii, 1e-12)
            weights = inv / inv.sum()
            picks = rng.choice(minority.shape[0], size=n_new, p=weights)
            # Uniform sample inside each chosen sphere.
            directions = rng.normal(size=(n_new, x.shape[1]))
            directions /= np.maximum(
                np.linalg.norm(directions, axis=1, keepdims=True), 1e-12
            )
            fractions = rng.random(n_new) ** (1.0 / x.shape[1])
            offsets = directions * (radii[picks] * fractions)[:, None]
            synth_x.append(minority[picks] + offsets)
            synth_y.append(np.full(n_new, cls, dtype=np.int64))

        if synth_x:
            return (
                np.concatenate([x] + synth_x),
                np.concatenate([y] + synth_y),
            )
        return x, y.copy()
