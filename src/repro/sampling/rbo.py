"""Radial-Based Oversampling (Krawczyk et al. 2020, the paper's ref [57]).

RBO places synthetic minority points where a radial-basis *class
potential* favors the minority: every training point contributes a
Gaussian kernel of its class, and a candidate location's potential is
the minority kernel mass minus the majority kernel mass.  Candidates are
random perturbations of minority points hill-climbed toward positive
potential — which concentrates synthetic points in minority-safe
regions instead of uniformly along segments like SMOTE.
"""

from __future__ import annotations

import numpy as np

from .base import BaseSampler

__all__ = ["RadialBasedOversampler"]


class RadialBasedOversampler(BaseSampler):
    """RBO with hill-climbing candidate refinement.

    Parameters
    ----------
    gamma:
        RBF kernel width (potential = sum of exp(-gamma * d^2) terms).
    steps:
        Hill-climbing iterations per candidate.
    step_size:
        Scale of each random climbing step (relative to the per-feature
        std of the minority class).
    """

    def __init__(
        self,
        gamma=0.05,
        steps=20,
        step_size=0.5,
        sampling_strategy="auto",
        random_state=0,
    ):
        super().__init__(sampling_strategy, random_state)
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        if steps < 0:
            raise ValueError("steps must be non-negative")
        self.gamma = gamma
        self.steps = steps
        self.step_size = step_size

    def _potential(self, points, x_cls, x_other):
        """Minority-minus-majority RBF potential at each point."""

        def mass(points, sources):
            if sources.shape[0] == 0:
                return np.zeros(points.shape[0])
            # (m, n) squared distances.
            d2 = (
                (points ** 2).sum(axis=1)[:, None]
                - 2.0 * points @ sources.T
                + (sources ** 2).sum(axis=1)[None, :]
            )
            return np.exp(-self.gamma * np.clip(d2, 0.0, None)).sum(axis=1)

        return mass(points, x_cls) - mass(points, x_other)

    def _generate(self, x, y, cls, n_new, rng):
        x_cls = x[y == cls]
        x_other = x[y != cls]
        if x_cls.shape[0] == 1:
            return np.repeat(x_cls, n_new, axis=0)
        scale = x_cls.std(axis=0) * self.step_size
        scale = np.where(scale > 1e-12, scale, self.step_size)

        seeds = x_cls[rng.integers(0, x_cls.shape[0], size=n_new)]
        current = seeds + rng.normal(0.0, scale, size=seeds.shape)
        current_pot = self._potential(current, x_cls, x_other)
        for _ in range(self.steps):
            proposal = current + rng.normal(0.0, scale, size=current.shape)
            proposal_pot = self._potential(proposal, x_cls, x_other)
            better = proposal_pot > current_pot
            current[better] = proposal[better]
            current_pot[better] = proposal_pot[better]
        return current
