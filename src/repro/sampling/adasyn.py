"""ADASYN: adaptive synthetic over-sampling (He et al. 2008).

Allocates more synthetic samples to minority points that are *harder to
learn*, measured by the fraction of adversary-class points in each
minority point's neighborhood.
"""

from __future__ import annotations

import numpy as np

from ..neighbors import KNeighbors
from .base import BaseSampler
from .smote import _interpolate

__all__ = ["ADASYN"]


class ADASYN(BaseSampler):
    """Adaptive synthetic sampling.

    Each minority point gets a difficulty score ``r_i`` = (enemies among
    its ``k_neighbors`` over the full dataset) / k.  Scores are
    normalized to a distribution that allocates the class's synthetic
    budget; generation then interpolates toward same-class neighbors as
    in SMOTE.  If every score is zero (class fully interior) allocation
    is uniform.
    """

    def __init__(self, k_neighbors=5, sampling_strategy="auto", random_state=0):
        super().__init__(sampling_strategy, random_state)
        if k_neighbors <= 0:
            raise ValueError("k_neighbors must be positive")
        self.k_neighbors = k_neighbors

    def _generate(self, x, y, cls, n_new, rng):
        pool_idx = np.nonzero(y == cls)[0]
        pool = x[pool_idx]
        if pool.shape[0] == 1:
            return np.repeat(pool, n_new, axis=0)

        k_global = min(self.k_neighbors, x.shape[0] - 1)
        full_index = KNeighbors(k=k_global).fit(x)
        _, nn_idx = full_index.query(pool, exclude_self=True,
                                     self_indices=pool_idx)
        difficulty = (y[nn_idx] != cls).mean(axis=1)
        if difficulty.sum() <= 0:
            weights = np.full(pool.shape[0], 1.0 / pool.shape[0])
        else:
            weights = difficulty / difficulty.sum()

        base_ids = rng.choice(pool.shape[0], size=n_new, replace=True, p=weights)

        k_local = min(self.k_neighbors, pool.shape[0] - 1)
        local_index = KNeighbors(k=k_local).fit(pool)
        _, local_nn = local_index.query(pool, exclude_self=True)
        nbr_col = rng.integers(0, local_nn.shape[1], size=n_new)
        neighbors = pool[local_nn[base_ids, nbr_col]]
        return _interpolate(pool[base_ids], neighbors, rng)
