"""Skew-insensitive evaluation metrics (BAC, GM, macro-F1)."""

from .classification import (
    accuracy,
    balanced_accuracy,
    classification_report,
    confusion_matrix,
    evaluate_predictions,
    geometric_mean,
    macro_f1,
    per_class_precision,
    per_class_recall,
)

__all__ = [
    "confusion_matrix",
    "per_class_recall",
    "per_class_precision",
    "balanced_accuracy",
    "geometric_mean",
    "macro_f1",
    "accuracy",
    "evaluate_predictions",
    "classification_report",
]
