"""Skew-insensitive classification metrics.

The paper reports three metrics for every experiment:

* **BAC** — balanced accuracy: the mean of per-class recalls.
* **GM** — geometric mean of per-class recalls.
* **FM** — macro-averaged F1 measure.

All are computed from a confusion matrix so they can be derived from a
single pass over predictions.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "confusion_matrix",
    "per_class_recall",
    "per_class_precision",
    "balanced_accuracy",
    "geometric_mean",
    "macro_f1",
    "accuracy",
    "classification_report",
    "evaluate_predictions",
]


def confusion_matrix(y_true, y_pred, num_classes=None):
    """Confusion matrix C where C[i, j] counts true i predicted j."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size:
        low = int(min(y_true.min(), y_pred.min()))
        high = int(max(y_true.max(), y_pred.max()))
        # np.add.at would silently wrap label -1 onto the last class and
        # corrupt every derived metric (BAC/GM/FM); reject instead.
        if low < 0:
            raise ValueError(
                "labels must be non-negative; got minimum label %d" % low
            )
        if num_classes is not None and high >= num_classes:
            raise ValueError(
                "labels must be in [0, %d); got maximum label %d"
                % (num_classes, high)
            )
        if num_classes is None:
            num_classes = high + 1
    elif num_classes is None:
        num_classes = 0
    cm = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(cm, (y_true, y_pred), 1)
    return cm


def per_class_recall(cm):
    """Recall (true-positive rate) per class; 0 where a class is absent."""
    support = cm.sum(axis=1)
    tp = np.diag(cm)
    with np.errstate(divide="ignore", invalid="ignore"):
        recall = np.where(support > 0, tp / support, 0.0)
    return recall


def per_class_precision(cm):
    """Precision per class; 0 where a class is never predicted."""
    predicted = cm.sum(axis=0)
    tp = np.diag(cm)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
    return precision


def balanced_accuracy(y_true, y_pred, num_classes=None):
    """Mean of per-class recalls, over classes present in y_true."""
    cm = confusion_matrix(y_true, y_pred, num_classes)
    support = cm.sum(axis=1)
    recall = per_class_recall(cm)
    present = support > 0
    return float(recall[present].mean())


def geometric_mean(y_true, y_pred, num_classes=None, correction=0.001):
    """Geometric mean of per-class recalls (zero recalls floored).

    ``correction`` replaces zero recalls so a single empty class does not
    collapse the metric to zero, following common imbalanced-learning
    practice.
    """
    cm = confusion_matrix(y_true, y_pred, num_classes)
    support = cm.sum(axis=1)
    recall = per_class_recall(cm)[support > 0]
    recall = np.where(recall > 0, recall, correction)
    return float(np.exp(np.log(recall).mean()))


def macro_f1(y_true, y_pred, num_classes=None):
    """Macro-averaged F1 over classes present in y_true."""
    cm = confusion_matrix(y_true, y_pred, num_classes)
    support = cm.sum(axis=1)
    recall = per_class_recall(cm)
    precision = per_class_precision(cm)
    denom = precision + recall
    with np.errstate(divide="ignore", invalid="ignore"):
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return float(f1[support > 0].mean())


def accuracy(y_true, y_pred):
    """Plain (skew-sensitive) accuracy."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return float((y_true == y_pred).mean())


def evaluate_predictions(y_true, y_pred, num_classes=None):
    """Return the paper's metric triple as a dict: BAC, GM, FM."""
    return {
        "bac": balanced_accuracy(y_true, y_pred, num_classes),
        "gm": geometric_mean(y_true, y_pred, num_classes),
        "fm": macro_f1(y_true, y_pred, num_classes),
    }


def classification_report(y_true, y_pred, num_classes=None):
    """Human-readable per-class report plus the headline metrics."""
    cm = confusion_matrix(y_true, y_pred, num_classes)
    recall = per_class_recall(cm)
    precision = per_class_precision(cm)
    support = cm.sum(axis=1)
    lines = ["class  support  recall  precision"]
    for c in range(cm.shape[0]):
        lines.append(
            "%5d  %7d  %6.3f  %9.3f" % (c, support[c], recall[c], precision[c])
        )
    metrics = evaluate_predictions(y_true, y_pred, num_classes)
    lines.append(
        "BAC=%.4f  GM=%.4f  FM=%.4f" % (metrics["bac"], metrics["gm"], metrics["fm"])
    )
    return "\n".join(lines)
