"""Composite differentiable functions: softmax family, one-hot, dropout.

These are implemented either as numerically-stable primitives with
hand-written backward passes (softmax, log_softmax) or as graph
compositions of `Tensor` primitives.  The fused kernels at the bottom
(:func:`linear_relu`, :func:`folded_batchnorm`) collapse multi-op
graph fragments from the training hot path into single tape nodes.
"""

from __future__ import annotations

import numpy as np

from .._rng import fresh_generator
from ._dtype import default_dtype
from .tensor import Tensor, _tape1, _tape_many

__all__ = [
    "softmax",
    "log_softmax",
    "one_hot",
    "dropout",
    "linear",
    "linear_relu",
    "folded_batchnorm",
    "batchnorm_train",
    "nll_loss",
]


def softmax(x, axis=-1):
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)
    if not _tape1(x):
        return Tensor(out)

    def backward(g):
        # dL/dx = s * (g - sum(g * s))
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return Tensor._from_op(out, (x,), backward)


def log_softmax(x, axis=-1):
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_norm
    if not _tape1(x):
        return Tensor(out)
    soft = np.exp(out)

    def backward(g):
        return (g - soft * g.sum(axis=axis, keepdims=True),)

    return Tensor._from_op(out, (x,), backward)


def one_hot(labels, num_classes, dtype=None):
    """Return a detached one-hot (N, num_classes) Tensor for integer labels.

    ``dtype`` defaults to the substrate :func:`default_dtype` — a fixed
    float64 default here used to silently promote every loss computation.
    """
    labels = labels.data if isinstance(labels, Tensor) else np.asarray(labels)
    labels = labels.astype(np.int64)
    out = np.zeros(
        (labels.shape[0], num_classes),
        dtype=default_dtype() if dtype is None else dtype,
    )
    out[np.arange(labels.shape[0]), labels] = 1.0
    return Tensor(out)


def dropout(x, p=0.5, training=True, rng=None):
    """Inverted dropout: scales surviving activations by 1/(1-p)."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else fresh_generator()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype)
    mask *= 1.0 / (1.0 - p)
    out = x.data * mask
    if not _tape1(x):
        return Tensor(out)

    def backward(g):
        return (g * mask,)

    return Tensor._from_op(out, (x,), backward)


def linear(x, weight, bias=None):
    """Affine map ``x @ weight.T + bias`` matching torch.nn.functional.linear."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def linear_relu(x, weight, bias=None):
    """Fused ``relu(x @ weight.T + bias)`` as a single tape node.

    Numerically identical to the unfused composition (same kernels in
    the same order) but allocates one output and one backward closure
    instead of three of each.  ``x`` must be 2D (N, in_features);
    higher-rank inputs fall back to the unfused composition.
    """
    if x.ndim != 2:
        return linear(x, weight, bias).relu()
    pre = x.data @ weight.data.T
    if bias is not None:
        pre += bias.data
    mask = pre > 0
    out = pre * mask
    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _tape_many(parents):
        return Tensor(out)

    def backward(g):
        gh = g * mask
        grad_x = gh @ weight.data if x.requires_grad else None
        grad_w = gh.T @ x.data if weight.requires_grad else None
        if bias is None:
            return (grad_x, grad_w)
        grad_b = gh.sum(axis=0) if bias.requires_grad else None
        return (grad_x, grad_w, grad_b)

    return Tensor._from_op(out, parents, backward)


def folded_batchnorm(x, weight, bias, scale, shift, mean, inv_var_sqrt, axes):
    """Eval-mode batch norm with the affine transform pre-folded.

    Computes ``x * scale + shift`` in two kernels, where ``scale = w /
    sqrt(running_var + eps)`` and ``shift = b - running_mean * scale``
    are precomputed (and cached by the layer).  ``mean``/``inv_var_sqrt``
    are the broadcast-shaped running statistics, needed only for the
    weight gradient; ``axes`` are the reduction axes for the affine
    parameter gradients.

    Gradients match the unfused eval path exactly:
    ``dx = g * scale``, ``dw = sum(g * (x - mean) * inv_std)``,
    ``db = sum(g)``.
    """
    out = x.data * scale
    out += shift
    parents = (x, weight, bias)
    if not _tape_many(parents):
        return Tensor(out)

    def backward(g):
        grad_x = g * scale if x.requires_grad else None
        grad_w = (
            (g * (x.data - mean) * inv_var_sqrt).sum(axis=axes)
            if weight.requires_grad else None
        )
        grad_b = g.sum(axis=axes) if bias.requires_grad else None
        return (grad_x, grad_w, grad_b)

    return Tensor._from_op(out, parents, backward)


def batchnorm_train(x, weight, bias, axes, shape, eps):
    """Training-mode batch norm fused into one tape node.

    Normalizes with the batch statistics and differentiates *through*
    them — the hand-written backward is the classic three-term
    batch-norm gradient — replacing the ~10-node graph the unfused
    formulation records per call.  Returns ``(out, mean, var)`` where
    ``mean``/``var`` are the keepdims-shaped batch statistics as plain
    arrays (biased variance), so the layer can update its running
    buffers without recomputing the reductions.
    """
    xd = x.data
    mean = xd.mean(axis=axes, keepdims=True)
    centered = xd - mean
    var = np.mean(centered * centered, axis=axes, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = centered * inv_std
    w = weight.data.reshape(shape)
    out = x_hat * w
    out += bias.data.reshape(shape)
    parents = (x, weight, bias)
    if not _tape_many(parents):
        return Tensor(out), mean, var

    m = xd.size // weight.data.size  # elements reduced per channel

    def backward(g):
        if x.requires_grad:
            dxhat = g * w
            grad_x = (inv_std / m) * (
                m * dxhat
                - dxhat.sum(axis=axes, keepdims=True)
                - x_hat * (dxhat * x_hat).sum(axis=axes, keepdims=True)
            )
        else:
            grad_x = None
        grad_w = (
            (g * x_hat).sum(axis=axes) if weight.requires_grad else None
        )
        grad_b = g.sum(axis=axes) if bias.requires_grad else None
        return (grad_x, grad_w, grad_b)

    return Tensor._from_op(out, parents, backward), mean, var


def nll_loss(log_probs, targets, weight=None, reduction="mean"):
    """Negative log-likelihood over log-probabilities.

    Parameters
    ----------
    log_probs:
        (N, C) tensor of log-probabilities.
    targets:
        integer array / Tensor of shape (N,).
    weight:
        optional per-class weights (C,), numpy array or Tensor.
    reduction:
        "mean" (weighted mean as in PyTorch), "sum", or "none".
    """
    t = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    t = t.astype(np.int64)
    n = log_probs.shape[0]
    w = None
    if weight is not None:
        w = weight.data if isinstance(weight, Tensor) else np.asarray(weight)
        sample_w = w[t]
    else:
        sample_w = np.ones(n, dtype=log_probs.dtype)

    picked = log_probs.data[np.arange(n), t]
    losses = -picked * sample_w

    if reduction == "none":
        denom = None
        out_data = losses
    elif reduction == "sum":
        denom = 1.0
        out_data = losses.sum()
    elif reduction == "mean":
        denom = sample_w.sum()
        out_data = losses.sum() / denom
    else:
        raise ValueError("unknown reduction %r" % reduction)

    def backward(g):
        grad = np.zeros_like(log_probs.data)
        if reduction == "none":
            grad[np.arange(n), t] = -sample_w * g
        elif reduction == "sum":
            grad[np.arange(n), t] = -sample_w * g
        else:
            grad[np.arange(n), t] = -sample_w * (g / denom)
        return (grad,)

    if _tape1(log_probs):
        return Tensor._from_op(out_data, (log_probs,), backward)
    return Tensor(out_data)
