"""Composite differentiable functions: softmax family, one-hot, dropout.

These are implemented either as numerically-stable primitives with
hand-written backward passes (softmax, log_softmax) or as graph
compositions of `Tensor` primitives.
"""

from __future__ import annotations

import numpy as np

from .._rng import fresh_generator
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "softmax",
    "log_softmax",
    "one_hot",
    "dropout",
    "linear",
    "nll_loss",
]


def softmax(x, axis=-1):
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g):
        # dL/dx = s * (g - sum(g * s))
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return Tensor._from_op(out, (x,), backward)


def log_softmax(x, axis=-1):
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_norm
    soft = np.exp(out)

    def backward(g):
        return (g - soft * g.sum(axis=axis, keepdims=True),)

    return Tensor._from_op(out, (x,), backward)


def one_hot(labels, num_classes, dtype=np.float64):
    """Return a detached one-hot (N, num_classes) Tensor for integer labels."""
    labels = labels.data if isinstance(labels, Tensor) else np.asarray(labels)
    labels = labels.astype(np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return Tensor(out)


def dropout(x, p=0.5, training=True, rng=None):
    """Inverted dropout: scales surviving activations by 1/(1-p)."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else fresh_generator()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(g):
        return (g * mask,)

    return Tensor._from_op(x.data * mask, (x,), backward)


def linear(x, weight, bias=None):
    """Affine map ``x @ weight.T + bias`` matching torch.nn.functional.linear."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def nll_loss(log_probs, targets, weight=None, reduction="mean"):
    """Negative log-likelihood over log-probabilities.

    Parameters
    ----------
    log_probs:
        (N, C) tensor of log-probabilities.
    targets:
        integer array / Tensor of shape (N,).
    weight:
        optional per-class weights (C,), numpy array or Tensor.
    reduction:
        "mean" (weighted mean as in PyTorch), "sum", or "none".
    """
    t = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    t = t.astype(np.int64)
    n = log_probs.shape[0]
    w = None
    if weight is not None:
        w = weight.data if isinstance(weight, Tensor) else np.asarray(weight)
        sample_w = w[t]
    else:
        sample_w = np.ones(n, dtype=log_probs.dtype)

    picked = log_probs.data[np.arange(n), t]
    losses = -picked * sample_w

    if reduction == "none":
        denom = None
        out_data = losses
    elif reduction == "sum":
        denom = 1.0
        out_data = losses.sum()
    elif reduction == "mean":
        denom = sample_w.sum()
        out_data = losses.sum() / denom
    else:
        raise ValueError("unknown reduction %r" % reduction)

    def backward(g):
        grad = np.zeros_like(log_probs.data)
        if reduction == "none":
            grad[np.arange(n), t] = -sample_w * g
        elif reduction == "sum":
            grad[np.arange(n), t] = -sample_w * g
        else:
            grad[np.arange(n), t] = -sample_w * (g / denom)
        return (grad,)

    if is_grad_enabled() and log_probs.requires_grad:
        return Tensor._from_op(out_data, (log_probs,), backward)
    return Tensor(out_data)
