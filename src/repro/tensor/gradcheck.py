"""Numerical gradient checking for the autograd engine.

Used by the test-suite to verify every primitive op against central
finite differences.
"""

from __future__ import annotations

import numpy as np

__all__ = ["numeric_grad", "check_gradients"]


def numeric_grad(fn, inputs, wrt, eps=1e-5):
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. ``inputs[wrt]``.

    ``fn`` must accept the raw Tensors and return a scalar Tensor.
    """
    x = inputs[wrt]
    grad = np.zeros_like(x.data, dtype=np.float64)
    flat = x.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(fn(*inputs).data)
        flat[i] = orig - eps
        lo = float(fn(*inputs).data)
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(fn, inputs, eps=1e-5, atol=1e-4, rtol=1e-3):
    """Compare analytic vs numeric gradients for all grad-requiring inputs.

    Returns True on success; raises AssertionError with diagnostics on
    mismatch.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar output")
    out.backward()
    for idx, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        num = numeric_grad(fn, inputs, idx, eps=eps)
        ana = t.grad
        if ana is None:
            raise AssertionError("input %d received no gradient" % idx)
        if not np.allclose(ana, num, atol=atol, rtol=rtol):
            worst = np.abs(ana - num).max()
            raise AssertionError(
                "gradient mismatch on input %d (max abs err %.3g)" % (idx, worst)
            )
    return True
