"""Numerical gradient checking for the autograd engine.

Used by the test-suite to verify every primitive op against central
finite differences.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "numeric_grad",
    "check_gradients",
    "gradcheck_conv2d_nonsquare",
    "gradcheck_batchnorm_eval",
    "gradcheck_linear_relu",
    "gradcheck_astype_cast",
    "check_inplace_mutation_detected",
    "run_extended_checks",
]


def numeric_grad(fn, inputs, wrt, eps=1e-5):
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. ``inputs[wrt]``.

    ``fn`` must accept the raw Tensors and return a scalar Tensor.
    """
    x = inputs[wrt]
    grad = np.zeros_like(x.data, dtype=np.float64)
    flat = x.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(fn(*inputs).data)
        flat[i] = orig - eps
        lo = float(fn(*inputs).data)
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(fn, inputs, eps=1e-5, atol=1e-4, rtol=1e-3):
    """Compare analytic vs numeric gradients for all grad-requiring inputs.

    Returns True on success; raises AssertionError with diagnostics on
    mismatch.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar output")
    out.backward()
    for idx, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        num = numeric_grad(fn, inputs, idx, eps=eps)
        ana = t.grad
        if ana is None:
            raise AssertionError("input %d received no gradient" % idx)
        if not np.allclose(ana, num, atol=atol, rtol=rtol):
            worst = np.abs(ana - num).max()
            raise AssertionError(
                "gradient mismatch on input %d (max abs err %.3g)" % (idx, worst)
            )
    return True


# ----------------------------------------------------------------------
# Sanitizer-aware extended checks
# ----------------------------------------------------------------------
# These run the numeric comparison *inside* detect_anomaly(), so besides
# validating the analytic gradients they also exercise the tape
# sanitizer's NaN / mutation / dtype instrumentation on realistic ops.


def gradcheck_conv2d_nonsquare(seed=0):
    """conv2d with a non-square (2x3) kernel, stride 2, padding 1."""
    from ..analysis.sanitizer import detect_anomaly
    from .conv import conv2d
    from .tensor import Tensor

    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((2, 2, 5, 4)), requires_grad=True)
    w = Tensor(0.5 * rng.standard_normal((3, 2, 2, 3)), requires_grad=True)
    b = Tensor(rng.standard_normal(3), requires_grad=True)

    def fn(x, w, b):
        return conv2d(x, w, b, stride=2, padding=1).sum()

    with detect_anomaly():
        return check_gradients(fn, [x, w, b])


def gradcheck_batchnorm_eval(seed=0):
    """BatchNorm2d in eval mode (folded running-stats path) under the sanitizer.

    Eval-mode batchnorm runs the fused folded-affine kernel: ``out =
    x * scale + shift`` with scale/shift cached from running stats, so
    d out / d x must be exactly gamma / sqrt(running_var + eps).  The
    affine parameters are perturbed in place by the numeric check,
    which also exercises the folded cache's snapshot invalidation.

    Runs under a float64 default dtype: float32 parameters round the
    1e-5 central-difference perturbations into the noise floor.
    """
    from ..analysis.sanitizer import detect_anomaly
    from ..nn.layers import BatchNorm2d
    from ._dtype import using_default_dtype
    from .tensor import Tensor

    rng = np.random.default_rng(seed)
    with using_default_dtype(np.float64):
        bn = BatchNorm2d(3)
        # Warm up the running statistics with a couple of training batches.
        for _ in range(2):
            bn(Tensor(rng.standard_normal((4, 3, 2, 2)) * 2.0 + 1.0))
        bn.eval()
        x = Tensor(rng.standard_normal((2, 3, 2, 2)), requires_grad=True)

        def fn(x, w, b):
            return (bn(x) * bn(x)).sum()

        with detect_anomaly():
            return check_gradients(fn, [x, bn.weight, bn.bias])


def gradcheck_linear_relu(seed=0):
    """Fused ``linear_relu`` against central differences, for all inputs.

    The fused kernel writes its own backward (mask-gated matmuls); this
    validates it against finite differences of the scalar loss
    ``sum(linear_relu(x, w, b)^2)`` for x, w and b, under the sanitizer.
    """
    from ..analysis.sanitizer import detect_anomaly
    from ._dtype import using_default_dtype
    from .functional import linear_relu
    from .tensor import Tensor

    rng = np.random.default_rng(seed)
    with using_default_dtype(np.float64):
        x = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        w = Tensor(0.5 * rng.standard_normal((3, 5)), requires_grad=True)
        b = Tensor(0.3 * rng.standard_normal(3), requires_grad=True)

        def fn(x, w, b):
            out = linear_relu(x, w, b)
            return (out * out).sum()

        with detect_anomaly():
            return check_gradients(fn, [x, w, b])


def gradcheck_astype_cast(seed=0):
    """Differentiable dtype cast: gradient flows through a float32 cast.

    ``astype`` used to return a detached tensor, silently cutting the
    tape; this asserts the cast node backpropagates (with the gradient
    cast back to the source dtype) and produces the analytic value.
    """
    from ..analysis.sanitizer import detect_anomaly
    from .tensor import Tensor

    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
    with detect_anomaly():
        y = x.astype(np.float32)
        (y * y).sum().backward()
    if x.grad is None:
        raise AssertionError("astype detached the tape: no gradient reached x")
    if x.grad.dtype != np.float64:
        raise AssertionError(
            "astype backward did not cast the gradient back to float64"
        )
    expected = (2.0 * x.data.astype(np.float32)).astype(np.float64)
    if not np.allclose(x.grad, expected, atol=1e-6):
        raise AssertionError("astype gradient mismatch")
    return True


def check_inplace_mutation_detected(seed=0):
    """Assert the version-counter check fires on in-place mutation.

    An array is recorded on the tape, then mutated through numpy before
    ``backward`` runs; the sanitizer must raise ``AnomalyError`` rather
    than silently differentiate against the mutated buffer.
    """
    from ..analysis.sanitizer import AnomalyError, detect_anomaly
    from .tensor import Tensor

    rng = np.random.default_rng(seed)
    with detect_anomaly():
        a = Tensor(rng.standard_normal(4), requires_grad=True)
        b = a * 3.0
        loss = b.sum()
        a.data[0] = 42.0  # deliberate corruption of a taped buffer
        try:
            loss.backward()
        except AnomalyError:
            return True
    raise AssertionError(
        "in-place mutation of a taped array was not detected by the sanitizer"
    )


def run_extended_checks(seed=0):
    """Run every extended check; returns the list of check names run."""
    gradcheck_conv2d_nonsquare(seed)
    gradcheck_batchnorm_eval(seed)
    gradcheck_linear_relu(seed)
    gradcheck_astype_cast(seed)
    check_inplace_mutation_detected(seed)
    return [
        "gradcheck_conv2d_nonsquare",
        "gradcheck_batchnorm_eval",
        "gradcheck_linear_relu",
        "gradcheck_astype_cast",
        "check_inplace_mutation_detected",
    ]
