"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate for the whole reproduction: a
tape-based autograd engine in the style of PyTorch's eager mode.  Every
``Tensor`` wraps a numpy array; operations build a DAG of tensors, and
``Tensor.backward`` runs reverse-mode differentiation over a topological
ordering of that DAG.

The engine supports full numpy broadcasting.  Gradients flowing into a
broadcast operand are reduced back to the operand's shape by
:func:`_unbroadcast`.

Only float64/float32 data participates in differentiation; integer tensors
(labels, indices) can be wrapped but must not require gradients.

Dtype policy
------------
Tensors are float32-by-default (see :mod:`repro.tensor._dtype`):

* Python scalars and lists become :func:`default_dtype` arrays.
* numpy floating arrays keep their dtype — a float64 array wrapped on
  purpose stays float64.
* float16 arrays are promoted to float32 (no half-precision kernels);
  the first promotion in a process emits a ``dtype.float16_promoted``
  telemetry event so traced runs record that it happened.
* an explicit ``dtype=`` argument always wins.

Fast path
---------
When no gradient can flow — ``no_grad()``, or no operand requires grad —
ops skip the tape entirely: no backward closure is allocated and no
graph edges are recorded.  The numerical result is byte-identical to the
taped path (same kernels, same order).  The fast path is disabled while
``detect_anomaly()`` or the tape profiler is active, since both hook op
creation.
"""

from __future__ import annotations

import numpy as np

from ..analysis import sanitizer as _sanitizer
from ..analysis.sanitizer import _STATE as _ANOMALY
from ..telemetry import profiler as _profiler
from ..telemetry.clock import monotonic as _monotonic
from ..telemetry.profiler import _STATE as _PROFILE
from ._dtype import default_dtype, set_default_dtype, using_default_dtype

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "where",
    "default_dtype",
    "set_default_dtype",
    "using_default_dtype",
]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient tracking.

    Mirrors ``torch.no_grad``: inside the block, newly created tensors do
    not record backward functions, which makes inference cheap.  Ops take
    the no-tape fast path — no backward closures, no graph edges — and
    produce byte-identical values to the taped path.
    """

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled():
    """Return True when operations should record backward functions."""
    return _GRAD_ENABLED


def _tape1(a):
    """Should a one-operand op record itself on the tape?"""
    if _ANOMALY.enabled or _PROFILE.enabled:
        return True
    return _GRAD_ENABLED and a.requires_grad


def _tape2(a, b):
    """Should a two-operand op record itself on the tape?"""
    if _ANOMALY.enabled or _PROFILE.enabled:
        return True
    return _GRAD_ENABLED and (a.requires_grad or b.requires_grad)


def _tape_many(tensors):
    """Should an n-ary op record itself on the tape?"""
    if _ANOMALY.enabled or _PROFILE.enabled:
        return True
    return _GRAD_ENABLED and any(t.requires_grad for t in tensors)


def _unbroadcast(grad, shape):
    """Reduce ``grad`` so that it matches ``shape``.

    numpy broadcasting may have expanded an operand along leading axes or
    along axes of size one; the corresponding gradient must be summed over
    those axes to produce the gradient with respect to the original
    operand.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


_FLOAT16_PROMOTED = False


def _note_float16_promotion(arr):
    """Record (once per process) that a float16 input was widened."""
    global _FLOAT16_PROMOTED
    if _FLOAT16_PROMOTED:
        return
    _FLOAT16_PROMOTED = True
    from ..telemetry import get_tracer

    get_tracer().event(
        "dtype.float16_promoted",
        to=str(np.dtype(np.float32)),
        shape=list(arr.shape),
    )


def _as_array(data, dtype=None):
    if isinstance(data, Tensor):
        raise TypeError("cannot build a Tensor from a Tensor; use .detach()")
    if dtype is not None:
        return np.asarray(data, dtype=dtype)
    if isinstance(data, (np.ndarray, np.generic)):
        # ndarrays and numpy scalars carry a dtype: honor it (a float64
        # reduction of a float64 tensor must stay float64), except for
        # float16, which the substrate silently widens.
        arr = np.asarray(data)
        if arr.dtype == np.float16:
            _note_float16_promotion(arr)
            return arr.astype(np.float32)
        return arr
    arr = np.asarray(data)
    if arr.dtype == np.float64:
        # Python floats / lists land here; honor the substrate default.
        return arr.astype(default_dtype(), copy=False)
    if arr.dtype == np.float16:
        _note_float16_promotion(arr)
        return arr.astype(np.float32)
    return arr


class Tensor:
    """A numpy-backed tensor that records operations for autograd.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.
    requires_grad:
        When True (and grad mode is enabled), operations on this tensor
        are recorded so that ``backward`` can compute ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name",
                 "_anomaly")
    __array_priority__ = 100  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(self, data, requires_grad=False, dtype=None):
        self.data = _as_array(data, dtype)
        if requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise TypeError(
                "only floating-point tensors can require gradients, got %s"
                % self.data.dtype
            )
        self.requires_grad = bool(requires_grad)
        self.grad = None
        self._backward = None
        self._prev = ()
        self.name = None
        self._anomaly = None  # provenance record set by detect_anomaly()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self):
        return self.transpose()

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return "Tensor(%s%s)" % (np.array2string(self.data, precision=4), grad_flag)

    def numpy(self):
        """Return the underlying numpy array (shared memory, no copy)."""
        return self.data

    def item(self):
        return self.data.item()

    def detach(self):
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self):
        """Return a graph-detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype):
        """Differentiable dtype cast.

        Casts to a floating dtype stay on the tape: backward casts the
        gradient back to the source dtype, so a mid-graph float64 ↔
        float32 cast no longer silently detaches everything upstream.
        Casts to non-float dtypes (ints, bool) cannot carry gradients
        and return a detached tensor.
        """
        dtype = np.dtype(dtype)
        out_data = self.data.astype(dtype)
        if dtype.kind != "f" or not _tape1(self):
            return Tensor(out_data)
        src_dtype = self.data.dtype

        def backward(g):
            return (g.astype(src_dtype, copy=False),)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @classmethod
    def _from_op(cls, data, parents, backward):
        """Build a result tensor for an op with the given backward closure.

        ``backward`` receives the upstream gradient (numpy array) and must
        return one numpy gradient (or None) per parent, in order.
        """
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            out._backward = backward
            out._prev = tuple(parents)
        if _ANOMALY.enabled:
            _sanitizer._on_op(out, parents, backward)
        if _PROFILE.enabled:
            _profiler._on_forward_op(backward)
        return out

    def backward(self, grad=None):
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).
        Gradients accumulate into ``.grad`` of every tensor that requires
        them, matching PyTorch semantics.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    "gradient shape %s does not match tensor shape %s"
                    % (grad.shape, self.data.shape)
                )
        if _ANOMALY.enabled:
            _sanitizer._on_seed(self, grad)

        topo = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is not None:
                if _ANOMALY.enabled:
                    _sanitizer._before_node_backward(node)
                if _PROFILE.enabled:
                    t0 = _monotonic()
                    parent_grads = node._backward(node_grad)
                    _profiler._on_backward_op(node._backward, _monotonic() - t0)
                else:
                    parent_grads = node._backward(node_grad)
                if _ANOMALY.enabled:
                    _sanitizer._after_node_backward(node, parent_grads)
                for parent, pgrad in zip(node._prev, parent_grads):
                    if pgrad is None or not parent.requires_grad:
                        continue
                    key = id(parent)
                    if key in grads:
                        grads[key] = grads[key] + pgrad
                    else:
                        grads[key] = pgrad
            # Leaf (or intermediate explicitly retaining grad): accumulate.
            if node._backward is None:
                if _ANOMALY.enabled:
                    _sanitizer._on_accumulate(node, node_grad)
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad

    def zero_grad(self):
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other):
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data
        if not _tape2(self, other):
            return Tensor(out_data)

        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(g, other.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data
        if not _tape2(self, other):
            return Tensor(out_data)

        def backward(g):
            return (
                _unbroadcast(g * other.data, self.shape)
                if self.requires_grad else None,
                _unbroadcast(g * self.data, other.shape)
                if other.requires_grad else None,
            )

        return Tensor._from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __sub__(self, other):
        other = self._coerce(other)
        out_data = self.data - other.data
        if not _tape2(self, other):
            return Tensor(out_data)

        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(-g, other.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    def __rsub__(self, other):
        return self._coerce(other) - self

    def __neg__(self):
        out_data = -self.data
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            return (-g,)

        return Tensor._from_op(out_data, (self,), backward)

    def __truediv__(self, other):
        other = self._coerce(other)
        out_data = self.data / other.data
        if not _tape2(self, other):
            return Tensor(out_data)

        def backward(g):
            return (
                _unbroadcast(g / other.data, self.shape)
                if self.requires_grad else None,
                _unbroadcast(-g * self.data / (other.data ** 2), other.shape)
                if other.requires_grad else None,
            )

        return Tensor._from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __pow__(self, exponent):
        if isinstance(exponent, Tensor):
            base, expo = self, exponent
            out_data = base.data ** expo.data
            if not _tape2(base, expo):
                return Tensor(out_data)

            def backward(g):
                grad_base = g * expo.data * base.data ** (expo.data - 1)
                # d/de (b**e) = b**e * ln b; guard against log of <= 0.
                safe = np.where(base.data > 0, base.data, 1.0)
                grad_expo = g * out_data * np.log(safe)
                return (
                    _unbroadcast(grad_base, base.shape),
                    _unbroadcast(grad_expo, expo.shape),
                )

            return Tensor._from_op(out_data, (base, expo), backward)

        out_data = self.data ** exponent
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            return (g * exponent * self.data ** (exponent - 1),)

        return Tensor._from_op(out_data, (self,), backward)

    def __matmul__(self, other):
        other = self._coerce(other)
        out_data = self.data @ other.data
        if not _tape2(self, other):
            return Tensor(out_data)

        def backward(g):
            need_a = self.requires_grad
            need_b = other.requires_grad
            if self.ndim == 1 and other.ndim == 1:
                return (g * other.data if need_a else None,
                        g * self.data if need_b else None)
            if self.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                return (g @ other.data.T if need_a else None,
                        np.outer(self.data, g) if need_b else None)
            if other.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                return (np.outer(g, other.data) if need_a else None,
                        self.data.T @ g if need_b else None)
            ga = gb = None
            if need_a:
                ga = _unbroadcast(g @ np.swapaxes(other.data, -1, -2), self.shape)
            if need_b:
                gb = _unbroadcast(np.swapaxes(self.data, -1, -2) @ g, other.shape)
            return (ga, gb)

        return Tensor._from_op(out_data, (self, other), backward)

    # Comparison operators return detached boolean/float arrays.
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data > other)

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data < other)

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data >= other)

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data <= other)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self):
        out_data = np.exp(self.data)
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            return (g * out_data,)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self):
        out_data = np.log(self.data)
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            return (g / self.data,)

        return Tensor._from_op(out_data, (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            return (g * 0.5 / out_data,)

        return Tensor._from_op(out_data, (self,), backward)

    def abs(self):
        out_data = np.abs(self.data)
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            return (g * np.sign(self.data),)

        return Tensor._from_op(out_data, (self,), backward)

    def relu(self):
        if not _tape1(self):
            return Tensor(self.data * (self.data > 0))
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g):
            return (g * mask,)

        return Tensor._from_op(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            return (g * out_data * (1.0 - out_data),)

        return Tensor._from_op(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            return (g * (1.0 - out_data ** 2),)

        return Tensor._from_op(out_data, (self,), backward)

    def leaky_relu(self, negative_slope=0.01):
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)
        out_data = self.data * scale
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            return (g * scale,)

        return Tensor._from_op(out_data, (self,), backward)

    def clip(self, low, high):
        """Clamp values; gradient is passed only where values were inside."""
        out_data = np.clip(self.data, low, high)
        if not _tape1(self):
            return Tensor(out_data)
        mask = (self.data >= low) & (self.data <= high)

        def backward(g):
            return (g * mask,)

        return Tensor._from_op(out_data, (self,), backward)

    def maximum(self, other):
        other = self._coerce(other)
        out_data = np.maximum(self.data, other.data)
        if not _tape2(self, other):
            return Tensor(out_data)
        pick_self = self.data >= other.data

        def backward(g):
            return (
                _unbroadcast(g * pick_self, self.shape),
                _unbroadcast(g * ~pick_self, other.shape),
            )

        return Tensor._from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            if axis is None:
                grad = np.broadcast_to(g, self.shape)
                if grad.dtype != self.data.dtype:
                    grad = grad.astype(self.data.dtype)
                return (grad,)
            g_exp = g
            if not keepdims:
                g_exp = np.expand_dims(g, axis)
            return (np.broadcast_to(g_exp, self.shape),)

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def var(self, axis=None, keepdims=False):
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims=False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            if axis is None:
                mask = self.data == out_data
                denom = mask.sum()
                return (mask * (g / denom),)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = self.data == expanded
            denom = mask.sum(axis=axis, keepdims=True)
            g_exp = g if keepdims else np.expand_dims(g, axis)
            return (mask * (g_exp / denom),)

        return Tensor._from_op(out_data, (self,), backward)

    def min(self, axis=None, keepdims=False):
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not _tape1(self):
            return Tensor(out_data)
        orig_shape = self.shape

        def backward(g):
            return (g.reshape(orig_shape),)

        return Tensor._from_op(out_data, (self,), backward)

    def flatten(self, start_dim=1):
        lead = self.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        if not _tape1(self):
            return Tensor(out_data)
        inverse = np.argsort(axes)

        def backward(g):
            return (g.transpose(inverse),)

        return Tensor._from_op(out_data, (self,), backward)

    def __getitem__(self, idx):
        if isinstance(idx, Tensor):
            idx = idx.data
        out_data = self.data[idx]
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            grad = np.zeros_like(self.data)
            np.add.at(grad, idx, g)
            return (grad,)

        return Tensor._from_op(out_data, (self,), backward)

    def pad2d(self, padding):
        """Zero-pad the last two (spatial) axes of an NCHW tensor."""
        if self.ndim != 4:
            raise ValueError("pad2d expects an NCHW tensor")
        p = padding
        out_data = np.pad(self.data, ((0, 0), (0, 0), (p, p), (p, p)))
        if not _tape1(self):
            return Tensor(out_data)

        def backward(g):
            return (g[:, :, p:-p or None, p:-p or None],)

        return Tensor._from_op(out_data, (self,), backward)


def concatenate(tensors, axis=0):
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not _tape_many(tensors):
        return Tensor(out_data)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        grads = []
        for i in range(len(tensors)):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(slicer)])
        return tuple(grads)

    return Tensor._from_op(out_data, tuple(tensors), backward)


def stack(tensors, axis=0):
    """Stack tensors along a new axis with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    if not _tape_many(tensors):
        return Tensor(out_data)

    def backward(g):
        moved = np.moveaxis(g, axis, 0)
        return tuple(moved[i] for i in range(len(tensors)))

    return Tensor._from_op(out_data, tuple(tensors), backward)


def where(condition, a, b):
    """Differentiable ``np.where``; condition is treated as constant."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    a = a if isinstance(a, Tensor) else Tensor(np.asarray(a))
    b = b if isinstance(b, Tensor) else Tensor(np.asarray(b))
    out_data = np.where(cond, a.data, b.data)
    if not _tape2(a, b):
        return Tensor(out_data)

    def backward(g):
        return (
            _unbroadcast(g * cond, a.shape),
            _unbroadcast(g * ~cond if cond.dtype == bool else g * (1 - cond), b.shape),
        )

    return Tensor._from_op(out_data, (a, b), backward)
