"""Convolution and pooling primitives built on the autograd engine.

Convolutions are implemented with the classic im2col/col2im lowering:
the input is unfolded into a matrix of receptive-field columns so that
the convolution becomes a single matrix multiply.  On CPU with numpy this
is by far the fastest formulation, and its backward pass (col2im) is an
exact transpose of the unfolding.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv_transpose2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
]


def _out_size(size, kernel, stride, padding):
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x, kernel, stride=1, padding=0):
    """Unfold an (N, C, H, W) array into (N*OH*OW, C*KH*KW) columns.

    Pure numpy helper; used by both the forward and (via its transpose,
    :func:`col2im`) the backward pass of :func:`conv2d`.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    oh = _out_size(h, kh, stride, padding)
    ow = _out_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    strides = x.strides
    shape = (n, c, oh, ow, kh, kw)
    new_strides = (
        strides[0],
        strides[1],
        strides[2] * stride,
        strides[3] * stride,
        strides[2],
        strides[3],
    )
    windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=new_strides)
    # (N, OH, OW, C, KH, KW) -> (N*OH*OW, C*KH*KW)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def col2im(cols, x_shape, kernel, stride=1, padding=0):
    """Fold gradient columns back to an (N, C, H, W) array.

    Exact adjoint of :func:`im2col`: overlapping windows accumulate.
    """
    n, c, h, w = x_shape
    kh, kw = kernel
    oh = _out_size(h, kh, stride, padding)
    ow = _out_size(w, kw, stride, padding)
    cols = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)

    hp, wp = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            out[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, :, :, i, j]
    if padding > 0:
        out = out[:, :, padding:-padding, padding:-padding]
    return out


def conv2d(x, weight, bias=None, stride=1, padding=0):
    """2D convolution (cross-correlation) over an NCHW tensor.

    Parameters
    ----------
    x:
        Input ``Tensor`` of shape (N, C_in, H, W).
    weight:
        Kernel ``Tensor`` of shape (C_out, C_in, KH, KW).
    bias:
        Optional ``Tensor`` of shape (C_out,).
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(
            "input channels %d do not match weight channels %d" % (c_in, c_in_w)
        )
    cols, oh, ow = im2col(x.data, (kh, kw), stride, padding)
    w_mat = weight.data.reshape(c_out, -1)
    out = cols @ w_mat.T  # (N*OH*OW, C_out)
    if bias is not None:
        out = out + bias.data
    out = out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g):
        # g: (N, C_out, OH, OW) -> (N*OH*OW, C_out)
        g_mat = g.transpose(0, 2, 3, 1).reshape(-1, c_out)
        grad_w = (g_mat.T @ cols).reshape(weight.shape)
        grad_cols = g_mat @ w_mat
        grad_x = col2im(grad_cols, x.shape, (kh, kw), stride, padding)
        if bias is None:
            return (grad_x, grad_w)
        grad_b = g_mat.sum(axis=0)
        return (grad_x, grad_w, grad_b)

    return Tensor._from_op(out, parents, backward)


def conv_transpose2d(x, weight, bias=None, stride=1, padding=0):
    """2D transposed convolution (the adjoint of :func:`conv2d`).

    Upsamples an (N, C_in, H, W) tensor; the output spatial size is
    ``(H - 1) * stride - 2 * padding + KH``.  The weight layout follows
    the PyTorch convention for transposed convs: (C_in, C_out, KH, KW).

    Implementation note: forward is exactly conv2d's input-gradient
    (col2im of the weight-projected columns), and the backward pass is
    conv2d's forward machinery — the two ops are adjoint by
    construction, which the test-suite verifies with an inner-product
    identity.
    """
    n, c_in, h, w = x.shape
    c_in_w, c_out, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(
            "input channels %d do not match weight channels %d" % (c_in, c_in_w)
        )
    oh = (h - 1) * stride - 2 * padding + kh
    ow = (w - 1) * stride - 2 * padding + kw
    if oh <= 0 or ow <= 0:
        raise ValueError("output size would be non-positive")

    # Treat x as the "gradient" flowing into a conv2d with the transposed
    # weight: cols = x @ w, then fold back to the (larger) output.
    x_mat = x.data.transpose(0, 2, 3, 1).reshape(-1, c_in)  # (N*H*W, C_in)
    w_mat = weight.data.reshape(c_in, -1)  # (C_in, C_out*KH*KW)
    cols = x_mat @ w_mat  # (N*H*W, C_out*KH*KW)
    out = col2im(cols, (n, c_out, oh, ow), (kh, kw), stride, padding)
    if bias is not None:
        out = out + bias.data[None, :, None, None]

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g):
        # dL/dx: run the adjoint (a plain convolution) over g.
        g_cols, _, _ = im2col(g, (kh, kw), stride, padding)
        grad_x_mat = g_cols @ w_mat.T  # (N*H*W, C_in)
        grad_x = grad_x_mat.reshape(n, h, w, c_in).transpose(0, 3, 1, 2)
        grad_w = (x_mat.T @ g_cols).reshape(weight.shape)
        if bias is None:
            return (grad_x, grad_w)
        grad_b = g.sum(axis=(0, 2, 3))
        return (grad_x, grad_w, grad_b)

    return Tensor._from_op(out, parents, backward)


def max_pool2d(x, kernel=2, stride=None):
    """Max pooling over non-overlapping (or strided) windows."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    cols, oh, ow = im2col(
        x.data.reshape(n * c, 1, h, w), (kernel, kernel), stride, 0
    )
    # cols: (N*C*OH*OW, K*K)
    arg = cols.argmax(axis=1)
    out = cols[np.arange(cols.shape[0]), arg]
    out = out.reshape(n, c, oh, ow)

    def backward(g):
        g_flat = g.reshape(-1)
        grad_cols = np.zeros_like(cols)
        grad_cols[np.arange(cols.shape[0]), arg] = g_flat
        grad_x = col2im(
            grad_cols, (n * c, 1, h, w), (kernel, kernel), stride, 0
        )
        return (grad_x.reshape(x.shape),)

    return Tensor._from_op(out, (x,), backward)


def avg_pool2d(x, kernel=2, stride=None):
    """Average pooling over spatial windows."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    cols, oh, ow = im2col(
        x.data.reshape(n * c, 1, h, w), (kernel, kernel), stride, 0
    )
    out = cols.mean(axis=1).reshape(n, c, oh, ow)
    k2 = kernel * kernel

    def backward(g):
        g_flat = g.reshape(-1, 1)
        grad_cols = np.broadcast_to(g_flat / k2, cols.shape).copy()
        grad_x = col2im(
            grad_cols, (n * c, 1, h, w), (kernel, kernel), stride, 0
        )
        return (grad_x.reshape(x.shape),)

    return Tensor._from_op(out, (x,), backward)


def global_avg_pool2d(x):
    """Average over all spatial positions: (N, C, H, W) -> (N, C).

    This is the pooling that produces the paper's *feature embeddings*
    (the output of the CNN's penultimate layer).
    """
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3))
    scale = 1.0 / (h * w)

    def backward(g):
        return (np.broadcast_to(g[:, :, None, None] * scale, x.shape).copy(),)

    return Tensor._from_op(out, (x,), backward)
