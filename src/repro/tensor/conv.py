"""Convolution and pooling primitives built on the autograd engine.

Convolutions are implemented with the classic im2col/col2im lowering:
the input is unfolded into a matrix of receptive-field columns so that
the convolution becomes a single matrix multiply.  On CPU with numpy this
is by far the fastest formulation, and its backward pass (col2im) is an
exact transpose of the unfolding.

Hot-path buffer reuse: the per-batch intermediates (padded inputs,
column matrices, backward gradient columns) come from the per-shape
scratch pool in :mod:`repro.tensor.pool`.  Only buffers whose lifetime
provably ends inside the op call are pooled — training-mode forward
columns escape into backward closures and stay heap-allocated, while
the no-grad forward path and the (serially executed) backward closures
reuse scratch freely.  Backward passes also skip whole gradient
computations for parents that don't require grad: the first conv layer
of a network never pays for col2im, since image batches are constants.
"""

from __future__ import annotations

import numpy as np

from .pool import scratch
from .tensor import Tensor, _tape1, _tape_many

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv_transpose2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
]


def _out_size(size, kernel, stride, padding):
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x, kernel, stride=1, padding=0, out=None):
    """Unfold an (N, C, H, W) array into (N*OH*OW, C*KH*KW) columns.

    Pure numpy helper; used by both the forward and (via its transpose,
    :func:`col2im`) the backward pass of :func:`conv2d`.  ``out``, when
    given, must be a C-contiguous (N*OH*OW, C*KH*KW) buffer the columns
    are written into (callers pass pool scratch on paths where the
    columns don't outlive the op).  Padding always uses pool scratch —
    the padded copy never escapes this function.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    oh = _out_size(h, kh, stride, padding)
    ow = _out_size(w, kw, stride, padding)
    if padding > 0:
        hp, wp = h + 2 * padding, w + 2 * padding
        padded = scratch("im2col.pad", (n, c, hp, wp), x.dtype)
        padded.fill(0.0)
        padded[:, :, padding:padding + h, padding:padding + w] = x
        x = padded

    strides = x.strides
    shape = (n, c, oh, ow, kh, kw)
    new_strides = (
        strides[0],
        strides[1],
        strides[2] * stride,
        strides[3] * stride,
        strides[2],
        strides[3],
    )
    windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=new_strides)
    # (N, OH, OW, C, KH, KW) -> (N*OH*OW, C*KH*KW)
    transposed = windows.transpose(0, 2, 3, 1, 4, 5)
    if out is None:
        cols = np.ascontiguousarray(transposed).reshape(
            n * oh * ow, c * kh * kw
        )
    else:
        np.copyto(out.reshape(n, oh, ow, c, kh, kw), transposed)
        cols = out
    return cols, oh, ow


def col2im(cols, x_shape, kernel, stride=1, padding=0):
    """Fold gradient columns back to an (N, C, H, W) array.

    Exact adjoint of :func:`im2col`: overlapping windows accumulate.
    The result is freshly allocated (it escapes to the caller).
    """
    n, c, h, w = x_shape
    kh, kw = kernel
    oh = _out_size(h, kh, stride, padding)
    ow = _out_size(w, kw, stride, padding)
    cols = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)

    hp, wp = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            out[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, :, :, i, j]
    if padding > 0:
        out = out[:, :, padding:-padding, padding:-padding]
    return out


def conv2d(x, weight, bias=None, stride=1, padding=0):
    """2D convolution (cross-correlation) over an NCHW tensor.

    Parameters
    ----------
    x:
        Input ``Tensor`` of shape (N, C_in, H, W).
    weight:
        Kernel ``Tensor`` of shape (C_out, C_in, KH, KW).
    bias:
        Optional ``Tensor`` of shape (C_out,).
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(
            "input channels %d do not match weight channels %d" % (c_in, c_in_w)
        )
    parents = (x, weight) if bias is None else (x, weight, bias)
    tape = _tape_many(parents)
    oh = _out_size(h, kh, stride, padding)
    ow = _out_size(w, kw, stride, padding)
    cols_shape = (n * oh * ow, c_in * kh * kw)
    if tape:
        # Columns are captured by the backward closure (grad_w needs them).
        cols, _, _ = im2col(x.data, (kh, kw), stride, padding)
    else:
        cols, _, _ = im2col(
            x.data, (kh, kw), stride, padding,
            out=scratch("conv2d.fwd.cols", cols_shape, x.data.dtype),
        )
    w_mat = weight.data.reshape(c_out, -1)
    out = cols @ w_mat.T  # (N*OH*OW, C_out)
    if bias is not None:
        out += bias.data
    out = out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)
    if not tape:
        return Tensor(out)

    def backward(g):
        # g: (N, C_out, OH, OW) -> (N*OH*OW, C_out); backward closures run
        # serially, so per-site scratch cannot alias a live buffer.
        g_mat = scratch("conv2d.bwd.gmat", (n * oh * ow, c_out), g.dtype)
        np.copyto(g_mat.reshape(n, oh, ow, c_out), g.transpose(0, 2, 3, 1))
        grad_w = (
            (g_mat.T @ cols).reshape(weight.shape)
            if weight.requires_grad else None
        )
        if x.requires_grad:
            grad_cols = np.matmul(
                g_mat, w_mat,
                out=scratch("conv2d.bwd.gcols", cols_shape, g.dtype),
            )
            grad_x = col2im(grad_cols, x.shape, (kh, kw), stride, padding)
        else:
            grad_x = None
        if bias is None:
            return (grad_x, grad_w)
        grad_b = g_mat.sum(axis=0) if bias.requires_grad else None
        return (grad_x, grad_w, grad_b)

    return Tensor._from_op(out, parents, backward)


def conv_transpose2d(x, weight, bias=None, stride=1, padding=0):
    """2D transposed convolution (the adjoint of :func:`conv2d`).

    Upsamples an (N, C_in, H, W) tensor; the output spatial size is
    ``(H - 1) * stride - 2 * padding + KH``.  The weight layout follows
    the PyTorch convention for transposed convs: (C_in, C_out, KH, KW).

    Implementation note: forward is exactly conv2d's input-gradient
    (col2im of the weight-projected columns), and the backward pass is
    conv2d's forward machinery — the two ops are adjoint by
    construction, which the test-suite verifies with an inner-product
    identity.
    """
    n, c_in, h, w = x.shape
    c_in_w, c_out, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(
            "input channels %d do not match weight channels %d" % (c_in, c_in_w)
        )
    oh = (h - 1) * stride - 2 * padding + kh
    ow = (w - 1) * stride - 2 * padding + kw
    if oh <= 0 or ow <= 0:
        raise ValueError("output size would be non-positive")

    parents = (x, weight) if bias is None else (x, weight, bias)
    tape = _tape_many(parents)

    # Treat x as the "gradient" flowing into a conv2d with the transposed
    # weight: cols = x @ w, then fold back to the (larger) output.
    w_mat = weight.data.reshape(c_in, -1)  # (C_in, C_out*KH*KW)
    if tape:
        # x_mat is captured by the backward closure (grad_w needs it).
        x_mat = np.ascontiguousarray(
            x.data.transpose(0, 2, 3, 1)
        ).reshape(-1, c_in)  # (N*H*W, C_in)
        cols = x_mat @ w_mat  # (N*H*W, C_out*KH*KW)
    else:
        x_mat = scratch("convT.fwd.xmat", (n * h * w, c_in), x.data.dtype)
        np.copyto(x_mat.reshape(n, h, w, c_in), x.data.transpose(0, 2, 3, 1))
        cols = np.matmul(
            x_mat, w_mat,
            out=scratch(
                "convT.fwd.cols", (n * h * w, c_out * kh * kw), x.data.dtype
            ),
        )
    out = col2im(cols, (n, c_out, oh, ow), (kh, kw), stride, padding)
    if bias is not None:
        out += bias.data[None, :, None, None]
    if not tape:
        return Tensor(out)

    def backward(g):
        # dL/dx: run the adjoint (a plain convolution) over g.
        g_cols, _, _ = im2col(g, (kh, kw), stride, padding)
        if x.requires_grad:
            grad_x_mat = g_cols @ w_mat.T  # (N*H*W, C_in)
            grad_x = grad_x_mat.reshape(n, h, w, c_in).transpose(0, 3, 1, 2)
        else:
            grad_x = None
        grad_w = (
            (x_mat.T @ g_cols).reshape(weight.shape)
            if weight.requires_grad else None
        )
        if bias is None:
            return (grad_x, grad_w)
        grad_b = g.sum(axis=(0, 2, 3)) if bias.requires_grad else None
        return (grad_x, grad_w, grad_b)

    return Tensor._from_op(out, parents, backward)


def max_pool2d(x, kernel=2, stride=None):
    """Max pooling over non-overlapping (or strided) windows."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    tape = _tape1(x)
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)
    rows = n * c * oh * ow
    # Columns are consumed inside this call (argmax + gather); the
    # backward closure only needs the argmax indices, so scratch is safe
    # on both paths.
    cols, _, _ = im2col(
        x.data.reshape(n * c, 1, h, w), (kernel, kernel), stride, 0,
        out=scratch("pool.fwd.cols", (rows, kernel * kernel), x.data.dtype),
    )
    arg = cols.argmax(axis=1)
    out = cols[np.arange(rows), arg]
    out = out.reshape(n, c, oh, ow)
    if not tape:
        return Tensor(out)

    def backward(g):
        grad_cols = scratch(
            "pool.bwd.gcols", (rows, kernel * kernel), g.dtype
        )
        grad_cols.fill(0.0)
        grad_cols[np.arange(rows), arg] = g.reshape(-1)
        grad_x = col2im(
            grad_cols, (n * c, 1, h, w), (kernel, kernel), stride, 0
        )
        return (grad_x.reshape(x.shape),)

    return Tensor._from_op(out, (x,), backward)


def avg_pool2d(x, kernel=2, stride=None):
    """Average pooling over spatial windows."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    tape = _tape1(x)
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)
    rows = n * c * oh * ow
    k2 = kernel * kernel
    cols, _, _ = im2col(
        x.data.reshape(n * c, 1, h, w), (kernel, kernel), stride, 0,
        out=scratch("pool.fwd.cols", (rows, k2), x.data.dtype),
    )
    out = cols.mean(axis=1).reshape(n, c, oh, ow)
    if not tape:
        return Tensor(out)

    def backward(g):
        g_flat = g.reshape(-1, 1)
        grad_cols = scratch("pool.bwd.gcols", (rows, k2), g.dtype)
        np.copyto(grad_cols, g_flat / k2)
        grad_x = col2im(
            grad_cols, (n * c, 1, h, w), (kernel, kernel), stride, 0
        )
        return (grad_x.reshape(x.shape),)

    return Tensor._from_op(out, (x,), backward)


def global_avg_pool2d(x):
    """Average over all spatial positions: (N, C, H, W) -> (N, C).

    This is the pooling that produces the paper's *feature embeddings*
    (the output of the CNN's penultimate layer).
    """
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3))
    if not _tape1(x):
        return Tensor(out)
    scale = 1.0 / (h * w)

    def backward(g):
        # Read-only broadcast view: downstream closures never mutate
        # upstream gradients in place, so skipping the copy is safe.
        return (np.broadcast_to(g[:, :, None, None] * scale, x.shape),)

    return Tensor._from_op(out, (x,), backward)
