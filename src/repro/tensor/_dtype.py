"""Process-wide default floating dtype for the tensor substrate.

The substrate is float32-by-default: every tensor, parameter, buffer and
loss-weight allocation that does not receive an explicit dtype uses
:func:`default_dtype`.  float32 halves memory traffic on every hot
kernel (im2col, matmul, batch-norm) without measurably moving the
paper's metrics — the float32-vs-float64 equivalence test asserts BAC
deltas stay within tolerance on the tiny Table-II run.

Promotion rules (documented here, implemented in ``tensor._as_array``):

* Python floats / lists → ``default_dtype()``.
* numpy floating arrays keep their dtype — callers that built a float64
  array on purpose (gradchecks, analysis code) are not silently
  truncated.
* float16 arrays are promoted to float32 (the substrate has no half
  kernels); a one-time ``dtype.float16_promoted`` telemetry event
  records the promotion.
* integer arrays are untouched (labels, indices).

Use :func:`using_default_dtype` to run a block under a different
default, e.g. ``with using_default_dtype(np.float64): ...`` for
high-precision gradchecks.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = ["default_dtype", "set_default_dtype", "using_default_dtype"]

_ALLOWED = (np.float32, np.float64)

_DEFAULT = np.dtype(np.float32)


def default_dtype():
    """The dtype used for tensors/parameters created without an explicit one."""
    return _DEFAULT


def set_default_dtype(dtype):
    """Set the process-wide default floating dtype (float32 or float64).

    Returns the previous default so callers can restore it; prefer
    :func:`using_default_dtype` for scoped switches.
    """
    global _DEFAULT
    dtype = np.dtype(dtype)
    if dtype not in [np.dtype(d) for d in _ALLOWED]:
        raise ValueError(
            "default dtype must be float32 or float64, got %s" % dtype
        )
    previous = _DEFAULT
    _DEFAULT = dtype
    return previous


@contextlib.contextmanager
def using_default_dtype(dtype):
    """Context manager: run the block with ``dtype`` as the default."""
    previous = set_default_dtype(dtype)
    try:
        yield np.dtype(dtype)
    finally:
        set_default_dtype(previous)
