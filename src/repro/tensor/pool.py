"""Per-shape scratch-buffer pool for hot-path kernels.

``conv2d``/``max_pool2d``/``avg_pool2d`` allocate the same large
intermediate arrays (padded inputs, im2col column matrices, backward
gradient columns) on every batch.  Training loops call them thousands of
times with identical shapes, so those allocations are pure overhead —
this module hands out reusable buffers keyed by (site, shape, dtype).

Lifetime contract
-----------------
A scratch buffer is only valid until the *next* ``scratch`` call with
the same key — callers must fully consume it (or copy out of it) inside
the op invocation that requested it, and must never let it escape into
the autograd tape or a backward closure.  The conv/pool kernels honor
this by pooling only buffers whose lifetime provably ends inside the
call: padded im2col inputs always, column matrices only on the no-grad
path or inside backward closures (backward runs serially per tape, so a
per-site buffer cannot be reused while still live).

The pool is per-process: forked workers inherit the parent's buffers
copy-on-write and then diverge, so parallel runs stay byte-identical to
serial ones.  It is not thread-safe — the substrate is single-threaded
by design.  The pool is bounded (LRU eviction) so sweeps over many
input geometries cannot grow memory without limit.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["scratch", "clear_pool", "pool_stats"]

#: Maximum number of distinct (site, shape, dtype) buffers kept alive.
MAX_ENTRIES = 64

_POOL = OrderedDict()
_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def scratch(site, shape, dtype):
    """Return a reusable uninitialized buffer for ``site`` with this geometry.

    ``site`` names the call site (e.g. ``"conv2d.bwd.gcols"``) so two ops
    alive at the same time never share a buffer.  Contents are garbage —
    callers must overwrite (or ``fill``) before reading.
    """
    key = (site, shape, np.dtype(dtype).str)
    buf = _POOL.get(key)
    if buf is not None:
        _STATS["hits"] += 1
        _POOL.move_to_end(key)
        return buf
    _STATS["misses"] += 1
    buf = np.empty(shape, dtype=dtype)
    _POOL[key] = buf
    if len(_POOL) > MAX_ENTRIES:
        _POOL.popitem(last=False)
        _STATS["evictions"] += 1
    return buf


def clear_pool():
    """Drop every pooled buffer (tests; or to release memory after a sweep)."""
    _POOL.clear()


def pool_stats():
    """Return {hits, misses, evictions, entries, bytes} for introspection."""
    return {
        "hits": _STATS["hits"],
        "misses": _STATS["misses"],
        "evictions": _STATS["evictions"],
        "entries": len(_POOL),
        "bytes": int(sum(b.nbytes for b in _POOL.values())),
    }
