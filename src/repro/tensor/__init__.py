"""Autograd tensor engine (numpy-backed reverse-mode differentiation)."""

from .tensor import Tensor, concatenate, is_grad_enabled, no_grad, stack, where
from .conv import (
    avg_pool2d,
    col2im,
    conv2d,
    conv_transpose2d,
    global_avg_pool2d,
    im2col,
    max_pool2d,
)
from .functional import (
    dropout,
    linear,
    log_softmax,
    nll_loss,
    one_hot,
    softmax,
)
from .gradcheck import check_gradients, numeric_grad

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "where",
    "conv2d",
    "conv_transpose2d",
    "im2col",
    "col2im",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "softmax",
    "log_softmax",
    "one_hot",
    "dropout",
    "linear",
    "nll_loss",
    "check_gradients",
    "numeric_grad",
]
