"""Autograd tensor engine (numpy-backed reverse-mode differentiation)."""

from ..analysis.sanitizer import AnomalyError, detect_anomaly, is_anomaly_enabled
from ._dtype import default_dtype, set_default_dtype, using_default_dtype
from .pool import clear_pool, pool_stats
from .tensor import Tensor, concatenate, is_grad_enabled, no_grad, stack, where
from .conv import (
    avg_pool2d,
    col2im,
    conv2d,
    conv_transpose2d,
    global_avg_pool2d,
    im2col,
    max_pool2d,
)
from .functional import (
    dropout,
    batchnorm_train,
    folded_batchnorm,
    linear,
    linear_relu,
    log_softmax,
    nll_loss,
    one_hot,
    softmax,
)
from .gradcheck import (
    check_gradients,
    check_inplace_mutation_detected,
    gradcheck_batchnorm_eval,
    gradcheck_conv2d_nonsquare,
    numeric_grad,
    run_extended_checks,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "default_dtype",
    "set_default_dtype",
    "using_default_dtype",
    "clear_pool",
    "pool_stats",
    "AnomalyError",
    "detect_anomaly",
    "is_anomaly_enabled",
    "concatenate",
    "stack",
    "where",
    "conv2d",
    "conv_transpose2d",
    "im2col",
    "col2im",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "softmax",
    "log_softmax",
    "one_hot",
    "dropout",
    "linear",
    "linear_relu",
    "folded_batchnorm",
    "batchnorm_train",
    "nll_loss",
    "check_gradients",
    "numeric_grad",
    "gradcheck_conv2d_nonsquare",
    "gradcheck_batchnorm_eval",
    "check_inplace_mutation_detected",
    "run_extended_checks",
]
