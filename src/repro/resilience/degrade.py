"""Graceful degradation for sweep cells.

A sweep over samplers × losses × datasets should never lose hours of
finished cells because one cell diverged.  :func:`run_cell` wraps the
evaluation of a single cell with the full resilience stack:

1. **resume** — if a :class:`RunRegistry` already holds this cell's
   result, return it without recomputing;
2. **retry** — run the cell under an optional :class:`RetryPolicy`
   (each attempt passes the ``sweep.cell`` fault point, so divergence
   can be injected deterministically in tests);
3. **degrade** — when the cell still fails, return a
   :class:`CellFailure` recording the reason instead of raising, so the
   sweep completes and renders a ``FAILED(...)`` row;
4. **circuit break** — with a :class:`repro.guard.CircuitBreaker`
   installed, a cell whose configuration family already tripped the
   breaker is settled as ``FAILED(circuit_open: <signature>)``
   *without invoking its thunk*, and every genuine failure feeds the
   breaker's per-signature counters.

:class:`SimulatedKill` (a ``BaseException``) is never absorbed — it
models the process dying, which only checkpoint/resume survives.
"""

from __future__ import annotations

from ..guard.breaker import default_breaker_key
from ..guard.phase import report_phase
from ..telemetry import get_metrics, get_tracer
from .errors import RetryBudgetExhausted
from .faults import maybe_fire

__all__ = ["CellFailure", "run_cell", "failure_from_payload",
           "short_circuit_failure"]


class CellFailure:
    """Recorded outcome of a sweep cell that produced no metrics.

    Stands in for the metrics dict in a runner's ``results`` mapping;
    renders as ``FAILED(ErrorType: reason)`` in reports.
    """

    __slots__ = ("reason", "error_type", "attempts")

    def __init__(self, reason, error_type="Exception", attempts=1):
        self.reason = str(reason)
        self.error_type = error_type
        self.attempts = int(attempts)

    def label(self, width=40):
        """Compact ``FAILED(...)`` cell text for table rendering."""
        text = "%s: %s" % (self.error_type, self.reason)
        if len(text) > width:
            text = text[: width - 3] + "..."
        return "FAILED(%s)" % text

    def to_payload(self):
        """JSON-serializable manifest payload."""
        return {
            "reason": self.reason,
            "error_type": self.error_type,
            "attempts": self.attempts,
        }

    def __repr__(self):
        return "CellFailure(%s, attempts=%d)" % (self.label(), self.attempts)


def failure_from_payload(payload):
    """Rebuild a :class:`CellFailure` from its manifest payload."""
    return CellFailure(
        payload.get("reason", "unknown"),
        error_type=payload.get("error_type", "Exception"),
        attempts=payload.get("attempts", 1),
    )


def short_circuit_failure(cell_id, key, signature, registry=None):
    """Settle one cell as ``FAILED(circuit_open: ...)`` without running it.

    Shared by the serial and parallel cell runners so a tripped breaker
    produces byte-identical records either way.
    """
    failure = CellFailure(signature, error_type="circuit_open", attempts=0)
    get_tracer().event(
        "guard.breaker_short_circuit",
        cell=cell_id,
        key=key,
        signature=signature,
    )
    get_metrics().counter("guard.breaker_short_circuits").inc()
    if registry is not None:
        registry.record_cell(cell_id, failure.to_payload(), status="failed")
    return failure


def run_cell(thunk, cell_id, registry=None, retry_policy=None,
             fail_soft=True, payload_of=None, result_of=None,
             breaker=None, breaker_key=None):
    """Evaluate one sweep cell with resume, retry, and degradation.

    Parameters
    ----------
    thunk:
        Callable ``(attempt_or_none) -> result``.  With a retry policy
        it receives each :class:`Attempt` (seed offset / LR scale /
        timeout budget); without one it receives ``None``.
    cell_id:
        Stable identifier (e.g. ``"t2/cifar10_like/ce/smote"``) used for
        checkpoint keys and fault matching.
    registry:
        Optional :class:`RunRegistry`; completed cells are loaded from
        it and new outcomes (success *and* failure) are recorded.
    retry_policy:
        Optional :class:`RetryPolicy` applied around ``thunk``.
    fail_soft:
        When True (default), failures return a :class:`CellFailure`;
        when False they propagate (the pre-resilience behavior).
    payload_of / result_of:
        Optional converters between the thunk's result and the
        JSON-serializable payload stored in the registry.  Defaults to
        identity (fine for plain metric dicts).
    breaker:
        Optional :class:`repro.guard.CircuitBreaker`.  If the cell's
        breaker key is already open, the thunk is **not** invoked and a
        ``CellFailure(error_type="circuit_open")`` carrying the tripping
        signature is recorded instead; genuine failures are fed to
        ``breaker.record_failure``.
    breaker_key:
        Breaker key for this cell; defaults to
        :func:`repro.guard.default_breaker_key` of ``cell_id`` (the
        cell's configuration family, dataset wildcarded).

    Returns the thunk's result, a registry-loaded result, or a
    :class:`CellFailure`.
    """
    tracer = get_tracer()
    if registry is not None and registry.has_cell(cell_id):
        payload = registry.load_cell(cell_id)
        tracer.event("cell.resumed", cell=cell_id)
        get_metrics().counter("cells.resumed").inc()
        return result_of(payload) if result_of is not None else payload

    if breaker is not None:
        if breaker_key is None:
            breaker_key = default_breaker_key(cell_id)
        signature = breaker.open_signature(breaker_key)
        if signature is not None:
            return short_circuit_failure(cell_id, breaker_key, signature,
                                         registry=registry)

    attempts_made = [0]

    def trial(attempt):
        attempts_made[0] += 1
        index = 0 if attempt is None else attempt.index
        report_phase("cell:%s" % cell_id)
        maybe_fire("sweep.cell", cell=cell_id, attempt=index)
        return thunk(attempt)

    with tracer.span("cell", cell=cell_id) as span:
        try:
            if retry_policy is not None:
                result = retry_policy.run(trial)
            else:
                result = trial(None)
        except Exception as exc:
            if not fail_soft:
                raise
            cause = exc.last_error if isinstance(exc, RetryBudgetExhausted) and \
                exc.last_error is not None else exc
            failure = CellFailure(
                str(cause),
                error_type=type(cause).__name__,
                attempts=max(attempts_made[0], 1),
            )
            span.set(outcome="failed", attempts=failure.attempts)
            tracer.event(
                "cell.failed",
                cell=cell_id,
                error_type=failure.error_type,
                attempts=failure.attempts,
            )
            get_metrics().counter("cells.failed").inc()
            if breaker is not None:
                breaker.record_failure(breaker_key, failure.error_type,
                                       failure.reason,
                                       count=failure.attempts)
            if registry is not None:
                registry.record_cell(cell_id, failure.to_payload(),
                                     status="failed")
            return failure
        span.set(outcome="done", attempts=max(attempts_made[0], 1))

    get_metrics().counter("cells.done").inc()
    if registry is not None:
        payload = payload_of(result) if payload_of is not None else result
        registry.record_cell(cell_id, payload, status="done")
    return result
