"""Fault-tolerant experiment execution.

Long multi-seed sweeps on a CPU-only numpy substrate must survive the
failures that real training runs hit: divergent trials (GAN baselines
especially), crashed cells, and killed processes.  This package supplies
the four coordinated pieces:

* :mod:`~repro.resilience.checkpoint` — :class:`RunRegistry`, a durable
  run manifest plus phase-boundary artifact store (atomic writes), so an
  interrupted sweep resumes from its completed cells;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`, deterministic
  seed-bump + LR-backoff retry with per-trial wall-clock budgets;
* :mod:`~repro.resilience.degrade` — :func:`run_cell` /
  :class:`CellFailure`, graceful ``FAILED(reason)`` degradation of sweep
  cells;
* :mod:`~repro.resilience.faults` — :class:`FaultPlan`, deterministic
  injection of NaN losses, raised exceptions, simulated kills, hung
  workers and corrupted artifacts, so all of the above is testable
  against the real code paths.

The supervision layer on top — hung-worker watchdog, artifact digest
verification/quarantine, failure circuit breakers — lives in
:mod:`repro.guard` and plugs into this package through
``RetryPolicy.task_deadline``, ``RunRegistry(strict=...)`` /
``RunRegistry.load_breakers`` and the ``breaker`` argument of
:func:`run_cell`.
"""

from .checkpoint import RunRegistry, fingerprint_of
from .degrade import (
    CellFailure,
    failure_from_payload,
    run_cell,
    short_circuit_failure,
)
from .errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    DivergenceError,
    FaultInjected,
    ResilienceError,
    RetryBudgetExhausted,
    SimulatedKill,
    TrialTimeoutError,
)
from .faults import (
    FaultPlan,
    active_plan,
    clear_faults,
    inject_faults,
    install_faults,
    maybe_fire,
)
from .retry import Attempt, RetryPolicy

__all__ = [
    "RunRegistry",
    "fingerprint_of",
    "CellFailure",
    "failure_from_payload",
    "run_cell",
    "short_circuit_failure",
    "ResilienceError",
    "DivergenceError",
    "TrialTimeoutError",
    "RetryBudgetExhausted",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "FaultInjected",
    "SimulatedKill",
    "FaultPlan",
    "active_plan",
    "clear_faults",
    "inject_faults",
    "install_faults",
    "maybe_fire",
    "Attempt",
    "RetryPolicy",
]
