"""Run registry: durable checkpoint/resume state for experiment sweeps.

A :class:`RunRegistry` owns one checkpoint directory::

    <root>/
      manifest.json            # atomic JSON manifest (the source of truth)
      phase1/<fingerprint>/    # phase-1 artifacts, one dir per extractor
        model.npz              #   full model state dict
        head.npz               #   phase-1 classifier-head snapshot
        train_emb.npz          #   training embeddings + labels
        test_emb.npz           #   test embeddings + labels

The manifest records, per sweep cell, either the finished metrics
(``status: "done"``) or the failure reason (``status: "failed"``), plus
one entry per persisted phase-1 extractor.  Every write goes through the
atomic writer in :mod:`repro.utils.serialization`, and the manifest is
re-flushed after each cell, so a killed process loses at most the cell
it was computing.  Failed cells are *not* treated as complete — a
resumed run re-attempts them (their failure may have been transient).

Resume never trusts an artifact blindly: :meth:`RunRegistry.has_phase1`
verifies every file against its sha256 sidecar
(:func:`repro.guard.verify_artifact`) and, on mismatch or truncation,
moves the whole artifact set to ``<root>/quarantine/`` with a
structured reason and reports the set as absent — the cell recomputes
transparently.  Constructing the registry with ``strict=True`` (the
CLI's ``--strict-resume``) raises
:class:`repro.resilience.CheckpointCorruptError` instead, for contexts
where silent recomputation would mask an infrastructure problem.  The
manifest also persists :class:`repro.guard.CircuitBreaker` state under
``"breakers"``, so breakers tripped by one process bind its resumed
successors.

The registry stores only plain arrays and JSON — it knows nothing about
models or datasets.  Rebuilding live objects from these artifacts is the
caller's job (see ``repro.experiments.pipeline.train_phase1``), which
keeps the dependency arrow pointing from experiments to resilience.
"""

from __future__ import annotations

import hashlib
import json
import os

from ..guard.integrity import quarantine, verify_artifact
from ..utils.serialization import atomic_write_json, load_arrays, save_arrays
from .errors import CheckpointCorruptError, CheckpointMismatchError

__all__ = ["RunRegistry", "fingerprint_of"]

_MANIFEST = "manifest.json"
_VERSION = 1


def fingerprint_of(*parts):
    """Stable short hash of a tuple of repr-able configuration parts."""
    blob = "␟".join(repr(part) for part in parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class RunRegistry:
    """Durable record of one sweep run (cells + phase-1 artifacts)."""

    def __init__(self, root, strict=False):
        self.root = os.fspath(root)
        self.strict = bool(strict)
        self._cell_sink = None
        os.makedirs(self.root, exist_ok=True)
        self.manifest_path = os.path.join(self.root, _MANIFEST)
        if os.path.exists(self.manifest_path):
            with open(self.manifest_path, encoding="utf-8") as handle:
                self.manifest = json.load(handle)
            if self.manifest.get("version") != _VERSION:
                raise CheckpointMismatchError(
                    "manifest %s has version %r; this code writes version %r"
                    % (self.manifest_path, self.manifest.get("version"),
                       _VERSION)
                )
        else:
            self.manifest = {
                "version": _VERSION,
                "fingerprint": None,
                "cells": {},
                "phase1": {},
                "breakers": {},
            }

    # ------------------------------------------------------------------
    # Manifest plumbing
    # ------------------------------------------------------------------
    def flush(self):
        """Atomically persist the manifest."""
        atomic_write_json(self.manifest_path, self.manifest)

    def ensure_fingerprint(self, fingerprint):
        """Bind the registry to one run configuration (or verify it).

        The first call stamps ``fingerprint`` into the manifest; later
        calls (e.g. on resume) must present the same value, otherwise a
        :class:`CheckpointMismatchError` is raised — resuming a sweep
        under a different configuration would silently mix metrics.
        """
        stamped = self.manifest.get("fingerprint")
        if stamped is None:
            self.manifest["fingerprint"] = fingerprint
            self.flush()
        elif stamped != fingerprint:
            raise CheckpointMismatchError(
                "checkpoint dir %s belongs to run %s, not %s; use a fresh "
                "--checkpoint-dir or the original configuration"
                % (self.root, stamped, fingerprint)
            )
        return self

    # ------------------------------------------------------------------
    # Sweep cells
    # ------------------------------------------------------------------
    def has_cell(self, cell_id):
        """True when ``cell_id`` finished successfully in a prior run."""
        entry = self.manifest["cells"].get(cell_id)
        return entry is not None and entry.get("status") == "done"

    def load_cell(self, cell_id):
        """Payload recorded for a completed cell."""
        entry = self.manifest["cells"][cell_id]
        if entry.get("status") != "done":
            raise KeyError("cell %r did not complete (status=%r)"
                           % (cell_id, entry.get("status")))
        return entry["payload"]

    def record_cell(self, cell_id, payload, status="done"):
        """Record a cell outcome (JSON-serializable payload) and flush.

        After the manifest flush the cell sink (if one is attached) is
        notified, so downstream archives observe the cell only once it
        is durable in the checkpoint.
        """
        self.manifest["cells"][cell_id] = {"status": status,
                                           "payload": payload}
        self.flush()
        if self._cell_sink is not None:
            self._cell_sink(cell_id, payload, status)

    def set_cell_sink(self, sink):
        """Attach ``sink(cell_id, payload, status)`` to cell writes.

        The hook :func:`repro.evals.run_matrix` uses to mirror every
        checkpointed cell into the sqlite result store from the parent
        process.  Pass None to detach.
        """
        self._cell_sink = sink

    def bind_evals_run(self, run_id):
        """Remember the result-store run this checkpoint feeds.

        A resumed sweep reads it back via :meth:`evals_run_id` and
        re-binds to the same store run instead of opening a new one.
        """
        self.manifest["evals_run_id"] = int(run_id)
        self.flush()

    def evals_run_id(self):
        """The bound result-store run id, or None."""
        return self.manifest.get("evals_run_id")

    def cell_statuses(self):
        """Mapping of cell id -> status string."""
        return {cid: entry.get("status")
                for cid, entry in self.manifest["cells"].items()}

    # ------------------------------------------------------------------
    # Phase-1 artifacts
    # ------------------------------------------------------------------
    def _phase1_dir(self, fingerprint):
        return os.path.join(self.root, "phase1", fingerprint)

    def has_phase1(self, fingerprint):
        """True when a *verified* phase-1 artifact set exists on disk.

        Every file is checked against its sha256 sidecar.  A mismatched
        or truncated set is moved to ``<root>/quarantine/`` with a
        structured reason and dropped from the manifest so the caller
        recomputes it; with ``strict=True`` a
        :class:`~repro.resilience.CheckpointCorruptError` is raised
        instead, naming the first offending artifact.
        """
        entry = self.manifest["phase1"].get(fingerprint)
        if entry is None:
            return False
        directory = self._phase1_dir(fingerprint)
        failures = []
        for name in entry["files"].values():
            failure = verify_artifact(os.path.join(directory, name))
            if failure is not None:
                failures.append(failure)
        if not failures:
            return True
        if self.strict:
            worst = failures[0]
            raise CheckpointCorruptError(
                "phase-1 artifact set %s failed verification on resume "
                "(%s: %s); rerun without --strict-resume to quarantine "
                "and recompute it"
                % (fingerprint, worst.path, worst.reason),
                path=worst.path,
                expected=worst.expected,
                actual=worst.actual,
            )
        reasons = "; ".join(sorted({f.reason for f in failures}))
        quarantine(
            self.root, [directory],
            "phase-1 set %s failed resume verification (%s)"
            % (fingerprint, reasons),
            failures,
        )
        del self.manifest["phase1"][fingerprint]
        self.flush()
        return False

    def save_phase1(self, fingerprint, model_state, head_state,
                    train_embeddings, train_labels,
                    test_embeddings, test_labels, meta):
        """Persist one phase-1 extractor's artifacts atomically.

        ``meta`` must be JSON-serializable (baseline metrics, loss name,
        wall-clock seconds ...); arrays land in per-artifact ``.npz``
        files, and the manifest entry is flushed last so a partially
        written artifact set is never visible as complete.
        """
        directory = self._phase1_dir(fingerprint)
        os.makedirs(directory, exist_ok=True)
        files = {
            "model": "model.npz",
            "head": "head.npz",
            "train": "train_emb.npz",
            "test": "test_emb.npz",
        }
        save_arrays(os.path.join(directory, files["model"]), model_state)
        save_arrays(os.path.join(directory, files["head"]), head_state)
        save_arrays(
            os.path.join(directory, files["train"]),
            {"embeddings": train_embeddings, "labels": train_labels},
        )
        save_arrays(
            os.path.join(directory, files["test"]),
            {"embeddings": test_embeddings, "labels": test_labels},
        )
        self.manifest["phase1"][fingerprint] = {
            "files": files,
            "meta": meta,
        }
        self.flush()

    def load_phase1(self, fingerprint):
        """Load a persisted phase-1 artifact set.

        Returns ``(model_state, head_state, (train_embeddings,
        train_labels), (test_embeddings, test_labels), meta)``.
        """
        entry = self.manifest["phase1"][fingerprint]
        directory = self._phase1_dir(fingerprint)
        files = entry["files"]
        model_state = load_arrays(os.path.join(directory, files["model"]))
        head_state = load_arrays(os.path.join(directory, files["head"]))
        train = load_arrays(os.path.join(directory, files["train"]))
        test = load_arrays(os.path.join(directory, files["test"]))
        return (
            model_state,
            head_state,
            (train["embeddings"], train["labels"]),
            (test["embeddings"], test["labels"]),
            entry["meta"],
        )

    # ------------------------------------------------------------------
    # Circuit breakers (the persistence backend CircuitBreaker expects)
    # ------------------------------------------------------------------
    def load_breakers(self):
        """Persisted circuit-breaker state (key -> entry dict)."""
        return self.manifest.get("breakers", {})

    def save_breakers(self, state):
        """Persist breaker state in the manifest and flush."""
        self.manifest["breakers"] = state
        self.flush()

    def reset_breakers(self):
        """Drop all persisted breaker state (``--reset-breakers``)."""
        self.manifest["breakers"] = {}
        self.flush()

    # ------------------------------------------------------------------
    def summary(self):
        """One-line human summary of the registry's contents."""
        statuses = self.cell_statuses()
        done = sum(1 for s in statuses.values() if s == "done")
        failed = sum(1 for s in statuses.values() if s == "failed")
        return (
            "%d cell(s) checkpointed (%d done, %d failed), "
            "%d phase-1 artifact(s) in %s"
            % (len(statuses), done, failed,
               len(self.manifest["phase1"]), self.root)
        )
