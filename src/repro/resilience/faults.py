"""Deterministic fault injection for testing the resilience stack.

Training loops, the phase-1 pipeline and the sweep runners each expose a
named *fault point* by calling :func:`maybe_fire` with their current
context (epoch, batch, cell id, attempt index ...).  A test installs a
:class:`FaultPlan` describing which points should misbehave, runs the
real code path, and observes how checkpointing / retry / degradation
respond — no monkeypatching, no nondeterminism.

Built-in fault points
---------------------
``trainer.batch``
    Fired once per training batch in :meth:`repro.core.Trainer.fit`
    with ``epoch``/``batch``.  The ``"nan"`` action poisons that batch's
    loss value, which the trainer's divergence guard then traps.
``finetune.batch``
    Same, inside :func:`repro.core.finetune_classifier`.
``phase1.trial``
    Fired at the start of each phase-1 training attempt with ``loss``
    and ``attempt``.
``sweep.cell``
    Fired at the start of each sweep-cell attempt with ``cell`` and
    ``attempt``.
``worker.task``
    Fired inside each pool worker (:mod:`repro.parallel`) before the
    task body runs, with ``index``, ``task`` (the task label) and
    ``dispatch`` (0 for the first dispatch, 1.. for watchdog
    re-dispatches) — the natural place to ``hang`` a worker once.
``artifact.saved``
    Fired by :mod:`repro.utils.serialization` after an array artifact
    (and its digest sidecar) lands on disk, with ``path`` and ``name``
    (the basename).  The ``"corrupt"`` action flips bytes in the
    just-written file, which digest verification then catches.
``artifact.replace``
    Fired inside :func:`repro.utils.serialization.atomic_write`
    between the fsynced temp write and ``os.replace`` — the crash
    window the atomicity guarantee covers.
``artifact.dirsync``
    Fired between ``os.replace`` and the parent-directory fsync — the
    window where the rename is visible but not yet durable.  A kill
    here must still leave the *new* artifact in place after remount
    (the rename already happened); the fsync only pins it against
    power loss.
``serve.accept``
    Fired in the daemon's submit path (:mod:`repro.serve.service`)
    after admission control but *before* the journal write, with
    ``kind`` and ``client`` — a kill here crashes the daemon before
    anything was promised to the client.
``serve.dispatch``
    Fired inside each job execution with ``job_id`` and ``kind``
    (worker-side when the daemon runs ``workers > 1``) — a kill here
    crashes mid-job, the case journal replay must re-execute.
``serve.journal``
    Fired at the head of every :meth:`repro.serve.Journal.append` with
    ``record`` (the record type) and ``job_id``.  The ``"corrupt"``
    action writes a torn (half) record, which replay's checksum skip
    must tolerate.
``serve.compact``
    Fired at each phase boundary of a journal compaction
    (:meth:`repro.serve.Journal.compact`) with ``phase`` — ``begin``
    (nothing written yet), ``written`` (new checkpoint segment durable,
    handle not yet switched), ``switched`` (appends now land in the new
    segment, old segments still on disk), and ``unlink`` per doomed
    old segment (with ``segment``, its basename).  A ``kill`` at *any*
    of these must recover byte-identically to the uncompacted journal —
    the contract the chaos suite pins.

Actions
-------
``"nan"``
    :func:`maybe_fire` returns the string ``"nan"``; the call site
    substitutes a NaN for the real value.
``"raise"``
    Raises ``exc`` (default: :class:`FaultInjected`).
``"kill"``
    Raises :class:`SimulatedKill` (a ``BaseException`` — degradation
    handlers cannot swallow it).
``"hang"``
    Sleeps for ``seconds`` (default: effectively forever) at the fault
    point, modeling a stuck worker.  Inject it at ``worker.task`` with
    ``when={"dispatch": 0}`` so the watchdog's re-dispatch runs clean.
``"corrupt"``
    :func:`maybe_fire` returns the string ``"corrupt"``; the call site
    (``artifact.saved``) flips bytes in the artifact it just wrote.

Example::

    plan = FaultPlan()
    plan.inject("trainer.batch", action="nan", when={"epoch": 1, "batch": 0})
    with inject_faults(plan):
        trainer.fit(dataset, epochs=3)   # raises DivergenceError at (1, 0)

When no plan is installed, :func:`maybe_fire` is a single ``is None``
check — the instrumented hot paths pay essentially nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from .errors import FaultInjected, SimulatedKill

__all__ = [
    "Fault",
    "FaultPlan",
    "active_plan",
    "clear_faults",
    "inject_faults",
    "install_faults",
    "maybe_fire",
]

_ACTIONS = ("nan", "raise", "kill", "hang", "corrupt")

#: Default sleep for ``hang`` faults: far past any sane task deadline.
_HANG_SECONDS = 3600.0


class Fault:
    """One scheduled misbehavior at a fault point.

    Parameters
    ----------
    point:
        Fault-point name this fault listens on.
    action:
        One of ``"nan"`` / ``"raise"`` / ``"kill"``.
    when:
        Optional dict matched against the call-site context; the fault
        only considers occurrences where every key equals the context
        value (missing context keys never match).
    after:
        Arm on the Nth matching occurrence (1 = first match).
    times:
        How many matching occurrences fire once armed; ``None`` means
        every one.
    exc:
        Exception instance for ``action="raise"``.
    seconds:
        Sleep duration for ``action="hang"`` (default: one hour, i.e.
        past any reasonable watchdog deadline).
    """

    __slots__ = ("point", "action", "when", "after", "times", "exc",
                 "seconds", "seen", "fired")

    def __init__(self, point, action="raise", when=None, after=1, times=1,
                 exc=None, seconds=None):
        if action not in _ACTIONS:
            raise ValueError("unknown action %r (valid: %s)"
                             % (action, ", ".join(_ACTIONS)))
        if after < 1:
            raise ValueError("after must be >= 1")
        self.point = point
        self.action = action
        self.when = dict(when or {})
        self.after = int(after)
        self.times = None if times is None else int(times)
        self.exc = exc
        self.seconds = None if seconds is None else float(seconds)
        self.seen = 0
        self.fired = 0

    def matches(self, point, context):
        if point != self.point:
            return False
        return all(
            key in context and context[key] == value
            for key, value in self.when.items()
        )

    def should_fire(self):
        """Advance the occurrence counter; True when this one fires."""
        self.seen += 1
        if self.seen < self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """A set of scheduled faults plus a log of everything that fired."""

    def __init__(self):
        self.faults = []
        self.log = []

    def inject(self, point, action="raise", when=None, after=1, times=1,
               exc=None, seconds=None):
        """Schedule a fault; returns the :class:`Fault` for inspection."""
        fault = Fault(point, action=action, when=when, after=after,
                      times=times, exc=exc, seconds=seconds)
        self.faults.append(fault)
        return fault

    def fire(self, point, context):
        """Evaluate every fault against one occurrence of ``point``."""
        for fault in self.faults:
            if not fault.matches(point, context):
                continue
            if not fault.should_fire():
                continue
            self.log.append((point, dict(context), fault.action))
            if fault.action == "nan":
                return "nan"
            if fault.action == "corrupt":
                return "corrupt"
            if fault.action == "hang":
                # Models a stuck worker: the process sits here until the
                # watchdog SIGKILLs it (or the sleep expires in tests).
                time.sleep(fault.seconds if fault.seconds is not None
                           else _HANG_SECONDS)
                return None
            if fault.action == "kill":
                raise SimulatedKill(
                    "simulated kill at %r (%s)"
                    % (point, ", ".join("%s=%r" % kv
                                        for kv in sorted(context.items())))
                )
            raise fault.exc if fault.exc is not None else FaultInjected(
                point, context
            )
        return None


_ACTIVE = None


def active_plan():
    """The currently installed :class:`FaultPlan`, or None."""
    return _ACTIVE


def install_faults(plan):
    """Install ``plan`` globally (replacing any previous plan)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def clear_faults():
    """Remove the installed plan (fault points become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def inject_faults(plan):
    """Context manager: install ``plan`` for the duration of the block."""
    previous = _ACTIVE
    install_faults(plan)
    try:
        yield plan
    finally:
        if previous is not None:
            install_faults(previous)
        else:
            clear_faults()


def maybe_fire(point, **context):
    """Fault-point hook: no-op unless a plan is installed.

    Returns ``"nan"`` when a nan-action fault fires, None otherwise;
    raise-/kill-action faults raise from here.
    """
    if _ACTIVE is None:
        return None
    return _ACTIVE.fire(point, context)
