"""Retry policies for divergent or timed-out training trials.

GAN-based over-samplers (and, at aggressive learning rates, plain CNN
training) occasionally diverge to NaN; on a CPU-only substrate a single
such trial used to abort an hours-long sweep.  :class:`RetryPolicy`
re-runs a failed trial with a deterministic *seed bump* (so the retry
explores a different random draw, reproducibly) and a *learning-rate
backoff* (the standard fix for divergence), up to a bounded budget and
optional per-trial wall-clock timeout.

The schedule is pure data — :meth:`RetryPolicy.attempts` yields the same
:class:`Attempt` sequence every time, which is what makes retried runs
reproducible end-to-end.
"""

from __future__ import annotations

from .errors import DivergenceError, RetryBudgetExhausted, TrialTimeoutError

__all__ = ["Attempt", "RetryPolicy"]


class Attempt:
    """One scheduled trial attempt.

    Attributes
    ----------
    index:
        0 for the initial try, 1.. for retries.
    seed_offset:
        Deterministic offset to add to the trial's base seed
        (``index * seed_bump``).
    lr_scale:
        Multiplier for the trial's learning rate
        (``lr_backoff ** index``).
    max_seconds:
        Per-trial wall-clock budget, or None for unlimited.
    """

    __slots__ = ("index", "seed_offset", "lr_scale", "max_seconds")

    def __init__(self, index, seed_offset, lr_scale, max_seconds):
        self.index = index
        self.seed_offset = seed_offset
        self.lr_scale = lr_scale
        self.max_seconds = max_seconds

    def __repr__(self):
        return ("Attempt(index=%d, seed_offset=%d, lr_scale=%g, "
                "max_seconds=%r)" % (self.index, self.seed_offset,
                                     self.lr_scale, self.max_seconds))


class RetryPolicy:
    """Bounded retry with deterministic seed-bump and LR backoff.

    Parameters
    ----------
    max_retries:
        Retries allowed *after* the initial attempt (total attempts =
        ``max_retries + 1``).
    seed_bump:
        Seed offset added per retry, so attempt ``i`` runs with
        ``base_seed + i * seed_bump``.  Deterministic by construction.
    lr_backoff:
        Per-retry learning-rate multiplier (attempt ``i`` trains at
        ``lr * lr_backoff ** i``).
    trial_timeout:
        Optional per-attempt wall-clock budget in seconds, carried on
        each :class:`Attempt` for the trial to enforce.
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately.  Defaults to divergence and timeout.
    task_deadline:
        Optional per-task wall-clock budget in seconds enforced
        *externally* by the process pool's watchdog
        (:func:`repro.parallel.parallel_map`): a worker past this
        deadline is SIGKILLed and its task re-dispatched under the same
        seed.  Unlike ``trial_timeout`` (which the trial checks
        cooperatively between batches), the watchdog catches workers
        that are fully hung and can no longer check anything.
    """

    def __init__(self, max_retries=2, seed_bump=1000, lr_backoff=0.5,
                 trial_timeout=None,
                 retry_on=(DivergenceError, TrialTimeoutError),
                 task_deadline=None):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not (0.0 < lr_backoff <= 1.0):
            raise ValueError("lr_backoff must be in (0, 1]")
        if task_deadline is not None and task_deadline <= 0:
            raise ValueError("task_deadline must be positive")
        self.max_retries = int(max_retries)
        self.seed_bump = int(seed_bump)
        self.lr_backoff = float(lr_backoff)
        self.trial_timeout = trial_timeout
        self.retry_on = tuple(retry_on)
        self.task_deadline = (None if task_deadline is None
                              else float(task_deadline))

    def attempts(self):
        """Yield the deterministic :class:`Attempt` schedule."""
        for index in range(self.max_retries + 1):
            yield Attempt(
                index,
                index * self.seed_bump,
                self.lr_backoff ** index,
                self.trial_timeout,
            )

    def run(self, trial, on_retry=None):
        """Run ``trial(attempt)`` until it succeeds or the budget is spent.

        Parameters
        ----------
        trial:
            Callable receiving an :class:`Attempt`; its return value is
            passed through on success.
        on_retry:
            Optional callback ``(attempt, exc)`` invoked after each
            failed attempt (for logging / bookkeeping).

        Raises
        ------
        RetryBudgetExhausted
            When every attempt failed with a retryable error; the last
            error is chained as ``__cause__``.
        """
        last_error = None
        attempts_made = 0
        for attempt in self.attempts():
            attempts_made += 1
            try:
                return trial(attempt)
            except self.retry_on as exc:
                last_error = exc
                if on_retry is not None:
                    on_retry(attempt, exc)
        raise RetryBudgetExhausted(
            "trial failed on every attempt",
            attempts=attempts_made,
            last_error=last_error,
        ) from last_error
