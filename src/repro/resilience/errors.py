"""Structured failure types for fault-tolerant experiment execution.

Every failure the resilience layer knows how to handle is a *typed*
exception carrying provenance (which epoch/batch/trial/cell), so retry
policies can decide what is retryable and sweep runners can record
useful ``FAILED(reason)`` cells instead of opaque tracebacks.

:class:`SimulatedKill` deliberately derives from ``BaseException`` —
like ``KeyboardInterrupt``, it must sail through the ``except
Exception`` handlers that implement graceful degradation, because it
stands in for the process dying (the thing degradation cannot survive
and checkpoint/resume exists for).
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "DivergenceError",
    "TrialTimeoutError",
    "RetryBudgetExhausted",
    "CheckpointMismatchError",
    "CheckpointCorruptError",
    "FaultInjected",
    "SimulatedKill",
]


class ResilienceError(RuntimeError):
    """Base class for failures the resilience layer understands."""


class DivergenceError(ResilienceError):
    """Training produced a non-finite loss (or the tape sanitizer trapped
    a NaN/Inf at its producing op).

    Attributes
    ----------
    epoch, batch:
        Position in the training loop where divergence surfaced.
    loss:
        The offending loss value (NaN/Inf), when known.
    op, site:
        Producing op name and ``file:line`` creation site, forwarded from
        :class:`repro.tensor.AnomalyError` when the sanitizer was active.
    phase:
        Which loop diverged (``"phase1"`` / ``"finetune"`` / ...).
    """

    def __init__(self, message, epoch=None, batch=None, loss=None,
                 op=None, site=None, phase=None):
        self.epoch = epoch
        self.batch = batch
        self.loss = loss
        self.op = op
        self.site = site
        self.phase = phase
        detail = message
        where = []
        if phase is not None:
            where.append("phase=%s" % phase)
        if epoch is not None:
            where.append("epoch=%d" % epoch)
        if batch is not None:
            where.append("batch=%d" % batch)
        if loss is not None:
            where.append("loss=%r" % loss)
        if op is not None:
            where.append("op=%s" % op)
        if site is not None:
            where.append("site=%s" % site)
        if where:
            detail += " [" + ", ".join(where) + "]"
        super().__init__(detail)


class TrialTimeoutError(ResilienceError):
    """A trial exceeded its wall-clock budget.

    Attributes
    ----------
    seconds:
        Elapsed wall-clock seconds when the deadline check fired.
    budget:
        The allowed budget in seconds.
    """

    def __init__(self, message, seconds=None, budget=None):
        self.seconds = seconds
        self.budget = budget
        detail = message
        if seconds is not None and budget is not None:
            detail += " [%.2fs elapsed, budget %.2fs]" % (seconds, budget)
        super().__init__(detail)


class RetryBudgetExhausted(ResilienceError):
    """Every attempt allowed by a :class:`RetryPolicy` failed.

    Attributes
    ----------
    attempts:
        Number of attempts made (initial try + retries).
    last_error:
        The exception raised by the final attempt (also chained as
        ``__cause__``).
    """

    def __init__(self, message, attempts=None, last_error=None):
        self.attempts = attempts
        self.last_error = last_error
        detail = message
        if attempts is not None:
            detail += " [%d attempt(s)]" % attempts
        if last_error is not None:
            detail += ": %s: %s" % (type(last_error).__name__, last_error)
        super().__init__(detail)


class CheckpointMismatchError(ResilienceError):
    """A checkpoint directory belongs to a differently-configured run.

    Resuming into it would silently mix metrics computed under two
    configurations, so the registry refuses instead.
    """


class CheckpointCorruptError(ResilienceError):
    """An on-disk artifact failed its integrity check.

    Raised when a checkpoint file is truncated, unreadable, or its
    sha256 digest disagrees with the digest recorded when it was
    written.  The default (non-strict) resume path never surfaces this
    error: :class:`~repro.resilience.RunRegistry` quarantines the
    artifact and recomputes instead.  ``--strict-resume`` turns the
    quarantine into this exception.

    Attributes
    ----------
    path:
        The offending artifact.
    expected, actual:
        Hex sha256 digests (recorded vs recomputed) when the failure was
        a digest mismatch; None when the file simply failed to parse.
    """

    def __init__(self, message, path=None, expected=None, actual=None):
        self.path = path
        self.expected = expected
        self.actual = actual
        detail = message
        where = []
        if path is not None:
            where.append("path=%s" % path)
        if expected is not None:
            where.append("expected=sha256:%s" % expected)
        if actual is not None:
            where.append("actual=sha256:%s" % actual)
        if where:
            detail += " [" + ", ".join(where) + "]"
        super().__init__(detail)


class FaultInjected(ResilienceError):
    """Default exception raised by a ``raise``-action injected fault."""

    def __init__(self, point, context=None):
        self.point = point
        self.context = dict(context or {})
        super().__init__(
            "injected fault at %r (%s)"
            % (point, ", ".join("%s=%r" % kv for kv in sorted(self.context.items())))
        )


class SimulatedKill(BaseException):
    """Simulated process death, injected by the fault harness.

    Derives from ``BaseException`` so graceful-degradation handlers
    (``except Exception``) cannot absorb it — exactly like a real
    SIGKILL, the only recovery is checkpoint/resume.
    """
