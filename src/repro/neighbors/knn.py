"""Nearest-neighbor search (brute force, memory-chunked).

Provides the neighbor machinery the over-samplers need: k-nearest
neighbors under euclidean or manhattan distance, plus *nearest enemy*
queries (nearest neighbors belonging to a different class), the key
primitive of EOS.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_distances", "KNeighbors", "nearest_enemies"]


def pairwise_distances(a, b, metric="euclidean"):
    """Dense distance matrix between rows of ``a`` (n, d) and ``b`` (m, d)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError("inputs must be 2D with matching feature dims")
    if metric == "euclidean":
        # (a - b)^2 = a^2 + b^2 - 2ab, clipped for numeric safety.
        sq = (
            (a * a).sum(axis=1)[:, None]
            + (b * b).sum(axis=1)[None, :]
            - 2.0 * (a @ b.T)
        )
        return np.sqrt(np.clip(sq, 0.0, None))
    if metric == "manhattan":
        return np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
    raise ValueError("unknown metric %r" % metric)


class KNeighbors:
    """Brute-force k-NN index with optional chunked queries.

    Parameters
    ----------
    k:
        Number of neighbors returned by :meth:`query`.
    metric:
        "euclidean" or "manhattan".
    chunk_size:
        Query rows processed per chunk, bounding the distance-matrix
        memory to ``chunk_size * n_index`` floats.
    """

    def __init__(self, k=5, metric="euclidean", chunk_size=2048):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.metric = metric
        self.chunk_size = chunk_size
        self._data = None
        self._labels = None

    def fit(self, data, labels=None):
        """Index ``data`` (n, d) with optional integer labels."""
        self._data = np.asarray(data, dtype=np.float64)
        if self._data.ndim != 2:
            raise ValueError("data must be 2D")
        self._labels = None if labels is None else np.asarray(labels, dtype=np.int64)
        return self

    @property
    def data(self):
        return self._data

    @property
    def labels(self):
        return self._labels

    def _query_chunk(self, chunk, k_eff):
        """Sorted (distances, indices) of the k_eff nearest for one chunk."""
        d = pairwise_distances(chunk, self._data, self.metric)
        part = np.argpartition(d, k_eff - 1, axis=1)[:, :k_eff]
        rows = np.arange(d.shape[0])[:, None]
        part_d = d[rows, part]
        order = np.argsort(part_d, axis=1)
        return part_d[rows, order], part[rows, order]

    def query(self, points, k=None, exclude_self=False, self_indices=None,
              workers=None):
        """Return (distances, indices) of the k nearest indexed rows.

        With ``exclude_self`` each query row's own training point is
        dropped from its neighbor list.  Self-matches are identified by
        *index*, never by coordinates — a distinct training point that
        happens to duplicate the query is a legitimate neighbor and is
        kept.  ``self_indices`` gives the indexed row owned by each
        query row; when omitted, queries must be row-aligned with the
        indexed data (``points[i]`` is indexed row ``i``).

        ``workers`` dispatches distance chunks to the process pool when
        the query spans more than one chunk (``None`` uses the
        process-wide default, which is 1 unless ``--workers`` set it).
        """
        if self._data is None:
            raise RuntimeError("call fit() before query()")
        k = k if k is not None else self.k
        extra = 1 if exclude_self else 0
        k_eff = min(k + extra, self._data.shape[0])
        points = np.asarray(points, dtype=np.float64)
        n = points.shape[0]
        dists = np.empty((n, k_eff))
        idxs = np.empty((n, k_eff), dtype=np.int64)
        starts = list(range(0, n, self.chunk_size))
        for start, (chunk_d, chunk_i) in zip(
            starts, self._map_chunks(self._query_chunk, points, starts,
                                     k_eff, workers)
        ):
            dists[start : start + self.chunk_size] = chunk_d
            idxs[start : start + self.chunk_size] = chunk_i
        if exclude_self:
            if self_indices is None:
                if n != self._data.shape[0]:
                    raise ValueError(
                        "exclude_self without self_indices requires the "
                        "query to be row-aligned with the indexed data "
                        "(%d query rows vs %d indexed); pass self_indices"
                        % (n, self._data.shape[0])
                    )
                self_indices = np.arange(n)
            dists, idxs = self._drop_self(dists, idxs, k, self_indices)
        return dists, idxs

    def _map_chunks(self, fn, points, starts, k_eff, workers):
        """Run ``fn`` over query chunks, forking when it pays off."""
        from ..parallel import parallel_map, resolve_workers

        if resolve_workers(workers) > 1 and len(starts) > 1:
            return parallel_map(
                lambda start, _seed: fn(
                    points[start : start + self.chunk_size], k_eff
                ),
                starts,
                max_workers=workers,
            )
        return (
            fn(points[start : start + self.chunk_size], k_eff)
            for start in starts
        )

    def _drop_self(self, dists, idxs, k, self_indices):
        """Remove each row's own indexed point (matched by index).

        When the self index is absent from a row's candidate list
        (``argpartition`` broke a zero-distance tie among duplicates in
        favor of another copy), the farthest candidate is dropped
        instead — the row still loses exactly one column.
        """
        n, k_eff = dists.shape
        out_w = min(k, k_eff - 1) if k_eff > 1 else 0
        self_indices = np.asarray(self_indices, dtype=np.int64).reshape(-1, 1)
        is_self = idxs == self_indices
        has_self = is_self.any(axis=1)
        drop = np.where(has_self, is_self.argmax(axis=1), k_eff - 1)
        keep = np.ones((n, k_eff), dtype=bool)
        keep[np.arange(n), drop] = False
        out_d = dists[keep].reshape(n, k_eff - 1)[:, :out_w]
        out_i = idxs[keep].reshape(n, k_eff - 1)[:, :out_w]
        return out_d, out_i

    def predict(self, points, k=None):
        """Majority-vote classification using indexed labels."""
        if self._labels is None:
            raise RuntimeError("index was fit without labels")
        _, idx = self.query(points, k=k)
        votes = self._labels[idx]
        num_classes = int(self._labels.max()) + 1
        counts = np.apply_along_axis(
            lambda row: np.bincount(row, minlength=num_classes), 1, votes
        )
        return counts.argmax(axis=1)


def _enemy_chunk(features, labels, start, stop, k_eff, metric):
    """Sorted enemy (distances, indices) for rows [start, stop).

    Slots with no reachable enemy (a class with no adversaries in the
    data, or fewer than ``k_eff`` enemies) come back as inf/−1 rather
    than whatever index ``argpartition`` happened to leave there.
    """
    d = pairwise_distances(features[start:stop], features, metric)
    same = labels[start:stop, None] == labels[None, :]
    d[same] = np.inf
    part = np.argpartition(d, k_eff - 1, axis=1)[:, :k_eff]
    rows = np.arange(d.shape[0])[:, None]
    part_d = d[rows, part]
    order = np.argsort(part_d, axis=1)
    sel_d = part_d[rows, order]
    sel_i = part[rows, order]
    invalid = ~np.isfinite(sel_d)
    sel_i[invalid] = -1
    sel_d[invalid] = np.inf
    return sel_d, sel_i


def nearest_enemies(features, labels, k, metric="euclidean", chunk_size=2048,
                    workers=None):
    """For every sample, its k nearest *other-class* neighbors.

    Returns (distances, indices), both (n, k) arrays indexing into
    ``features``.  This is the core geometric query of EOS: enemies are
    the adversary-class points closest to each sample, i.e. the points
    that sit across the local decision boundary.  Slots beyond a
    sample's reachable enemies hold distance ``inf`` and index ``-1``.

    ``workers`` dispatches distance chunks to the process pool when the
    data spans more than one chunk.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    n = features.shape[0]
    if k <= 0:
        raise ValueError("k must be positive")
    out_d = np.full((n, k), np.inf)
    out_i = np.full((n, k), -1, dtype=np.int64)
    k_eff = min(k, n - 1)
    if k_eff <= 0:
        return out_d, out_i
    starts = list(range(0, n, chunk_size))

    def chunk_at(start):
        return _enemy_chunk(features, labels, start,
                            min(start + chunk_size, n), k_eff, metric)

    from ..parallel import parallel_map, resolve_workers

    if resolve_workers(workers) > 1 and len(starts) > 1:
        chunks = parallel_map(lambda start, _seed: chunk_at(start), starts,
                              max_workers=workers)
    else:
        chunks = (chunk_at(start) for start in starts)
    for start, (sel_d, sel_i) in zip(starts, chunks):
        out_i[start : start + chunk_size, :k_eff] = sel_i
        out_d[start : start + chunk_size, :k_eff] = sel_d
    return out_d, out_i
