"""Nearest-neighbor search (brute force, memory-chunked).

Provides the neighbor machinery the over-samplers need: k-nearest
neighbors under euclidean or manhattan distance, plus *nearest enemy*
queries (nearest neighbors belonging to a different class), the key
primitive of EOS.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_distances", "KNeighbors", "nearest_enemies"]


def pairwise_distances(a, b, metric="euclidean"):
    """Dense distance matrix between rows of ``a`` (n, d) and ``b`` (m, d)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError("inputs must be 2D with matching feature dims")
    if metric == "euclidean":
        # (a - b)^2 = a^2 + b^2 - 2ab, clipped for numeric safety.
        sq = (
            (a * a).sum(axis=1)[:, None]
            + (b * b).sum(axis=1)[None, :]
            - 2.0 * (a @ b.T)
        )
        return np.sqrt(np.clip(sq, 0.0, None))
    if metric == "manhattan":
        return np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
    raise ValueError("unknown metric %r" % metric)


class KNeighbors:
    """Brute-force k-NN index with optional chunked queries.

    Parameters
    ----------
    k:
        Number of neighbors returned by :meth:`query`.
    metric:
        "euclidean" or "manhattan".
    chunk_size:
        Query rows processed per chunk, bounding the distance-matrix
        memory to ``chunk_size * n_index`` floats.
    """

    def __init__(self, k=5, metric="euclidean", chunk_size=2048):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.metric = metric
        self.chunk_size = chunk_size
        self._data = None
        self._labels = None

    def fit(self, data, labels=None):
        """Index ``data`` (n, d) with optional integer labels."""
        self._data = np.asarray(data, dtype=np.float64)
        if self._data.ndim != 2:
            raise ValueError("data must be 2D")
        self._labels = None if labels is None else np.asarray(labels, dtype=np.int64)
        return self

    @property
    def data(self):
        return self._data

    @property
    def labels(self):
        return self._labels

    def query(self, points, k=None, exclude_self=False):
        """Return (distances, indices) of the k nearest indexed rows.

        With ``exclude_self`` the nearest zero-distance hit per query row
        is dropped (for querying the index with its own points).
        """
        if self._data is None:
            raise RuntimeError("call fit() before query()")
        k = k if k is not None else self.k
        extra = 1 if exclude_self else 0
        k_eff = min(k + extra, self._data.shape[0])
        points = np.asarray(points, dtype=np.float64)
        n = points.shape[0]
        dists = np.empty((n, k_eff))
        idxs = np.empty((n, k_eff), dtype=np.int64)
        for start in range(0, n, self.chunk_size):
            chunk = points[start : start + self.chunk_size]
            d = pairwise_distances(chunk, self._data, self.metric)
            part = np.argpartition(d, k_eff - 1, axis=1)[:, :k_eff]
            rows = np.arange(d.shape[0])[:, None]
            part_d = d[rows, part]
            order = np.argsort(part_d, axis=1)
            idxs[start : start + self.chunk_size] = part[rows, order]
            dists[start : start + self.chunk_size] = part_d[rows, order]
        if exclude_self:
            dists, idxs = self._drop_self(points, dists, idxs, k)
        return dists, idxs

    def _drop_self(self, points, dists, idxs, k):
        """Remove one exact self-match per row (first zero-distance hit)."""
        n, k_eff = dists.shape
        out_d = np.empty((n, min(k, k_eff - 1) if k_eff > 1 else 0))
        out_i = np.empty_like(out_d, dtype=np.int64)
        for i in range(n):
            row_i = idxs[i]
            row_d = dists[i]
            drop = None
            for j in range(k_eff):
                if row_d[j] <= 1e-12 and np.array_equal(
                    self._data[row_i[j]], points[i]
                ):
                    drop = j
                    break
            if drop is None:
                keep = slice(0, out_d.shape[1])
                out_d[i] = row_d[keep]
                out_i[i] = row_i[keep]
            else:
                kept_d = np.delete(row_d, drop)
                kept_i = np.delete(row_i, drop)
                out_d[i] = kept_d[: out_d.shape[1]]
                out_i[i] = kept_i[: out_d.shape[1]]
        return out_d, out_i

    def predict(self, points, k=None):
        """Majority-vote classification using indexed labels."""
        if self._labels is None:
            raise RuntimeError("index was fit without labels")
        _, idx = self.query(points, k=k)
        votes = self._labels[idx]
        num_classes = int(self._labels.max()) + 1
        counts = np.apply_along_axis(
            lambda row: np.bincount(row, minlength=num_classes), 1, votes
        )
        return counts.argmax(axis=1)


def nearest_enemies(features, labels, k, metric="euclidean", chunk_size=2048):
    """For every sample, its k nearest *other-class* neighbors.

    Returns (distances, indices), both (n, k) arrays indexing into
    ``features``.  This is the core geometric query of EOS: enemies are
    the adversary-class points closest to each sample, i.e. the points
    that sit across the local decision boundary.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    n = features.shape[0]
    if k <= 0:
        raise ValueError("k must be positive")
    out_d = np.full((n, k), np.inf)
    out_i = np.full((n, k), -1, dtype=np.int64)
    for start in range(0, n, chunk_size):
        chunk = features[start : start + chunk_size]
        d = pairwise_distances(chunk, features, metric)
        same = labels[start : start + chunk_size, None] == labels[None, :]
        d[same] = np.inf
        k_eff = min(k, n - 1)
        part = np.argpartition(d, k_eff - 1, axis=1)[:, :k_eff]
        rows = np.arange(d.shape[0])[:, None]
        part_d = d[rows, part]
        order = np.argsort(part_d, axis=1)
        out_i[start : start + chunk_size, :k_eff] = part[rows, order]
        out_d[start : start + chunk_size, :k_eff] = part_d[rows, order]
    return out_d, out_i
