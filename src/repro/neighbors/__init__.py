"""Nearest-neighbor search utilities."""

from .knn import KNeighbors, nearest_enemies, pairwise_distances

__all__ = ["KNeighbors", "nearest_enemies", "pairwise_distances"]
