"""Complementary generalization measures (the paper's stated future work).

The conclusion of the paper proposes "designing new measures
complementary to the proposed generalization gap".  This module provides
two such measures with the same per-class interface as
:func:`repro.core.gap.generalization_gap`:

* :func:`quantile_gap` — the range gap computed on per-feature quantiles
  instead of hard min/max, making it robust to single-sample outliers
  (useful for very small minority classes where one draw defines the
  entire range).
* :func:`coverage_gap` — the fraction of test points that fall outside
  the train bounding box of their class in at least ``min_violations``
  feature dimensions: a direct estimate of "how often does the head have
  to extrapolate?".
"""

from __future__ import annotations

import numpy as np

from .._validation import validate_xy

__all__ = ["quantile_gap", "coverage_gap"]


def _per_class_quantiles(features, labels, num_classes, q_low, q_high):
    d = features.shape[1]
    out = np.full((num_classes, d, 2), np.nan)
    for c in range(num_classes):
        rows = features[labels == c]
        if rows.shape[0] == 0:
            continue
        out[c, :, 0] = np.quantile(rows, q_low, axis=0)
        out[c, :, 1] = np.quantile(rows, q_high, axis=0)
    return out


def quantile_gap(
    train_features,
    train_labels,
    test_features,
    test_labels,
    num_classes=None,
    q=0.05,
):
    """Range gap on the (q, 1-q) quantiles instead of min/max.

    Identical floor semantics to Algorithm 1: only test quantile
    intervals *extending beyond* the train interval contribute.  Returns
    ``{"per_class", "mean"}``.
    """
    if not 0.0 <= q < 0.5:
        raise ValueError("q must be in [0, 0.5)")
    train_features, train_labels = validate_xy(train_features, train_labels)
    test_features, test_labels = validate_xy(test_features, test_labels)
    if num_classes is None:
        num_classes = int(max(train_labels.max(), test_labels.max())) + 1
    train_q = _per_class_quantiles(
        train_features, train_labels, num_classes, q, 1.0 - q
    )
    test_q = _per_class_quantiles(
        test_features, test_labels, num_classes, q, 1.0 - q
    )
    low_excess = np.maximum(train_q[:, :, 0] - test_q[:, :, 0], 0.0)
    high_excess = np.maximum(test_q[:, :, 1] - train_q[:, :, 1], 0.0)
    per_class = (low_excess + high_excess).mean(axis=1)
    valid = ~np.isnan(per_class)
    mean = float(per_class[valid].mean()) if valid.any() else float("nan")
    return {"per_class": per_class, "mean": mean}


def coverage_gap(
    train_features,
    train_labels,
    test_features,
    test_labels,
    num_classes=None,
    min_violations=1,
):
    """Fraction of test points outside their class's train bounding box.

    A test point "violates" a feature dimension when its value falls
    outside the [min, max] the training set established for its class in
    that dimension; a point counts as uncovered when it violates at
    least ``min_violations`` dimensions.  Returns ``{"per_class",
    "mean"}`` with values in [0, 1].
    """
    if min_violations < 1:
        raise ValueError("min_violations must be >= 1")
    train_features, train_labels = validate_xy(train_features, train_labels)
    test_features, test_labels = validate_xy(test_features, test_labels)
    if num_classes is None:
        num_classes = int(max(train_labels.max(), test_labels.max())) + 1

    per_class = np.full(num_classes, np.nan)
    for c in range(num_classes):
        train_rows = train_features[train_labels == c]
        test_rows = test_features[test_labels == c]
        if train_rows.shape[0] == 0 or test_rows.shape[0] == 0:
            continue
        lo = train_rows.min(axis=0)
        hi = train_rows.max(axis=0)
        violations = ((test_rows < lo) | (test_rows > hi)).sum(axis=1)
        per_class[c] = float((violations >= min_violations).mean())
    valid = ~np.isnan(per_class)
    mean = float(per_class[valid].mean()) if valid.any() else float("nan")
    return {"per_class": per_class, "mean": mean}
