"""Decoupled-classifier baselines (Kang et al. 2020), cited by the paper.

The paper's related work (Section II-A) positions EOS against the
"decouple representation and classifier" family.  This module provides
the three classic head-retraining strategies from that line so they can
be compared against EOS inside the same three-phase framework:

* :func:`crt_retrain` — classifier re-training (cRT): re-initialize the
  head and retrain it on **class-balanced resampled** embeddings.
* :func:`tau_normalize` — tau-normalization: rescale each class's weight
  vector by ``||w_c||^tau`` (no retraining at all).
* :class:`NearestClassMean` — NCM: classify by distance to per-class
  mean embeddings.

All operate purely on the head/embeddings, like EOS's phase 3, so they
share its efficiency profile.
"""

from __future__ import annotations

import numpy as np

from .._validation import validate_xy
from ..sampling import RandomOverSampler
from ..tensor import default_dtype
from .framework import finetune_classifier

__all__ = ["crt_retrain", "tau_normalize", "NearestClassMean"]


def crt_retrain(model, embeddings, labels, epochs=10, lr=0.05, rng=None):
    """Classifier Re-Training (cRT).

    Re-initializes the classifier head, balances the embedding set by
    random over-sampling (class-balanced sampling in the original), and
    retrains the head only.  Returns the fine-tune history.
    """
    embeddings, labels = validate_xy(embeddings, labels)
    rng = rng if rng is not None else np.random.default_rng(0)
    sampler = RandomOverSampler(random_state=int(rng.integers(0, 2 ** 31)))
    balanced, balanced_labels = sampler.fit_resample(embeddings, labels)
    return finetune_classifier(
        model,
        balanced,
        balanced_labels,
        epochs=epochs,
        lr=lr,
        reinitialize=True,
        rng=rng,
    )


def tau_normalize(classifier, tau=1.0, eps=1e-12):
    """Tau-normalization of classifier weights (in place).

    Each class row is divided by ``||w_c||^tau``: tau=1 equalizes all
    class norms (removing the majority bias entirely), tau=0 is a no-op,
    intermediate values interpolate.  Returns the per-class norms prior
    to normalization.
    """
    if not 0.0 <= tau <= 1.0:
        raise ValueError("tau must be in [0, 1]")
    weight = classifier.weight
    norms = np.sqrt((weight.data ** 2).sum(axis=1))
    scale = np.power(np.maximum(norms, eps), tau)
    weight.data[...] = weight.data / scale[:, None]
    if classifier.bias is not None:
        classifier.bias.data[...] = classifier.bias.data / scale
    return norms


class NearestClassMean:
    """Nearest-class-mean classifier over feature embeddings.

    Computes each class's mean embedding on (optionally normalized)
    features and predicts by smallest euclidean distance — the NCM
    variant from the Decoupling paper.
    """

    def __init__(self, normalize=True):
        self.normalize = normalize
        self.means = None
        self.classes = None

    @staticmethod
    def _unit(rows, eps=1e-12):
        norms = np.linalg.norm(rows, axis=1, keepdims=True)
        return rows / np.maximum(norms, eps)

    def fit(self, embeddings, labels):
        """Compute per-class mean embeddings."""
        embeddings, labels = validate_xy(embeddings, labels)
        if self.normalize:
            embeddings = self._unit(embeddings)
        self.classes = np.unique(labels)
        self.means = np.stack(
            [embeddings[labels == c].mean(axis=0) for c in self.classes]
        )
        return self

    def predict(self, embeddings):
        """Predict the class whose mean is nearest."""
        if self.means is None:
            raise RuntimeError("call fit() before predict()")
        embeddings = np.asarray(embeddings, dtype=default_dtype())
        if self.normalize:
            embeddings = self._unit(embeddings)
        d = (
            (embeddings ** 2).sum(axis=1)[:, None]
            - 2.0 * embeddings @ self.means.T
            + (self.means ** 2).sum(axis=1)[None, :]
        )
        return self.classes[d.argmin(axis=1)]

    def score(self, embeddings, labels):
        """Plain accuracy."""
        return float((self.predict(embeddings) == np.asarray(labels)).mean())
