"""Generic supervised training loop for image classifiers (phase 1).

``Trainer`` wraps a model + loss + optimizer and provides epoch-based
fitting with optional pixel-space augmentation, evaluation with the
paper's metric triple, prediction, and feature-embedding extraction —
the building blocks the three-phase framework composes.
"""

from __future__ import annotations

import sys

import numpy as np

from ..data import DataLoader
from ..metrics import evaluate_predictions
from ..resilience.errors import DivergenceError, TrialTimeoutError
from ..resilience.faults import maybe_fire
from ..telemetry import get_metrics, get_tracer, monotonic
from ..tensor import AnomalyError, Tensor, no_grad

__all__ = ["Trainer", "predict_logits", "extract_features"]


def predict_logits(model, images, batch_size=128):
    """Run the model over images (numpy NCHW) in eval mode; returns logits."""
    was_training = model.training
    model.eval()
    outs = []
    with no_grad():
        for start in range(0, images.shape[0], batch_size):
            batch = Tensor(images[start : start + batch_size])
            outs.append(model(batch).data)
    if was_training:
        model.train()
    return np.concatenate(outs) if outs else np.empty((0,))


def extract_features(model, images, batch_size=128):
    """Extract feature embeddings (penultimate-layer output) for images."""
    was_training = model.training
    model.eval()
    outs = []
    with no_grad():
        for start in range(0, images.shape[0], batch_size):
            batch = Tensor(images[start : start + batch_size])
            outs.append(model.forward_features(batch).data)
    if was_training:
        model.train()
    return np.concatenate(outs) if outs else np.empty((0,))


class Trainer:
    """End-to-end trainer for an :class:`repro.nn.ImageClassifier`.

    Parameters
    ----------
    model:
        The classifier (must expose ``forward``/``forward_features``).
    loss:
        A :class:`repro.losses.Loss` (its ``set_epoch`` hook is called
        each epoch, which drives LDAM's deferred re-weighting).
    optimizer:
        A :class:`repro.optim.Optimizer` over the model's parameters.
    scheduler:
        Optional LR scheduler stepped once per epoch.
    """

    def __init__(self, model, loss, optimizer, scheduler=None):
        self.model = model
        self.loss = loss
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.history = []

    def fit(
        self,
        dataset,
        epochs,
        batch_size=32,
        transform=None,
        rng=None,
        eval_dataset=None,
        verbose=False,
        max_seconds=None,
    ):
        """Train for ``epochs`` passes; records per-epoch loss (and BAC).

        A non-finite batch loss aborts immediately with a
        :class:`repro.resilience.DivergenceError` carrying epoch/batch
        provenance — continuing would only propagate NaN gradients into
        every parameter.  ``max_seconds`` bounds the wall-clock cost of
        the whole fit (checked at batch granularity), raising
        :class:`repro.resilience.TrialTimeoutError` when exceeded.

        Returns the history list of per-epoch dicts.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        loader = DataLoader(
            dataset, batch_size=batch_size, shuffle=True, transform=transform, rng=rng
        )
        tracer = get_tracer()
        metrics = get_metrics()
        fit_start = monotonic()
        for epoch in range(epochs):
            self.loss.set_epoch(epoch)
            self.model.train()
            epoch_loss = 0.0
            n_batches = 0
            start_time = monotonic()
            epoch_span = tracer.span("train.epoch", epoch=epoch)
            epoch_span.__enter__()
            try:
                for images, labels in loader:
                    if max_seconds is not None:
                        elapsed = monotonic() - fit_start
                        if elapsed > max_seconds:
                            tracer.event(
                                "timeout", seconds=elapsed, budget=max_seconds
                            )
                            raise TrialTimeoutError(
                                "training exceeded its wall-clock budget",
                                seconds=elapsed,
                                budget=max_seconds,
                            )
                    self.optimizer.zero_grad()
                    with tracer.span("train.batch"):
                        try:
                            logits = self.model(Tensor(images))
                            loss_value = self.loss(logits, labels)
                            loss_value.backward()
                        except AnomalyError as exc:
                            # The tape sanitizer already pinpointed the
                            # producing op; re-raise with training-loop
                            # provenance attached.
                            tracer.event(
                                "divergence",
                                epoch=epoch,
                                batch=n_batches,
                                op=exc.op,
                                phase="phase1",
                            )
                            raise DivergenceError(
                                "tape sanitizer trapped an anomaly during training",
                                epoch=epoch,
                                batch=n_batches,
                                op=exc.op,
                                site=exc.site,
                                phase="phase1",
                            ) from exc
                        batch_loss = float(loss_value.data)
                        if maybe_fire("trainer.batch", epoch=epoch,
                                      batch=n_batches) == "nan":
                            batch_loss = float("nan")
                        if not np.isfinite(batch_loss):
                            tracer.event(
                                "divergence",
                                epoch=epoch,
                                batch=n_batches,
                                loss=batch_loss,
                                phase="phase1",
                            )
                            raise DivergenceError(
                                "non-finite training loss",
                                epoch=epoch,
                                batch=n_batches,
                                loss=batch_loss,
                                phase="phase1",
                            )
                        self.optimizer.step()
                    epoch_loss += batch_loss
                    n_batches += 1
            except BaseException:
                epoch_span.__exit__(*sys.exc_info())
                raise
            if self.scheduler is not None:
                self.scheduler.step()
            record = {
                "epoch": epoch,
                "loss": epoch_loss / max(n_batches, 1),
                "seconds": monotonic() - start_time,
            }
            epoch_span.set(loss=record["loss"], batches=n_batches)
            epoch_span.__exit__(None, None, None)
            if metrics.enabled:
                metrics.counter("train.batches").inc(n_batches)
                metrics.histogram("train.epoch_loss", series=True).observe(
                    record["loss"]
                )
                if record["seconds"] > 0:
                    metrics.gauge("train.batches_per_sec").set(
                        n_batches / record["seconds"]
                    )
            if eval_dataset is not None:
                record.update(self.evaluate(eval_dataset))
            self.history.append(record)
            if verbose:
                print(
                    "epoch %3d  loss %.4f%s"
                    % (
                        epoch,
                        record["loss"],
                        "  bac %.4f" % record["bac"] if "bac" in record else "",
                    )
                )
        return self.history

    def predict(self, images, batch_size=128):
        """Predicted integer labels for numpy NCHW images."""
        logits = predict_logits(self.model, images, batch_size)
        return logits.argmax(axis=1)

    def evaluate(self, dataset, batch_size=128):
        """BAC/GM/FM metric triple on a dataset."""
        preds = self.predict(dataset.images, batch_size)
        return evaluate_predictions(dataset.labels, preds, dataset.num_classes)

    def extract_features(self, dataset, batch_size=128):
        """Feature embeddings for every image in the dataset."""
        return extract_features(self.model, dataset.images, batch_size)
