"""Classifier weight-norm analysis (paper Figure 5).

In an imbalanced softmax classifier the per-class weight-vector norms
track the class frequencies: majority classes grow larger norms, which
biases logits toward them.  The paper inspects how each over-sampler
changes this norm profile after classifier re-training.
"""

from __future__ import annotations

import numpy as np

__all__ = ["classifier_weight_norms", "norm_imbalance"]


def classifier_weight_norms(classifier):
    """Per-class L2 norms of a Linear classifier's weight rows.

    Accepts a :class:`repro.nn.Linear` (weight shape (C, d)) or a raw
    numpy weight matrix.
    """
    weight = classifier if isinstance(classifier, np.ndarray) else getattr(
        classifier, "weight", classifier
    )
    if isinstance(weight, np.ndarray):
        data = weight
    else:
        data = np.asarray(weight.data)  # Tensor/Parameter
    if data.ndim != 2:
        raise ValueError("classifier weight must be 2D (classes, features)")
    return np.sqrt((data * data).sum(axis=1))


def norm_imbalance(norms):
    """Summary statistics of a norm profile.

    Returns a dict with the max/min ratio and the coefficient of
    variation — both shrink toward 1 / 0 as the classifier becomes
    class-balanced.
    """
    norms = np.asarray(norms, dtype=np.float64)
    if norms.size == 0 or np.any(norms < 0):
        raise ValueError("norms must be a non-empty non-negative vector")
    low = norms.min()
    ratio = float(norms.max() / low) if low > 0 else float("inf")
    mean = norms.mean()
    cv = float(norms.std() / mean) if mean > 0 else float("inf")
    return {"ratio": ratio, "cv": cv}
