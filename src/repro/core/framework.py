"""The paper's three-phase CNN training framework.

Phase 1 — train the CNN end-to-end on the *imbalanced* data (any loss:
CE or a cost-sensitive one), so the extraction layers learn
class-discriminative feature embeddings.

Phase 2 — extract the training-set feature embeddings, then balance them
with *any* over-sampler operating in embedding space (EOS, SMOTE,
Borderline-SMOTE, Balanced-SVM, a GAN sampler, ...).

Phase 3 — detach the classification head and fine-tune it for a small
number of epochs (paper: 10) on the balanced embeddings, with plain
cross-entropy.  The extractor and the updated head are then recombined
for inference.

The efficiency claim (paper §V-E2) falls out of the structure: phase 3
touches only the ~(D × C) classifier parameters on D-dimensional
embeddings instead of re-training the full CNN on over-sampled images.
"""

from __future__ import annotations

import numpy as np

from ..losses import CrossEntropyLoss
from ..metrics import evaluate_predictions
from ..optim import SGD
from ..resilience.errors import DivergenceError
from ..resilience.faults import maybe_fire
from ..telemetry import get_metrics, get_tracer, monotonic
from ..tensor import Tensor, default_dtype, no_grad
from .training import Trainer, extract_features

__all__ = ["ThreePhaseTrainer", "finetune_classifier"]


def finetune_classifier(
    model,
    embeddings,
    labels,
    epochs=10,
    batch_size=64,
    lr=0.05,
    momentum=0.9,
    weight_decay=0.0,
    loss=None,
    reinitialize=False,
    rng=None,
    eval_hook=None,
):
    """Phase 3: retrain only the classifier head on (embeddings, labels).

    Parameters
    ----------
    model:
        An :class:`repro.nn.ImageClassifier`; only ``model.classifier``'s
        parameters are updated.
    embeddings, labels:
        The (balanced) embedding training set.
    loss:
        Defaults to plain cross-entropy, as in the paper's re-training.
    reinitialize:
        When True the head's weights are re-drawn before fine-tuning
        (the Decoupling-style cRT variant); default keeps the phase-1
        weights as the starting point.
    eval_hook:
        Optional callable ``(epoch) -> dict`` whose result is merged
        into the per-epoch history (used for the Figure-7 curve).

    Returns the per-epoch history list.
    """
    loss = loss if loss is not None else CrossEntropyLoss()
    rng = rng if rng is not None else np.random.default_rng(0)
    head = model.classifier
    if reinitialize:
        from ..nn import init as nn_init

        head.weight.data[...] = nn_init.kaiming_uniform(
            head.weight.shape, rng, gain=1.0
        )
        if head.bias is not None:
            head.bias.data[...] = 0.0

    optimizer = SGD(
        head.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay
    )
    embeddings = np.asarray(embeddings, dtype=default_dtype())
    labels = np.asarray(labels, dtype=np.int64)
    n = embeddings.shape[0]
    tracer = get_tracer()
    metrics = get_metrics()
    history = []
    for epoch in range(epochs):
        loss.set_epoch(epoch)
        order = rng.permutation(n)
        epoch_loss = 0.0
        n_batches = 0
        start_time = monotonic()
        with tracer.span("finetune.epoch", epoch=epoch) as epoch_span:
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                optimizer.zero_grad()
                with tracer.span("finetune.batch"):
                    logits = model.forward_head(Tensor(embeddings[idx]))
                    value = loss(logits, labels[idx])
                    value.backward()
                    batch_loss = float(value.data)
                    if maybe_fire("finetune.batch", epoch=epoch,
                                  batch=n_batches) == "nan":
                        batch_loss = float("nan")
                    if not np.isfinite(batch_loss):
                        tracer.event(
                            "divergence",
                            epoch=epoch,
                            batch=n_batches,
                            loss=batch_loss,
                            phase="finetune",
                        )
                        raise DivergenceError(
                            "non-finite fine-tuning loss",
                            epoch=epoch,
                            batch=n_batches,
                            loss=batch_loss,
                            phase="finetune",
                        )
                    optimizer.step()
                epoch_loss += batch_loss
                n_batches += 1
            record = {
                "epoch": epoch,
                "loss": epoch_loss / max(n_batches, 1),
                "seconds": monotonic() - start_time,
            }
            epoch_span.set(loss=record["loss"], batches=n_batches)
        if metrics.enabled:
            metrics.counter("finetune.batches").inc(n_batches)
            metrics.histogram("finetune.epoch_loss", series=True).observe(
                record["loss"]
            )
        if eval_hook is not None:
            record.update(eval_hook(epoch))
        history.append(record)
    return history


class ThreePhaseTrainer:
    """Orchestrates the paper's train → resample-in-embedding → fine-tune flow.

    Parameters
    ----------
    model:
        The CNN classifier.
    loss:
        Phase-1 training loss (CE / ASL / Focal / LDAM).
    optimizer:
        Phase-1 optimizer over all model parameters.
    sampler:
        Any object with ``fit_resample(X, y)`` — EOS, a SMOTE variant, a
        GAN adapter, or ``None`` to skip balancing (baseline).
    scheduler:
        Optional phase-1 LR scheduler.
    """

    def __init__(self, model, loss, optimizer, sampler=None, scheduler=None):
        self.model = model
        self.sampler = sampler
        self.phase1 = Trainer(model, loss, optimizer, scheduler)
        self.train_embeddings = None
        self.train_embedding_labels = None
        self.balanced_embeddings = None
        self.balanced_labels = None
        self.finetune_history = []
        self.timings = {}

    # ------------------------------------------------------------------
    def train_phase1(self, dataset, epochs, batch_size=32, transform=None, rng=None,
                     eval_dataset=None, verbose=False, max_seconds=None):
        """Phase 1: end-to-end training on the imbalanced dataset."""
        start = monotonic()
        with get_tracer().span("phase1", epochs=epochs):
            history = self.phase1.fit(
                dataset,
                epochs,
                batch_size=batch_size,
                transform=transform,
                rng=rng,
                eval_dataset=eval_dataset,
                verbose=verbose,
                max_seconds=max_seconds,
            )
        self.timings["phase1"] = monotonic() - start
        return history

    def extract_embeddings(self, dataset, batch_size=128):
        """Phase 2a: cache the training-set feature embeddings."""
        start = monotonic()
        with get_tracer().span("extract", n_images=int(dataset.images.shape[0])):
            self.train_embeddings = extract_features(
                self.model, dataset.images, batch_size
            )
        self.train_embedding_labels = dataset.labels.copy()
        self.timings["extract"] = monotonic() - start
        return self.train_embeddings

    def resample_embeddings(self):
        """Phase 2b: balance the cached embeddings with the sampler."""
        if self.train_embeddings is None:
            raise RuntimeError("call extract_embeddings() first")
        start = monotonic()
        sampler_name = type(self.sampler).__name__ if self.sampler else "none"
        with get_tracer().span("resample", sampler=sampler_name):
            if self.sampler is None:
                self.balanced_embeddings = self.train_embeddings
                self.balanced_labels = self.train_embedding_labels
            else:
                self.balanced_embeddings, self.balanced_labels = (
                    self.sampler.fit_resample(
                        self.train_embeddings, self.train_embedding_labels
                    )
                )
        self.timings["resample"] = monotonic() - start
        return self.balanced_embeddings, self.balanced_labels

    def finetune(self, epochs=10, batch_size=64, lr=0.05, loss=None,
                 reinitialize=False, rng=None, eval_hook=None):
        """Phase 3: fine-tune the classifier head on balanced embeddings."""
        if self.balanced_embeddings is None:
            raise RuntimeError("call resample_embeddings() first")
        start = monotonic()
        with get_tracer().span("finetune", epochs=epochs):
            self.finetune_history = finetune_classifier(
                self.model,
                self.balanced_embeddings,
                self.balanced_labels,
                epochs=epochs,
                batch_size=batch_size,
                lr=lr,
                loss=loss,
                reinitialize=reinitialize,
                rng=rng,
                eval_hook=eval_hook,
            )
        self.timings["finetune"] = monotonic() - start
        return self.finetune_history

    # ------------------------------------------------------------------
    def run(
        self,
        train_dataset,
        phase1_epochs,
        finetune_epochs=10,
        batch_size=32,
        transform=None,
        finetune_lr=0.05,
        rng=None,
        eval_dataset=None,
        verbose=False,
    ):
        """Run all three phases; returns self for chaining."""
        self.train_phase1(
            train_dataset,
            phase1_epochs,
            batch_size=batch_size,
            transform=transform,
            rng=rng,
            eval_dataset=eval_dataset,
            verbose=verbose,
        )
        self.extract_embeddings(train_dataset)
        self.resample_embeddings()
        self.finetune(epochs=finetune_epochs, lr=finetune_lr, rng=rng)
        return self

    # ------------------------------------------------------------------
    def predict(self, images, batch_size=128):
        """Inference with the recombined extractor + fine-tuned head."""
        self.model.eval()
        preds = []
        with no_grad():
            for start in range(0, images.shape[0], batch_size):
                batch = Tensor(images[start : start + batch_size])
                logits = self.model(batch)
                preds.append(logits.data.argmax(axis=1))
        return np.concatenate(preds)

    def evaluate(self, dataset, batch_size=128):
        """BAC/GM/FM on a dataset with the recombined model."""
        preds = self.predict(dataset.images, batch_size)
        return evaluate_predictions(dataset.labels, preds, dataset.num_classes)

    def total_time(self):
        """Total wall-clock seconds spent across recorded phases."""
        return sum(self.timings.values())
