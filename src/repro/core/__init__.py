"""Core contribution: EOS, the generalization gap, and the 3-phase framework."""

from .bbn import DualBranchHead, reverse_sampling_probabilities
from .decoupling import NearestClassMean, crt_retrain, tau_normalize
from .eos import EOS
from .framework import ThreePhaseTrainer, finetune_classifier
from .gap import (
    class_feature_ranges,
    feature_deviation,
    generalization_gap,
    range_excess,
    tp_fp_gap,
)
from .gap_extensions import coverage_gap, quantile_gap
from .norms import classifier_weight_norms, norm_imbalance
from .training import Trainer, extract_features, predict_logits

__all__ = [
    "EOS",
    "ThreePhaseTrainer",
    "finetune_classifier",
    "Trainer",
    "extract_features",
    "predict_logits",
    "class_feature_ranges",
    "range_excess",
    "generalization_gap",
    "tp_fp_gap",
    "feature_deviation",
    "quantile_gap",
    "coverage_gap",
    "classifier_weight_norms",
    "norm_imbalance",
    "crt_retrain",
    "tau_normalize",
    "NearestClassMean",
    "DualBranchHead",
    "reverse_sampling_probabilities",
]
