"""Expansive Over-Sampling (EOS) — the paper's core contribution.

EOS (Algorithm 2) generates synthetic minority samples from *nearest
adversaries* ("nearest enemies"): for each minority point whose k-NN
neighborhood contains other-class members, synthetic samples are formed
as combinations of the point and one of its enemy neighbors.  Because
the enemy lies across the local decision boundary, the synthesis expands
the minority class's feature *ranges* toward the adversary class —
exactly the direction in which the train/test generalization gap opens
up — instead of interpolating strictly inside the minority convex hull
the way SMOTE-family methods do.

EOS is designed to run on CNN *feature embeddings* inside the
three-phase framework (:mod:`repro.core.framework`), but the sampler is
space-agnostic and can be applied to raw pixels for the paper's §V-E3
ablation.

Direction note: the paper's Algorithm 2 writes ``samples = B + R*(B-N)``
while the prose describes convex combinations between the base and its
nearest enemy ("adds a portion of this difference to the base example"),
which is ``B + R*(N-B)``.  We default to the convex combination
(``direction="toward"``, matching the stated goal of expanding minority
ranges toward the neighboring majority classes) and expose the literal
sign as ``direction="away"`` for the ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from ..neighbors import KNeighbors
from .._validation import validate_xy
from ..sampling.base import BaseSampler, sampling_targets

__all__ = ["EOS"]

# Jitter scale for the isolated-class fallback: synthetic copies are
# perturbed by N(0, (_FALLBACK_JITTER * per-feature std)^2).
_FALLBACK_JITTER = 0.05


class EOS(BaseSampler):
    """Expansive Over-Sampling.

    Parameters
    ----------
    k_neighbors:
        Neighborhood size K used to find nearest enemies (the paper uses
        K=10 by default and sweeps {10, 50, 100, 200, 300} in Table IV).
    direction:
        "toward" (default) moves synthetic samples from the base toward
        its enemy neighbor; "away" uses the literal Algorithm-2 sign and
        reflects away from the enemy.
    weighting:
        "uniform" assigns each enemy neighbor of a base example the same
        sampling probability (paper); "distance" weights enemies
        inversely to their distance (ablation).
    expansion:
        Upper bound of the interpolation coefficient ``r`` (r ~ U[0,
        expansion]); 1.0 reproduces the paper, values > 1 extrapolate
        beyond the enemy.
    sampling_strategy:
        "auto" balances all classes to the majority count; a dict
        {class: total} requests explicit totals.
    random_state:
        RNG seed.
    """

    def __init__(
        self,
        k_neighbors=10,
        direction="toward",
        weighting="uniform",
        expansion=1.0,
        sampling_strategy="auto",
        random_state=0,
    ):
        if k_neighbors <= 0:
            raise ValueError("k_neighbors must be positive")
        if direction not in ("toward", "away"):
            raise ValueError("direction must be 'toward' or 'away'")
        if weighting not in ("uniform", "distance"):
            raise ValueError("weighting must be 'uniform' or 'distance'")
        if expansion <= 0:
            raise ValueError("expansion must be positive")
        super().__init__(
            sampling_strategy=sampling_strategy, random_state=random_state
        )
        self.k_neighbors = k_neighbors
        self.direction = direction
        self.weighting = weighting
        self.expansion = expansion

    # ------------------------------------------------------------------
    def find_bases(self, x, y):
        """Identify base examples and their enemy neighbors.

        Returns
        -------
        dict mapping class -> (base_rows, enemy_lists, weight_lists)
            ``base_rows`` are indices into ``x`` of class members whose
            K-neighborhood contains at least one adversary;
            ``enemy_lists[i]`` holds the enemy indices of base i, and
            ``weight_lists[i]`` their sampling probabilities.
        """
        x, y = validate_xy(x, y)
        n = x.shape[0]
        k = min(self.k_neighbors, n - 1)
        index = KNeighbors(k=k).fit(x)
        dists, nn_idx = index.query(x, exclude_self=True)

        per_class = {}
        for cls in np.unique(y):
            rows = np.nonzero(y == cls)[0]
            bases, enemies, weights = [], [], []
            for r in rows:
                neigh = nn_idx[r]
                enemy_mask = y[neigh] != cls
                if not enemy_mask.any():
                    continue
                enemy_ids = neigh[enemy_mask]
                if self.weighting == "uniform":
                    w = np.full(len(enemy_ids), 1.0 / len(enemy_ids))
                else:
                    d = dists[r][enemy_mask]
                    inv = 1.0 / np.maximum(d, 1e-12)
                    w = inv / inv.sum()
                bases.append(r)
                enemies.append(enemy_ids)
                weights.append(w)
            per_class[int(cls)] = (np.asarray(bases, dtype=np.int64), enemies, weights)
        return per_class

    # ------------------------------------------------------------------
    def _fit_resample(self, x, y):
        """Balance (x, y); synthetic rows are appended after the originals."""
        rng = self._rng()
        targets = sampling_targets(y, self.sampling_strategy)
        if not targets:
            return x.copy(), y.copy()

        base_info = self.find_bases(x, y)
        new_x, new_y = [x], [y]
        for cls, n_new in sorted(targets.items()):
            synth = self._generate_class(x, y, cls, n_new, base_info, rng)
            new_x.append(synth)
            new_y.append(np.full(n_new, cls, dtype=np.int64))
        return np.concatenate(new_x), np.concatenate(new_y)

    def _generate_class(self, x, y, cls, n_new, base_info, rng):
        bases, enemies, weights = base_info.get(cls, (np.empty(0, np.int64), [], []))
        if len(bases) == 0:
            # No class member has an adversary in its neighborhood: the
            # class is locally isolated, so there is no boundary to
            # expand toward.  Fall back to jittered duplication: copies
            # perturbed by Gaussian noise scaled to the per-feature
            # spread, so the fallback still adds (mild) diversity
            # instead of exact duplicates.
            pool = x[y == cls]
            picks = rng.integers(0, pool.shape[0], size=n_new)
            scale = pool.std(axis=0)
            jitter = rng.normal(0.0, 1.0, size=(n_new, pool.shape[1]))
            return pool[picks] + _FALLBACK_JITTER * scale * jitter

        base_picks = rng.integers(0, len(bases), size=n_new)
        r = rng.uniform(0.0, self.expansion, size=(n_new, 1))
        base_points = x[bases[base_picks]]
        enemy_points = np.empty_like(base_points)
        for i, b in enumerate(base_picks):
            enemy_ids = enemies[b]
            w = weights[b]
            choice = rng.choice(len(enemy_ids), p=w)
            enemy_points[i] = x[enemy_ids[choice]]

        if self.direction == "toward":
            return base_points + r * (enemy_points - base_points)
        return base_points + r * (base_points - enemy_points)
