"""BBN-style dual-branch head training (Zhou et al. 2020, paper ref [25]).

The Bilateral-Branch Network trains a *uniform* branch (conventional
sampling, learns the majority-dominated representation) and a
*re-balancing* branch (reversed sampling, favors the minority), blending
their losses with a cumulative coefficient ``alpha`` that shifts from
the uniform branch to the re-balancing branch as training progresses.

The original BBN shares convolutional blocks between full branches;
in this library's decoupled setting the extractor is already trained
(phase 1), so the bilateral idea is applied where it still bites: two
classifier heads over the shared embeddings, one fed uniformly-sampled
batches and one fed reverse-frequency batches, blended by the cumulative
schedule.  Inference averages both heads equally.
"""

from __future__ import annotations

import numpy as np

from .._validation import validate_xy
from ..losses import CrossEntropyLoss
from ..optim import SGD
from ..tensor import Tensor, default_dtype, no_grad

__all__ = ["DualBranchHead", "reverse_sampling_probabilities"]


def reverse_sampling_probabilities(labels, num_classes=None):
    """Per-sample probabilities proportional to inverse class frequency.

    This is BBN's "reversed sampler": class c is drawn with weight
    ``(max_count / n_c)`` normalized over samples, so the rarest class
    is seen as often as the most frequent one under uniform sampling.
    """
    labels = np.asarray(labels, dtype=np.int64)
    k = num_classes if num_classes is not None else int(labels.max()) + 1
    counts = np.bincount(labels, minlength=k).astype(np.float64)
    max_count = counts[counts > 0].max()
    counts[counts == 0] = np.inf  # absent classes get zero probability
    weights = (max_count / counts)[labels]
    return weights / weights.sum()


class DualBranchHead:
    """Cumulative dual-branch classifier head over embeddings.

    Parameters
    ----------
    head_factory:
        Zero-argument callable returning a fresh Linear head; called
        twice (uniform branch, re-balancing branch).
    epochs, lr, batch_size:
        Training schedule; ``alpha`` decays as ``1 - (t / T)^2`` per the
        BBN cumulative-learning schedule.
    random_state:
        RNG seed.
    """

    def __init__(self, head_factory, epochs=10, lr=0.05, batch_size=64,
                 random_state=0):
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.uniform_head = head_factory()
        self.rebalance_head = head_factory()
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.random_state = random_state
        self.alpha_history = []

    def fit(self, embeddings, labels):
        """Train both branches with the cumulative schedule."""
        embeddings, labels = validate_xy(embeddings, labels)
        rng = np.random.default_rng(self.random_state)
        loss = CrossEntropyLoss()
        params = list(self.uniform_head.parameters()) + list(
            self.rebalance_head.parameters()
        )
        optimizer = SGD(params, lr=self.lr, momentum=0.9)
        n = embeddings.shape[0]
        reverse_p = reverse_sampling_probabilities(labels)
        steps_per_epoch = max(1, n // self.batch_size)
        self.alpha_history = []

        for epoch in range(self.epochs):
            alpha = 1.0 - (epoch / self.epochs) ** 2
            self.alpha_history.append(alpha)
            for _ in range(steps_per_epoch):
                uniform_idx = rng.integers(0, n, size=self.batch_size)
                reverse_idx = rng.choice(
                    n, size=self.batch_size, replace=True, p=reverse_p
                )
                optimizer.zero_grad()
                loss_u = loss(
                    self.uniform_head(Tensor(embeddings[uniform_idx])),
                    labels[uniform_idx],
                )
                loss_r = loss(
                    self.rebalance_head(Tensor(embeddings[reverse_idx])),
                    labels[reverse_idx],
                )
                total = alpha * loss_u + (1.0 - alpha) * loss_r
                total.backward()
                optimizer.step()
        return self

    def predict_logits(self, embeddings):
        """Equal-weight blend of the two branches (BBN inference)."""
        embeddings = np.asarray(embeddings, dtype=default_dtype())
        with no_grad():
            logits_u = self.uniform_head(Tensor(embeddings)).data
            logits_r = self.rebalance_head(Tensor(embeddings)).data
        return 0.5 * (logits_u + logits_r)

    def predict(self, embeddings):
        return self.predict_logits(embeddings).argmax(axis=1)

    def score(self, embeddings, labels):
        """Balanced accuracy."""
        from ..metrics import balanced_accuracy

        return balanced_accuracy(labels, self.predict(embeddings))
