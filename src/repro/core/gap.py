"""Generalization-gap measurement in embedding space (Algorithm 1).

The paper quantifies generalization not by accuracy differences but by
how far the *test* feature-embedding ranges fall outside the *train*
ranges, per class: if the model's internal representation of the test
data extends beyond what it saw at train time, the classifier head is
extrapolating.  The distance is Manhattan (per-feature absolute
differences of range endpoints) with a **zero floor**: endpoints that
fall *inside* the training range contribute nothing — the gap only ever
measures range excess, never range shrinkage.

Functions
---------
``class_feature_ranges``
    (num_classes, d, 2) min/max per class per embedding dimension.
``generalization_gap``
    Per-class gap vector + scalar mean over classes (Algorithm 1).
``tp_fp_gap``
    The Figure-4 variant: gap computed separately over the test
    instances a model predicts correctly (TP) and incorrectly (FP).
``feature_deviation``
    The class-mean-based deviation of Ye et al. (2020), provided for
    comparison/ablation.
"""

from __future__ import annotations

import numpy as np

from .._validation import validate_xy

__all__ = [
    "class_feature_ranges",
    "range_excess",
    "generalization_gap",
    "tp_fp_gap",
    "feature_deviation",
]


def class_feature_ranges(features, labels, num_classes=None):
    """Per-class feature ranges.

    Returns an array of shape (num_classes, d, 2) where ``[..., 0]`` is
    the per-feature minimum and ``[..., 1]`` the maximum.  Classes with
    no samples get NaN ranges.
    """
    features, labels = validate_xy(features, labels)
    k = num_classes if num_classes is not None else int(labels.max()) + 1
    d = features.shape[1]
    out = np.full((k, d, 2), np.nan)
    for c in range(k):
        rows = features[labels == c]
        if rows.shape[0] == 0:
            continue
        out[c, :, 0] = rows.min(axis=0)
        out[c, :, 1] = rows.max(axis=0)
    return out


def range_excess(train_ranges, test_ranges):
    """Manhattan range gap with zero floor, per class.

    For each class and feature, the contribution is how far the test
    minimum undershoots the train minimum plus how far the test maximum
    overshoots the train maximum (each floored at zero).  Returns a
    vector of per-class means over features; classes missing from either
    split yield NaN.
    """
    if train_ranges.shape != test_ranges.shape:
        raise ValueError("range arrays must have identical shapes")
    low_excess = np.maximum(train_ranges[:, :, 0] - test_ranges[:, :, 0], 0.0)
    high_excess = np.maximum(test_ranges[:, :, 1] - train_ranges[:, :, 1], 0.0)
    per_feature = low_excess + high_excess
    return per_feature.mean(axis=1)


def generalization_gap(
    train_features, train_labels, test_features, test_labels, num_classes=None
):
    """Algorithm 1: embedding-space generalization gap.

    Returns a dict:

    * ``per_class`` — gap per class (mean feature-range excess),
    * ``mean`` — the net generalization gap (mean over classes present
      in both splits),
    * ``train_ranges`` / ``test_ranges`` — the (C, d, 2) range arrays.
    """
    if num_classes is None:
        num_classes = int(max(np.max(train_labels), np.max(test_labels))) + 1
    train_ranges = class_feature_ranges(train_features, train_labels, num_classes)
    test_ranges = class_feature_ranges(test_features, test_labels, num_classes)
    per_class = range_excess(train_ranges, test_ranges)
    valid = ~np.isnan(per_class)
    mean = float(per_class[valid].mean()) if valid.any() else float("nan")
    return {
        "per_class": per_class,
        "mean": mean,
        "train_ranges": train_ranges,
        "test_ranges": test_ranges,
    }


def tp_fp_gap(
    train_features,
    train_labels,
    test_features,
    test_labels,
    test_predictions,
    num_classes=None,
    group_fp_by="true",
):
    """Figure-4 analysis: gap over true-positive vs false-positive test points.

    TPs are test instances whose prediction matches the label; FPs are
    mispredicted instances.  Both groups are compared against the
    training ranges of the instance's *true* class by default: an FP is
    an instance whose embedding the model failed to place inside its
    class's learned footprint, so its range excess is large.  Pass
    ``group_fp_by="predicted"`` to instead measure FPs against the class
    they were mistaken for.  Returns ``{"tp", "fp", "ratio"}``.
    """
    if group_fp_by not in ("true", "predicted"):
        raise ValueError("group_fp_by must be 'true' or 'predicted'")
    test_labels = np.asarray(test_labels)
    test_predictions = np.asarray(test_predictions)
    if num_classes is None:
        num_classes = int(max(np.max(train_labels), np.max(test_labels))) + 1

    correct = test_predictions == test_labels
    tp_gap = generalization_gap(
        train_features,
        train_labels,
        test_features[correct],
        test_labels[correct],
        num_classes,
    )["mean"]
    if (~correct).any():
        fp_groups = (
            test_labels if group_fp_by == "true" else test_predictions
        )
        fp_gap = generalization_gap(
            train_features,
            train_labels,
            test_features[~correct],
            fp_groups[~correct],
            num_classes,
        )["mean"]
    else:
        fp_gap = float("nan")
    ratio = fp_gap / tp_gap if tp_gap and not np.isnan(fp_gap) else float("nan")
    return {"tp": tp_gap, "fp": fp_gap, "ratio": ratio}


def feature_deviation(
    train_features, train_labels, test_features, test_labels, num_classes=None
):
    """Class-mean feature deviation (Ye et al. 2020), for comparison.

    Squared euclidean distance between per-class train and test feature
    means; returns (per_class, mean) like :func:`generalization_gap`.
    """
    train_features, train_labels = validate_xy(train_features, train_labels)
    test_features, test_labels = validate_xy(test_features, test_labels)
    if num_classes is None:
        num_classes = int(max(train_labels.max(), test_labels.max())) + 1
    per_class = np.full(num_classes, np.nan)
    for c in range(num_classes):
        a = train_features[train_labels == c]
        b = test_features[test_labels == c]
        if a.shape[0] == 0 or b.shape[0] == 0:
            continue
        diff = a.mean(axis=0) - b.mean(axis=0)
        per_class[c] = float((diff * diff).sum())
    valid = ~np.isnan(per_class)
    mean = float(per_class[valid].mean()) if valid.any() else float("nan")
    return {"per_class": per_class, "mean": mean}
