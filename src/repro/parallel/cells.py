"""Parallel sweep-cell execution with the full resilience contract.

:func:`run_cells` is the batched, parallel counterpart of
:func:`repro.resilience.run_cell`.  It takes ``(cell_id, thunk)`` tasks
and preserves every serial guarantee:

* **workers == 1** delegates each task to ``run_cell`` unchanged —
  identical behavior, identical registry write ordering, identical
  fault propagation (a ``SimulatedKill`` still unwinds the whole
  process, which is what the checkpoint/resume tests rely on).
* **workers > 1** runs resume checks and registry writes in the
  *parent* only (one writer for ``manifest.json``), while retry +
  fault-point + span logic runs inside each worker.  Results are
  checkpointed in completion order via the pool's ``on_result`` hook,
  so a parent crash mid-batch loses only unfinished cells.
* A worker that dies (real crash or injected ``SimulatedKill``)
  becomes a ``CellFailure(error_type="WorkerDied")`` recorded with
  status ``"failed"`` — which :meth:`RunRegistry.has_cell` treats as
  absent, so the cell is re-attempted on resume exactly like a
  serially failed cell.
* The guard layer rides along in both modes: a per-task wall-clock
  deadline (``task_deadline`` argument or ``RetryPolicy.task_deadline``)
  arms the pool's hung-worker watchdog, and an open
  :class:`repro.guard.CircuitBreaker` converts still-queued cells of
  the tripped configuration family into immediate
  ``FAILED(circuit_open: <signature>)`` records via the pool's
  ``pre_dispatch`` hook — their thunks never run.

Determinism note: cell thunks carry their own seeds (runner configs
seed every trial explicitly), so the pool's derived per-task seed is
deliberately unused here — bit-exactness between worker counts follows
from order-preserved assembly alone.
"""

from __future__ import annotations

from ..guard.breaker import default_breaker_key
from ..guard.phase import report_phase
from ..resilience.degrade import (
    CellFailure,
    run_cell,
    short_circuit_failure,
)
from ..resilience.errors import RetryBudgetExhausted
from ..resilience.faults import maybe_fire
from ..telemetry import get_metrics, get_tracer
from .pool import Skip, TaskFailure, WorkerError, parallel_map, \
    resolve_workers

__all__ = ["run_cells"]


def _execute_cell(cell_id, thunk, retry_policy):
    """Worker-side body: retry + fault point + span, no registry I/O.

    Returns ``("done", result)`` or ``("failed", info)``; lets
    non-``Exception`` errors (``SimulatedKill``) escape so the child
    process genuinely dies and the parent takes its dead-worker path.
    """
    tracer = get_tracer()
    attempts_made = [0]

    def trial(attempt):
        attempts_made[0] += 1
        index = 0 if attempt is None else attempt.index
        report_phase("cell:%s" % cell_id)
        maybe_fire("sweep.cell", cell=cell_id, attempt=index)
        return thunk(attempt)

    with tracer.span("cell", cell=cell_id) as span:
        try:
            if retry_policy is not None:
                result = retry_policy.run(trial)
            else:
                result = trial(None)
        except Exception as exc:
            cause = exc.last_error if isinstance(exc, RetryBudgetExhausted) \
                and exc.last_error is not None else exc
            attempts = max(attempts_made[0], 1)
            span.set(outcome="failed", attempts=attempts)
            return ("failed", {
                "reason": str(cause),
                "error_type": type(cause).__name__,
                "attempts": attempts,
            })
        span.set(outcome="done", attempts=max(attempts_made[0], 1))
    return ("done", result)


def run_cells(tasks, registry=None, retry_policy=None, fail_soft=True,
              max_workers=None, seed_root=0, payload_of=None,
              result_of=None, breaker=None, breaker_key_of=None,
              task_deadline=None):
    """Evaluate many sweep cells, optionally across worker processes.

    Parameters mirror :func:`repro.resilience.run_cell`; ``tasks`` is a
    sequence of ``(cell_id, thunk)`` pairs and the return value is a
    list of outcomes (result, registry-loaded result, or
    :class:`CellFailure`) in task order.

    ``breaker`` / ``breaker_key_of`` install a
    :class:`repro.guard.CircuitBreaker` over the batch (keys default to
    :func:`repro.guard.default_breaker_key` of the cell id);
    ``task_deadline`` (defaulting to ``retry_policy.task_deadline``)
    arms the pool's hung-worker watchdog, with one re-dispatch per
    retry the policy allows.

    With ``fail_soft=False`` and workers > 1, a failing cell raises
    :class:`~repro.parallel.WorkerError` *after* the in-flight batch
    drains (serial mode raises the original exception immediately) —
    already-finished cells are still checkpointed first.
    """
    tasks = list(tasks)
    workers = resolve_workers(max_workers)
    key_of = breaker_key_of if breaker_key_of is not None \
        else default_breaker_key
    if task_deadline is None and retry_policy is not None:
        task_deadline = retry_policy.task_deadline
    if workers <= 1 or len(tasks) <= 1:
        return [
            run_cell(thunk, cell_id, registry=registry,
                     retry_policy=retry_policy, fail_soft=fail_soft,
                     payload_of=payload_of, result_of=result_of,
                     breaker=breaker, breaker_key=key_of(cell_id))
            for cell_id, thunk in tasks
        ]

    tracer = get_tracer()
    metrics = get_metrics()
    results = [None] * len(tasks)
    pending = []
    for position, (cell_id, thunk) in enumerate(tasks):
        if registry is not None and registry.has_cell(cell_id):
            payload = registry.load_cell(cell_id)
            tracer.event("cell.resumed", cell=cell_id)
            metrics.counter("cells.resumed").inc()
            results[position] = (
                result_of(payload) if result_of is not None else payload
            )
        else:
            pending.append((position, cell_id, thunk))

    def execute(task, seed):
        _, cell_id, thunk = task
        return _execute_cell(cell_id, thunk, retry_policy)

    def pre_dispatch(task, _index):
        """Parent-side breaker check, run just before a cell would fork."""
        if breaker is None:
            return None
        _, cell_id, _thunk = task
        signature = breaker.open_signature(key_of(cell_id))
        if signature is None:
            return None
        return Skip(("skipped", signature))

    def record(task_index, outcome):
        """Parent-side bookkeeping, called per task in completion order."""
        position, cell_id, _ = pending[task_index]
        if isinstance(outcome, TaskFailure):
            failure = CellFailure(
                outcome.message or outcome.reason,
                error_type=outcome.reason,
                attempts=1,
            )
        elif outcome[0] == "skipped":
            results[position] = short_circuit_failure(
                cell_id, key_of(cell_id), outcome[1], registry=registry,
            )
            return
        elif outcome[0] == "failed":
            info = outcome[1]
            failure = CellFailure(
                info["reason"],
                error_type=info["error_type"],
                attempts=info["attempts"],
            )
        else:
            result = outcome[1]
            metrics.counter("cells.done").inc()
            if registry is not None:
                payload = (payload_of(result) if payload_of is not None
                           else result)
                registry.record_cell(cell_id, payload, status="done")
            results[position] = result
            return
        tracer.event(
            "cell.failed",
            cell=cell_id,
            error_type=failure.error_type,
            attempts=failure.attempts,
        )
        metrics.counter("cells.failed").inc()
        if breaker is not None:
            breaker.record_failure(key_of(cell_id), failure.error_type,
                                   failure.reason, count=failure.attempts)
        if registry is not None:
            registry.record_cell(cell_id, failure.to_payload(),
                                 status="failed")
        results[position] = failure

    parallel_map(
        execute,
        pending,
        max_workers=workers,
        seed_root=seed_root,
        on_error="return",
        task_label=lambda task, _index: task[1],
        on_result=record,
        task_deadline=task_deadline,
        deadline_retries=(max(1, retry_policy.max_retries)
                          if retry_policy is not None else 1),
        pre_dispatch=pre_dispatch,
    )

    if not fail_soft:
        for position, outcome in enumerate(results):
            if isinstance(outcome, CellFailure):
                raise WorkerError(TaskFailure(
                    position, outcome.error_type, outcome.reason,
                ))
    return results
