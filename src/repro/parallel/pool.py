"""Deterministic fork-based process pool.

:func:`parallel_map` fans ``fn(item, seed)`` out over worker processes
and returns results **in item order** — bit-identical to running the
same calls serially — regardless of worker count or completion order.
Three design decisions make that guarantee cheap to keep:

* **Determinism lives in the seeds, not the scheduler.**  Every task
  gets ``derive_seed(seed_root, index)``, a pure function of the task's
  position.  Whatever interleaving the OS picks, task *i* always sees
  the same seed, so an order-preserved result list is enough for
  bit-exactness.
* **Fork-per-task, not a pickled job queue.**  Each worker is a fresh
  ``os.fork()`` of the parent at dispatch time: the closure, its
  captured arrays and models, and any module-level state (fault plans,
  cached extractors) are inherited copy-on-write — nothing needs to be
  picklable except the *result*.  Only results travel, over a dedicated
  pipe per child, EOF-framed pickles.
* **Death is observable per task.**  One pipe and one pid per task
  means a worker that dies (OOM kill, ``os._exit``, segfault) is
  attributed to exactly the task it was running; the parent turns it
  into a :class:`TaskFailure` instead of hanging or poisoning a shared
  queue.  ``stdlib`` pools get this wrong in both directions, which is
  why the lint gate (rule PAR001) funnels all fan-out through here.

Workers that raise an ordinary ``Exception`` ship the error back as a
:class:`TaskFailure` payload; raising :class:`BaseException` subclasses
that are not ``Exception`` (notably ``repro.resilience.SimulatedKill``)
hard-exit the child so the parent exercises its real dead-worker path.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import selectors
import sys
import traceback

__all__ = [
    "TaskFailure",
    "WorkerError",
    "derive_seed",
    "get_default_workers",
    "in_worker",
    "parallel_map",
    "resolve_workers",
    "set_default_workers",
]

# Exit code a worker uses when a simulated kill (or any non-Exception
# BaseException) unwinds it: distinguishable from interpreter crashes in
# the failure reason, but handled identically.
_KILL_EXIT = 113

_DEFAULT_WORKERS = 1
_IN_WORKER = False


class TaskFailure:
    """Parent-side record of one task that did not produce a result.

    ``reason`` is ``"WorkerDied"`` when the child process vanished
    without delivering a payload, otherwise the exception class name
    raised inside the worker.  Instances are returned in place of the
    task's result when ``on_error="return"``.
    """

    __slots__ = ("index", "reason", "message", "traceback", "exit_status")

    def __init__(self, index, reason, message="", tb="", exit_status=None):
        self.index = index
        self.reason = reason
        self.message = message
        self.traceback = tb
        self.exit_status = exit_status

    def __repr__(self):
        return "TaskFailure(index=%d, reason=%r, message=%r)" % (
            self.index, self.reason, self.message,
        )


class WorkerError(RuntimeError):
    """Raised by :func:`parallel_map` (``on_error="raise"``) after the
    pool drains, wrapping the first failed task."""

    def __init__(self, failure):
        self.failure = failure
        detail = failure.message or failure.reason
        super().__init__(
            "task %d failed in worker: %s" % (failure.index, detail)
        )


def derive_seed(seed_root, index):
    """Deterministic per-task seed: a pure function of root and index.

    Stable across processes, platforms and Python hash randomization
    (sha256, not ``hash()``), so task *i* of a sweep sees the same seed
    whether it runs serially, on 4 workers, or on 32.
    """
    digest = hashlib.sha256(
        b"repro.parallel:%d:%d" % (int(seed_root), int(index))
    ).digest()
    return int.from_bytes(digest[:4], "big")


def set_default_workers(n):
    """Set the process-wide default worker count (the CLI's --workers)."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = max(1, int(n))
    return _DEFAULT_WORKERS


def get_default_workers():
    """The process-wide default worker count (1 unless the CLI set it)."""
    return _DEFAULT_WORKERS


def resolve_workers(max_workers):
    """Map a ``max_workers`` argument to an effective worker count.

    ``None`` means "use the process default"; inside a worker process
    everything degrades to serial so nested ``parallel_map`` calls never
    fork grandchildren.
    """
    if _IN_WORKER:
        return 1
    if max_workers is None:
        return _DEFAULT_WORKERS
    return max(1, int(max_workers))


def in_worker():
    """True inside a pool worker process (nested pools stay serial)."""
    return _IN_WORKER


# ----------------------------------------------------------------------
# Worker side


def _collect_telemetry(parent_tracer_enabled, parent_metrics_enabled):
    """Install fresh telemetry sinks in the worker; return a drain fn.

    The forked child inherits the parent's Tracer/MetricsRegistry
    objects, but appending to them is useless — the memory is
    copy-on-write and the parent never sees it.  So when the parent had
    telemetry enabled, the worker swaps in fresh sinks and ships their
    contents back in the result envelope for the parent to merge.
    """
    if not (parent_tracer_enabled or parent_metrics_enabled):
        return lambda: (None, None)
    from ..telemetry.metrics import MetricsRegistry, set_metrics
    from ..telemetry.tracer import Tracer, set_tracer

    tracer = Tracer() if parent_tracer_enabled else None
    metrics = MetricsRegistry() if parent_metrics_enabled else None
    if tracer is not None:
        set_tracer(tracer)
    if metrics is not None:
        set_metrics(metrics)

    def drain():
        records = None
        if tracer is not None:
            now = tracer._clock() - tracer._t0
            while tracer._stack:
                top = tracer._stack.pop()
                top.duration = now - top.start
                top.attrs.setdefault("unclosed", True)
                tracer._record(top)
            records = tracer.records
        snapshot = metrics.snapshot() if metrics is not None else None
        return records, snapshot

    return drain


def _child_main(write_fd, fn, item, index, seed, telemetry_flags):
    """Run one task in the forked child; never returns."""
    global _IN_WORKER
    _IN_WORKER = True
    status = 0
    try:
        drain = _collect_telemetry(*telemetry_flags)
        try:
            result = fn(item, seed)
            records, snapshot = drain()
            envelope = {
                "ok": True,
                "result": result,
                "records": records,
                "metrics": snapshot,
            }
        except Exception as exc:
            records, snapshot = drain()
            envelope = {
                "ok": False,
                "reason": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
                "records": records,
                "metrics": snapshot,
            }
        with os.fdopen(write_fd, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
    except BaseException:
        # SimulatedKill or anything else non-recoverable: die without a
        # payload so the parent takes its genuine dead-worker path.
        status = _KILL_EXIT
    finally:
        # Skip interpreter teardown: atexit handlers, buffered parent
        # file handles etc. belong to the parent and must not run here.
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(status)


# ----------------------------------------------------------------------
# Parent side


class _Child:
    __slots__ = ("pid", "read_fd", "index", "buffer", "eof")

    def __init__(self, pid, read_fd, index):
        self.pid = pid
        self.read_fd = read_fd
        self.index = index
        self.buffer = bytearray()
        self.eof = False


def _spawn(fn, item, index, seed, telemetry_flags):
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        _child_main(write_fd, fn, item, index, seed, telemetry_flags)
        os._exit(_KILL_EXIT)  # unreachable; _child_main never returns
    os.close(write_fd)
    return _Child(pid, read_fd, index)


def _reap(child):
    """Wait for the child and decode its envelope (or diagnose death)."""
    _, wait_status = os.waitpid(child.pid, 0)
    exit_status = (
        os.waitstatus_to_exitcode(wait_status)
        if hasattr(os, "waitstatus_to_exitcode")
        else (wait_status >> 8)
    )
    if child.buffer:
        try:
            return pickle.loads(bytes(child.buffer)), exit_status
        except Exception:  # repro: noqa[RES002] truncated payload = the child died mid-write; caller records WorkerDied
            pass
    return None, exit_status


def _merge_worker_telemetry(envelope):
    if envelope.get("records"):
        from ..telemetry.tracer import get_tracer

        get_tracer().merge(envelope["records"])
    if envelope.get("metrics"):
        from ..telemetry.metrics import get_metrics

        get_metrics().merge_snapshot(envelope["metrics"])


def parallel_map(fn, items, max_workers=None, seed_root=0, on_error="raise",
                 task_label=None, on_result=None):
    """Map ``fn(item, seed)`` over ``items``, optionally in parallel.

    Parameters
    ----------
    fn:
        Callable of ``(item, seed)``.  In parallel mode it runs in a
        forked child; it may close over arbitrary unpicklable state, but
        its *return value* must pickle.
    items:
        Sequence of task inputs.
    max_workers:
        Concurrency cap.  ``None`` uses the process default (see
        :func:`set_default_workers`); 1 runs everything inline in this
        process with the *same* derived seeds, so serial and parallel
        runs are bit-identical by construction.
    seed_root:
        Root of the per-task seed derivation (:func:`derive_seed`).
    on_error:
        ``"raise"`` (default) raises :class:`WorkerError` for the first
        failed task after all tasks finish; ``"return"`` puts a
        :class:`TaskFailure` in the result slot instead.
    task_label:
        Optional ``label(item, index)`` used in the per-task telemetry
        event emitted when a worker dies.
    on_result:
        Optional ``on_result(index, result_or_failure)`` invoked as each
        task finishes, in **completion** order (item order when serial).
        Callers use this for crash-safe incremental persistence — e.g.
        checkpointing sweep cells as they land rather than after the
        whole batch.

    Returns
    -------
    list
        One entry per item, in item order.
    """
    if on_error not in ("raise", "return"):
        raise ValueError("on_error must be 'raise' or 'return'; got %r"
                         % (on_error,))
    items = list(items)
    workers = resolve_workers(max_workers)
    results = [None] * len(items)
    failures = []

    if workers <= 1 or len(items) <= 1:
        for index, item in enumerate(items):
            seed = derive_seed(seed_root, index)
            try:
                results[index] = fn(item, seed)
            except Exception as exc:
                if on_error == "raise":
                    raise
                failure = TaskFailure(
                    index, type(exc).__name__, str(exc),
                    traceback.format_exc(),
                )
                failures.append(failure)
                results[index] = failure
            if on_result is not None:
                on_result(index, results[index])
        return results

    from ..telemetry.metrics import get_metrics
    from ..telemetry.tracer import get_tracer

    tracer = get_tracer()
    telemetry_flags = (tracer.enabled, get_metrics().enabled)

    sel = selectors.DefaultSelector()
    pending = iter(enumerate(items))
    live = 0

    def launch():
        nonlocal live
        try:
            index, item = next(pending)
        except StopIteration:
            return False
        child = _spawn(fn, item, index, derive_seed(seed_root, index),
                       telemetry_flags)
        sel.register(child.read_fd, selectors.EVENT_READ, child)
        live += 1
        return True

    def finish(child):
        nonlocal live
        sel.unregister(child.read_fd)
        os.close(child.read_fd)
        live -= 1
        envelope, exit_status = _reap(child)
        index = child.index
        if envelope is None:
            failure = TaskFailure(
                index, "WorkerDied",
                "worker process for task %d exited with status %r before "
                "delivering a result" % (index, exit_status),
                exit_status=exit_status,
            )
            label = (task_label(items[index], index)
                     if task_label is not None else str(index))
            tracer.event("parallel.worker_died", task=label,
                         exit_status=exit_status)
            failures.append(failure)
            results[index] = failure
            if on_result is not None:
                on_result(index, failure)
            return
        _merge_worker_telemetry(envelope)
        if envelope["ok"]:
            results[index] = envelope["result"]
        else:
            failure = TaskFailure(
                index, envelope["reason"], envelope["message"],
                envelope.get("traceback", ""), exit_status=exit_status,
            )
            failures.append(failure)
            results[index] = failure
        if on_result is not None:
            on_result(index, results[index])

    try:
        while launch() and live < workers:
            pass
        while live:
            for key, _ in sel.select():
                child = key.data
                chunk = os.read(child.read_fd, 1 << 16)
                if chunk:
                    child.buffer.extend(chunk)
                else:
                    finish(child)
                    launch()
    finally:
        # On an unexpected parent-side error, don't leak children.
        for key in list(sel.get_map().values()):
            child = key.data
            try:
                os.close(child.read_fd)
            except OSError:  # repro: noqa[RES002] fd already closed by the normal finish path
                pass
            try:
                os.waitpid(child.pid, 0)
            except ChildProcessError:  # repro: noqa[RES002] child already reaped by the normal finish path
                pass
        sel.close()

    if failures and on_error == "raise":
        failures.sort(key=lambda f: f.index)
        raise WorkerError(failures[0])
    return results
