"""Deterministic fork-based process pool.

:func:`parallel_map` fans ``fn(item, seed)`` out over worker processes
and returns results **in item order** — bit-identical to running the
same calls serially — regardless of worker count or completion order.
Three design decisions make that guarantee cheap to keep:

* **Determinism lives in the seeds, not the scheduler.**  Every task
  gets ``derive_seed(seed_root, index)``, a pure function of the task's
  position.  Whatever interleaving the OS picks, task *i* always sees
  the same seed, so an order-preserved result list is enough for
  bit-exactness.
* **Fork-per-task, not a pickled job queue.**  Each worker is a fresh
  ``os.fork()`` of the parent at dispatch time: the closure, its
  captured arrays and models, and any module-level state (fault plans,
  cached extractors) are inherited copy-on-write — nothing needs to be
  picklable except the *result*.  Only results travel, over a dedicated
  pipe per child, as length-prefixed pickled frames.
* **Death is observable per task.**  One pipe and one pid per task
  means a worker that dies (OOM kill, ``os._exit``, segfault) is
  attributed to exactly the task it was running; the parent turns it
  into a :class:`TaskFailure` instead of hanging or poisoning a shared
  queue.  ``stdlib`` pools get this wrong in both directions, which is
  why the lint gate (rule PAR001) funnels all fan-out through here.

The pool is supervised (see :mod:`repro.guard`):

* **Watchdog** — with ``task_deadline`` set, a worker that produces no
  result within its wall-clock budget is SIGKILLed and the task is
  **re-dispatched** with the *same* derived seed (up to
  ``deadline_retries`` times), so a hung-then-killed-then-rerun task is
  bit-identical to one that never hung.  A task that hangs on every
  dispatch becomes ``TaskFailure(reason="WatchdogKilled")`` carrying
  its elapsed time and the last phase the worker reported
  (:func:`repro.guard.report_phase` heartbeats stream over the result
  pipe).
* **Pre-dispatch short-circuit** — a ``pre_dispatch(item, index)`` hook
  may return :class:`Skip` to settle a task without forking at all;
  :func:`repro.parallel.run_cells` uses this to honor open circuit
  breakers mid-batch.

Workers that raise an ordinary ``Exception`` ship the error back as a
:class:`TaskFailure` payload; raising :class:`BaseException` subclasses
that are not ``Exception`` (notably ``repro.resilience.SimulatedKill``)
hard-exit the child so the parent exercises its real dead-worker path.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import selectors
import signal
import struct
import sys
import time
import traceback

from ..telemetry.clock import monotonic

__all__ = [
    "PoolInterrupted",
    "Skip",
    "TaskFailure",
    "WorkerError",
    "derive_seed",
    "get_default_workers",
    "in_worker",
    "parallel_map",
    "resolve_workers",
    "set_default_workers",
]

# Exit code a worker uses when a simulated kill (or any non-Exception
# BaseException) unwinds it: distinguishable from interpreter crashes in
# the failure reason, but handled identically.
_KILL_EXIT = 113

#: Length prefix for pipe frames: 4-byte big-endian payload size.
_FRAME_HEADER = struct.Struct(">I")

_DEFAULT_WORKERS = 1
_IN_WORKER = False


class TaskFailure:
    """Parent-side record of one task that did not produce a result.

    ``reason`` is ``"WorkerDied"`` when the child process vanished
    without delivering a payload, ``"WatchdogKilled"`` when the pool's
    watchdog SIGKILLed a worker that exceeded its task deadline on
    every dispatch, and otherwise the exception class name raised
    inside the worker.  Instances are returned in place of the task's
    result when ``on_error="return"``.
    """

    __slots__ = ("index", "reason", "message", "traceback", "exit_status")

    def __init__(self, index, reason, message="", tb="", exit_status=None):
        self.index = index
        self.reason = reason
        self.message = message
        self.traceback = tb
        self.exit_status = exit_status

    def __repr__(self):
        return "TaskFailure(index=%d, reason=%r, message=%r)" % (
            self.index, self.reason, self.message,
        )


class WorkerError(RuntimeError):
    """Raised by :func:`parallel_map` (``on_error="raise"``) after the
    pool drains, wrapping the first failed task."""

    def __init__(self, failure):
        self.failure = failure
        detail = failure.message or failure.reason
        super().__init__(
            "task %d failed in worker: %s" % (failure.index, detail)
        )


class PoolInterrupted(KeyboardInterrupt):
    """Structured interruption of a :func:`parallel_map` call.

    Raised (instead of a raw ``KeyboardInterrupt``) when SIGINT or
    SIGTERM unwinds the pool, *after* every outstanding worker has been
    SIGKILLed and reaped — an interrupted pool never leaks orphan
    processes.  Subclasses ``KeyboardInterrupt`` so existing
    ``except KeyboardInterrupt`` handlers (including the serve daemon's
    requeue path) keep working, while callers that care can read:

    ``signal_name``
        ``"SIGINT"`` or ``"SIGTERM"``.
    ``completed``
        Sorted indices of tasks that settled (result or failure
        delivered — their ``on_result`` callbacks already ran).
    ``pending``
        Sorted indices of tasks that did not settle; any in-flight
        worker for them was killed.  Re-running them with the same
        ``seed_root`` reproduces their original seeds exactly.
    """

    def __init__(self, signal_name, completed, pending):
        self.signal_name = signal_name
        self.completed = list(completed)
        self.pending = list(pending)
        super().__init__(
            "parallel_map interrupted by %s: %d task(s) settled, "
            "%d pending" % (signal_name, len(self.completed),
                            len(self.pending))
        )


class Skip:
    """Sentinel a ``pre_dispatch`` hook returns to settle a task inline.

    The wrapped ``value`` becomes the task's result without a worker
    ever being forked — how open circuit breakers convert queued cells
    into immediate failures mid-batch.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


def derive_seed(seed_root, index):
    """Deterministic per-task seed: a pure function of root and index.

    Stable across processes, platforms and Python hash randomization
    (sha256, not ``hash()``), so task *i* of a sweep sees the same seed
    whether it runs serially, on 4 workers, or on 32 — and whether or
    not an earlier dispatch of it was watchdog-killed.
    """
    digest = hashlib.sha256(
        b"repro.parallel:%d:%d" % (int(seed_root), int(index))
    ).digest()
    return int.from_bytes(digest[:4], "big")


def set_default_workers(n):
    """Set the process-wide default worker count (the CLI's --workers)."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = max(1, int(n))
    return _DEFAULT_WORKERS


def get_default_workers():
    """The process-wide default worker count (1 unless the CLI set it)."""
    return _DEFAULT_WORKERS


def resolve_workers(max_workers):
    """Map a ``max_workers`` argument to an effective worker count.

    ``None`` means "use the process default"; inside a worker process
    everything degrades to serial so nested ``parallel_map`` calls never
    fork grandchildren.
    """
    if _IN_WORKER:
        return 1
    if max_workers is None:
        return _DEFAULT_WORKERS
    return max(1, int(max_workers))


def in_worker():
    """True inside a pool worker process (nested pools stay serial)."""
    return _IN_WORKER


# ----------------------------------------------------------------------
# Pipe frames


def _send_frame(write_fd, obj):
    """Write one length-prefixed pickle frame to a raw fd."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    data = _FRAME_HEADER.pack(len(payload)) + payload
    view = memoryview(data)
    while view:
        written = os.write(write_fd, view)
        view = view[written:]


def _drain_frames(child):
    """Decode every complete frame buffered for ``child``.

    ``("phase", name)`` heartbeats update the child's last-known phase;
    the final ``("result", envelope)`` frame carries the task outcome.
    A trailing partial frame (worker died mid-write) stays in the
    buffer and is simply never completed — the caller sees a missing
    envelope and records ``WorkerDied``.
    """
    buffer = child.buffer
    header = _FRAME_HEADER.size
    while len(buffer) >= header:
        (size,) = _FRAME_HEADER.unpack(buffer[:header])
        if len(buffer) < header + size:
            return
        payload = bytes(buffer[header:header + size])
        del buffer[:header + size]
        try:
            kind, value = pickle.loads(payload)
        except Exception:
            # A frame the child corrupted mid-crash is equivalent to no
            # frame; the reaper records WorkerDied from the missing envelope.
            continue
        if kind == "phase":
            child.phase = value
        elif kind == "result":
            child.envelope = value


# ----------------------------------------------------------------------
# Worker side


def _collect_telemetry(parent_tracer_enabled, parent_metrics_enabled):
    """Install fresh telemetry sinks in the worker; return a drain fn.

    The forked child inherits the parent's Tracer/MetricsRegistry
    objects, but appending to them is useless — the memory is
    copy-on-write and the parent never sees it.  So when the parent had
    telemetry enabled, the worker swaps in fresh sinks and ships their
    contents back in the result envelope for the parent to merge.
    """
    if not (parent_tracer_enabled or parent_metrics_enabled):
        return lambda: (None, None)
    from ..telemetry.metrics import MetricsRegistry, set_metrics
    from ..telemetry.tracer import Tracer, set_tracer

    tracer = Tracer() if parent_tracer_enabled else None
    metrics = MetricsRegistry() if parent_metrics_enabled else None
    if tracer is not None:
        set_tracer(tracer)
    if metrics is not None:
        set_metrics(metrics)

    def drain():
        records = None
        if tracer is not None:
            now = tracer._clock() - tracer._t0
            while tracer._stack:
                top = tracer._stack.pop()
                top.duration = now - top.start
                top.attrs.setdefault("unclosed", True)
                tracer._record(top)
            records = tracer.records
        snapshot = metrics.snapshot() if metrics is not None else None
        return records, snapshot

    return drain


def _child_main(write_fd, fn, item, index, seed, telemetry_flags,
                dispatch, label):
    """Run one task in the forked child; never returns."""
    global _IN_WORKER
    _IN_WORKER = True
    status = 0
    try:
        from ..guard.phase import set_phase_reporter
        from ..resilience.faults import maybe_fire

        # Stream phase heartbeats over the result pipe so the parent
        # knows what a worker was doing if it has to be watchdog-killed.
        set_phase_reporter(
            lambda name: _send_frame(write_fd, ("phase", name))
        )
        drain = _collect_telemetry(*telemetry_flags)
        try:
            maybe_fire("worker.task", index=index, task=label,
                       dispatch=dispatch)
            result = fn(item, seed)
            records, snapshot = drain()
            envelope = {
                "ok": True,
                "result": result,
                "records": records,
                "metrics": snapshot,
            }
        except Exception as exc:
            records, snapshot = drain()
            envelope = {
                "ok": False,
                "reason": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
                "records": records,
                "metrics": snapshot,
            }
        _send_frame(write_fd, ("result", envelope))
        os.close(write_fd)
    except BaseException:
        # SimulatedKill or anything else non-recoverable: die without a
        # result frame so the parent takes its genuine dead-worker path.
        status = _KILL_EXIT
    finally:
        # Skip interpreter teardown: atexit handlers, buffered parent
        # file handles etc. belong to the parent and must not run here.
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(status)


# ----------------------------------------------------------------------
# Parent side


class _Child:
    __slots__ = ("pid", "read_fd", "index", "buffer", "envelope", "phase",
                 "started", "dispatch")

    def __init__(self, pid, read_fd, index, dispatch):
        self.pid = pid
        self.read_fd = read_fd
        self.index = index
        self.buffer = bytearray()
        self.envelope = None
        self.phase = None
        self.started = monotonic()
        self.dispatch = dispatch


def _spawn(fn, item, index, seed, telemetry_flags, dispatch, label):
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        _child_main(write_fd, fn, item, index, seed, telemetry_flags,
                    dispatch, label)
        os._exit(_KILL_EXIT)  # unreachable; _child_main never returns
    os.close(write_fd)
    return _Child(pid, read_fd, index, dispatch)


def _exit_status_of(wait_status):
    """Decode a raw ``waitpid`` status, signal-aware.

    Mirrors ``os.waitstatus_to_exitcode`` (negative signal number for a
    signal-killed child, plain exit code otherwise) using the POSIX
    macros directly: the naive ``wait_status >> 8`` decodes a
    signal-killed child as exit 0, silently misreporting a SIGKILL/OOM
    kill as a clean exit.
    """
    if os.WIFSIGNALED(wait_status):
        return -os.WTERMSIG(wait_status)
    if os.WIFEXITED(wait_status):
        return os.WEXITSTATUS(wait_status)
    return wait_status


def _sigkill(pid):
    """Best-effort SIGKILL (the process may already be gone)."""
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:  # repro: noqa[RES002] already dead, which is the desired end state
        pass


def _reap(child, kill_after=1.0):
    """Collect the child's exit status without ever blocking the pool.

    Called once the child's pipe reached EOF (it exited or was
    SIGKILLed), so exit is imminent: poll ``WNOHANG`` with a short
    backoff instead of the old blocking ``os.waitpid(pid, 0)``, and
    escalate to SIGKILL if the child somehow lingers past
    ``kill_after`` seconds (a hung atexit path must not wedge the
    supervisor).
    """
    delay = 0.0005
    waited = 0.0
    killed = False
    while True:
        try:
            pid, wait_status = os.waitpid(child.pid, os.WNOHANG)
        except ChildProcessError:
            return None
        if pid != 0:
            return _exit_status_of(wait_status)
        if not killed and waited >= kill_after:
            _sigkill(child.pid)
            killed = True
        time.sleep(delay)
        waited += delay
        delay = min(delay * 2, 0.05)


def _merge_worker_telemetry(envelope):
    if envelope.get("records"):
        from ..telemetry.tracer import get_tracer

        get_tracer().merge(envelope["records"])
    if envelope.get("metrics"):
        from ..telemetry.metrics import get_metrics

        get_metrics().merge_snapshot(envelope["metrics"])


def parallel_map(fn, items, max_workers=None, seed_root=0, on_error="raise",
                 task_label=None, on_result=None, task_deadline=None,
                 deadline_retries=1, pre_dispatch=None):
    """Map ``fn(item, seed)`` over ``items``, optionally in parallel.

    Parameters
    ----------
    fn:
        Callable of ``(item, seed)``.  In parallel mode it runs in a
        forked child; it may close over arbitrary unpicklable state, but
        its *return value* must pickle.
    items:
        Sequence of task inputs.
    max_workers:
        Concurrency cap.  ``None`` uses the process default (see
        :func:`set_default_workers`); 1 runs everything inline in this
        process with the *same* derived seeds, so serial and parallel
        runs are bit-identical by construction.
    seed_root:
        Root of the per-task seed derivation (:func:`derive_seed`).
    on_error:
        ``"raise"`` (default) raises :class:`WorkerError` for the first
        failed task after all tasks finish; ``"return"`` puts a
        :class:`TaskFailure` in the result slot instead.
    task_label:
        Optional ``label(item, index)`` used in per-task telemetry
        events and in the ``worker.task`` fault-point context.
    on_result:
        Optional ``on_result(index, result_or_failure)`` invoked as each
        task finishes, in **completion** order (item order when serial).
        Callers use this for crash-safe incremental persistence — e.g.
        checkpointing sweep cells as they land rather than after the
        whole batch.
    task_deadline:
        Optional per-task wall-clock budget in seconds, enforced by the
        pool's watchdog (parallel mode only — a serial pool has no
        supervisor process to preempt a hung call).  A worker past its
        deadline is SIGKILLed and the task re-dispatched with the same
        derived seed; after ``deadline_retries`` re-dispatches it
        settles as ``TaskFailure(reason="WatchdogKilled")``.
    deadline_retries:
        Re-dispatches allowed per task after a watchdog kill
        (default 1).
    pre_dispatch:
        Optional ``pre_dispatch(item, index)`` called in the parent just
        before a task would fork.  Return :class:`Skip` to settle the
        task with ``Skip.value`` instead of running it, or None to run
        normally.

    Returns
    -------
    list
        One entry per item, in item order.

    Raises
    ------
    PoolInterrupted
        When SIGINT or SIGTERM arrives mid-map.  A temporary SIGTERM
        handler (installed only in the main thread, restored on exit)
        turns termination into the same unwind as Ctrl-C; either way
        every outstanding worker is SIGKILLed and reaped before the
        exception escapes, and it carries which task indices settled
        and which are still pending.
    """
    if on_error not in ("raise", "return"):
        raise ValueError("on_error must be 'raise' or 'return'; got %r"
                         % (on_error,))
    items = list(items)
    workers = resolve_workers(max_workers)
    results = [None] * len(items)
    failures = []
    settled = set()

    interrupt = {"signal": "SIGINT"}

    def on_interrupt(signum, frame):
        # SIGTERM takes the exact unwind path SIGINT does; the
        # except-KeyboardInterrupt below restructures both.
        interrupt["signal"] = signal.Signals(signum).name
        raise KeyboardInterrupt()

    try:
        previous_term = signal.signal(signal.SIGTERM, on_interrupt)
    except ValueError:  # not the main thread; SIGTERM keeps its disposition
        previous_term = None

    def interrupted():
        return PoolInterrupted(
            interrupt["signal"], sorted(settled),
            [i for i in range(len(items)) if i not in settled],
        )

    def restore_sigterm():
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)

    def settle_skip(index, skip):
        if not isinstance(skip, Skip):
            raise TypeError(
                "pre_dispatch must return Skip(value) or None; got %r"
                % (skip,)
            )
        results[index] = skip.value
        settled.add(index)
        if on_result is not None:
            on_result(index, skip.value)

    if workers <= 1 or len(items) <= 1:
        try:
            for index, item in enumerate(items):
                if pre_dispatch is not None:
                    skip = pre_dispatch(item, index)
                    if skip is not None:
                        settle_skip(index, skip)
                        continue
                seed = derive_seed(seed_root, index)
                try:
                    results[index] = fn(item, seed)
                except Exception as exc:
                    if on_error == "raise":
                        raise
                    failure = TaskFailure(
                        index, type(exc).__name__, str(exc),
                        traceback.format_exc(),
                    )
                    failures.append(failure)
                    results[index] = failure
                settled.add(index)
                if on_result is not None:
                    on_result(index, results[index])
        except KeyboardInterrupt:
            raise interrupted() from None
        finally:
            restore_sigterm()
        return results

    from ..telemetry.metrics import get_metrics
    from ..telemetry.tracer import get_tracer

    tracer = get_tracer()
    metrics = get_metrics()
    telemetry_flags = (tracer.enabled, metrics.enabled)

    def label_of(index):
        if task_label is not None:
            return task_label(items[index], index)
        return str(index)

    sel = selectors.DefaultSelector()
    pending = iter(enumerate(items))
    live = 0

    def spawn_task(index, dispatch):
        nonlocal live
        child = _spawn(fn, items[index], index,
                       derive_seed(seed_root, index), telemetry_flags,
                       dispatch, label_of(index))
        sel.register(child.read_fd, selectors.EVENT_READ, child)
        live += 1

    def launch():
        while True:
            try:
                index, item = next(pending)
            except StopIteration:
                return False
            if pre_dispatch is not None:
                skip = pre_dispatch(item, index)
                if skip is not None:
                    settle_skip(index, skip)
                    continue
            spawn_task(index, 0)
            return True

    def settle_failure(failure):
        failures.append(failure)
        results[failure.index] = failure
        settled.add(failure.index)
        if on_result is not None:
            on_result(failure.index, failure)

    def finish(child):
        nonlocal live
        sel.unregister(child.read_fd)
        os.close(child.read_fd)
        live -= 1
        exit_status = _reap(child)
        index = child.index
        envelope = child.envelope
        if envelope is None:
            phase = "" if child.phase is None else \
                ", last phase %r" % child.phase
            failure = TaskFailure(
                index, "WorkerDied",
                "worker process for task %d exited with status %r before "
                "delivering a result%s" % (index, exit_status, phase),
                exit_status=exit_status,
            )
            tracer.event("parallel.worker_died", task=label_of(index),
                         exit_status=exit_status, phase=child.phase)
            settle_failure(failure)
            return
        _merge_worker_telemetry(envelope)
        if envelope["ok"]:
            results[index] = envelope["result"]
        else:
            failure = TaskFailure(
                index, envelope["reason"], envelope["message"],
                envelope.get("traceback", ""), exit_status=exit_status,
            )
            failures.append(failure)
            results[index] = failure
        settled.add(index)
        if on_result is not None:
            on_result(index, results[index])

    def watchdog_kill(child, now):
        """SIGKILL a hung worker; re-dispatch or settle the task.

        Returns True when the task was re-dispatched (pool occupancy
        unchanged), False when it settled as a failure (slot freed).
        """
        nonlocal live
        sel.unregister(child.read_fd)
        os.close(child.read_fd)
        live -= 1
        _sigkill(child.pid)
        _reap(child)
        index = child.index
        elapsed = now - child.started
        tracer.event(
            "guard.watchdog_kill", task=label_of(index),
            elapsed=round(elapsed, 3), phase=child.phase,
            dispatch=child.dispatch,
        )
        metrics.counter("guard.watchdog_kills").inc()
        if child.dispatch < deadline_retries:
            spawn_task(index, child.dispatch + 1)
            return True
        phase = "" if child.phase is None else \
            ", last phase %r" % child.phase
        settle_failure(TaskFailure(
            index, "WatchdogKilled",
            "task %d (%s) exceeded its %.3gs deadline on %d dispatch(es) "
            "(%.2fs elapsed%s)" % (index, label_of(index), task_deadline,
                                   child.dispatch + 1, elapsed, phase),
        ))
        return False

    try:
        try:
            while live < workers and launch():
                pass
            while live:
                timeout = None
                if task_deadline is not None:
                    now = monotonic()
                    timeout = max(0.0, min(
                        child.started + task_deadline - now
                        for child in (key.data
                                      for key in sel.get_map().values())
                    ))
                for key, _ in sel.select(timeout):
                    child = key.data
                    chunk = os.read(child.read_fd, 1 << 16)
                    if chunk:
                        child.buffer.extend(chunk)
                        _drain_frames(child)
                    else:
                        finish(child)
                        launch()
                if task_deadline is not None:
                    now = monotonic()
                    for key in list(sel.get_map().values()):
                        child = key.data
                        if now - child.started >= task_deadline:
                            if not watchdog_kill(child, now):
                                launch()
        finally:
            # On an unexpected parent-side error (including SIGINT /
            # SIGTERM), don't leak (or block on) children: kill
            # outstanding workers before reaping them.
            for key in list(sel.get_map().values()):
                child = key.data
                try:
                    os.close(child.read_fd)
                except OSError:  # repro: noqa[RES002] fd already closed by the normal finish path
                    pass
                _sigkill(child.pid)
                try:
                    os.waitpid(child.pid, 0)
                except ChildProcessError:  # repro: noqa[RES002] child already reaped by the normal finish path
                    pass
            sel.close()
    except KeyboardInterrupt:
        # Workers are dead and reaped (the finally above ran first);
        # surface a structured interruption instead of a raw ^C.
        raise interrupted() from None
    finally:
        restore_sigterm()

    if failures and on_error == "raise":
        failures.sort(key=lambda f: f.index)
        raise WorkerError(failures[0])
    return results
