"""Deterministic fork-based process pool.

:func:`parallel_map` fans ``fn(item, seed)`` out over worker processes
and returns results **in item order** — bit-identical to running the
same calls serially — regardless of worker count or completion order.
Three design decisions make that guarantee cheap to keep:

* **Determinism lives in the seeds, not the scheduler.**  Every task
  gets ``derive_seed(seed_root, index)``, a pure function of the task's
  position.  Whatever interleaving the OS picks, task *i* always sees
  the same seed, so an order-preserved result list is enough for
  bit-exactness.
* **Fork-per-task, not a pickled job queue.**  Each worker is a fresh
  ``os.fork()`` of the parent at dispatch time: the closure, its
  captured arrays and models, and any module-level state (fault plans,
  cached extractors) are inherited copy-on-write — nothing needs to be
  picklable except the *result*.  Only results travel, over a dedicated
  pipe per child, as length-prefixed pickled frames.
* **Death is observable per task.**  One pipe and one pid per task
  means a worker that dies (OOM kill, ``os._exit``, segfault) is
  attributed to exactly the task it was running; the parent turns it
  into a :class:`TaskFailure` instead of hanging or poisoning a shared
  queue.  ``stdlib`` pools get this wrong in both directions, which is
  why the lint gate (rule PAR001) funnels all fan-out through here.

The pool is supervised (see :mod:`repro.guard`):

* **Watchdog** — with ``task_deadline`` set, a worker that produces no
  result within its wall-clock budget is SIGKILLed and the task is
  **re-dispatched** with the *same* derived seed (up to
  ``deadline_retries`` times), so a hung-then-killed-then-rerun task is
  bit-identical to one that never hung.  A task that hangs on every
  dispatch becomes ``TaskFailure(reason="WatchdogKilled")`` carrying
  its elapsed time and the last phase the worker reported
  (:func:`repro.guard.report_phase` heartbeats stream over the result
  pipe).
* **Pre-dispatch short-circuit** — a ``pre_dispatch(item, index)`` hook
  may return :class:`Skip` to settle a task without forking at all;
  :func:`repro.parallel.run_cells` uses this to honor open circuit
  breakers mid-batch.

Workers that raise an ordinary ``Exception`` ship the error back as a
:class:`TaskFailure` payload; raising :class:`BaseException` subclasses
that are not ``Exception`` (notably ``repro.resilience.SimulatedKill``)
hard-exit the child so the parent exercises its real dead-worker path.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import selectors
import signal
import struct
import sys
import time
import traceback
from collections import deque

from ..telemetry.clock import monotonic

__all__ = [
    "PersistentPool",
    "PoolInterrupted",
    "Skip",
    "TaskFailure",
    "WorkerError",
    "derive_seed",
    "get_default_workers",
    "in_worker",
    "parallel_map",
    "resolve_workers",
    "set_default_workers",
]

# Exit code a worker uses when a simulated kill (or any non-Exception
# BaseException) unwinds it: distinguishable from interpreter crashes in
# the failure reason, but handled identically.
_KILL_EXIT = 113

#: Length prefix for pipe frames: 4-byte big-endian payload size.
_FRAME_HEADER = struct.Struct(">I")

_DEFAULT_WORKERS = 1
_IN_WORKER = False


class TaskFailure:
    """Parent-side record of one task that did not produce a result.

    ``reason`` is ``"WorkerDied"`` when the child process vanished
    without delivering a payload, ``"WatchdogKilled"`` when the pool's
    watchdog SIGKILLed a worker that exceeded its task deadline on
    every dispatch, and otherwise the exception class name raised
    inside the worker.  Instances are returned in place of the task's
    result when ``on_error="return"``.
    """

    __slots__ = ("index", "reason", "message", "traceback", "exit_status")

    def __init__(self, index, reason, message="", tb="", exit_status=None):
        self.index = index
        self.reason = reason
        self.message = message
        self.traceback = tb
        self.exit_status = exit_status

    def __repr__(self):
        return "TaskFailure(index=%d, reason=%r, message=%r)" % (
            self.index, self.reason, self.message,
        )


class WorkerError(RuntimeError):
    """Raised by :func:`parallel_map` (``on_error="raise"``) after the
    pool drains, wrapping the first failed task."""

    def __init__(self, failure):
        self.failure = failure
        detail = failure.message or failure.reason
        super().__init__(
            "task %d failed in worker: %s" % (failure.index, detail)
        )


class PoolInterrupted(KeyboardInterrupt):
    """Structured interruption of a :func:`parallel_map` call.

    Raised (instead of a raw ``KeyboardInterrupt``) when SIGINT or
    SIGTERM unwinds the pool, *after* every outstanding worker has been
    SIGKILLed and reaped — an interrupted pool never leaks orphan
    processes.  Subclasses ``KeyboardInterrupt`` so existing
    ``except KeyboardInterrupt`` handlers (including the serve daemon's
    requeue path) keep working, while callers that care can read:

    ``signal_name``
        ``"SIGINT"`` or ``"SIGTERM"``.
    ``completed``
        Sorted indices of tasks that settled (result or failure
        delivered — their ``on_result`` callbacks already ran).
    ``pending``
        Sorted indices of tasks that did not settle; any in-flight
        worker for them was killed.  Re-running them with the same
        ``seed_root`` reproduces their original seeds exactly.
    """

    def __init__(self, signal_name, completed, pending):
        self.signal_name = signal_name
        self.completed = list(completed)
        self.pending = list(pending)
        super().__init__(
            "parallel_map interrupted by %s: %d task(s) settled, "
            "%d pending" % (signal_name, len(self.completed),
                            len(self.pending))
        )


class Skip:
    """Sentinel a ``pre_dispatch`` hook returns to settle a task inline.

    The wrapped ``value`` becomes the task's result without a worker
    ever being forked — how open circuit breakers convert queued cells
    into immediate failures mid-batch.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


def derive_seed(seed_root, index):
    """Deterministic per-task seed: a pure function of root and index.

    Stable across processes, platforms and Python hash randomization
    (sha256, not ``hash()``), so task *i* of a sweep sees the same seed
    whether it runs serially, on 4 workers, or on 32 — and whether or
    not an earlier dispatch of it was watchdog-killed.
    """
    digest = hashlib.sha256(
        b"repro.parallel:%d:%d" % (int(seed_root), int(index))
    ).digest()
    return int.from_bytes(digest[:4], "big")


def set_default_workers(n):
    """Set the process-wide default worker count (the CLI's --workers)."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = max(1, int(n))
    return _DEFAULT_WORKERS


def get_default_workers():
    """The process-wide default worker count (1 unless the CLI set it)."""
    return _DEFAULT_WORKERS


def resolve_workers(max_workers):
    """Map a ``max_workers`` argument to an effective worker count.

    ``None`` means "use the process default"; inside a worker process
    everything degrades to serial so nested ``parallel_map`` calls never
    fork grandchildren.
    """
    if _IN_WORKER:
        return 1
    if max_workers is None:
        return _DEFAULT_WORKERS
    return max(1, int(max_workers))


def in_worker():
    """True inside a pool worker process (nested pools stay serial)."""
    return _IN_WORKER


# ----------------------------------------------------------------------
# Pipe frames


def _send_frame(write_fd, obj):
    """Write one length-prefixed pickle frame to a raw fd."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    data = _FRAME_HEADER.pack(len(payload)) + payload
    view = memoryview(data)
    while view:
        written = os.write(write_fd, view)
        view = view[written:]


def _drain_frames(child):
    """Decode every complete frame buffered for ``child``.

    ``("phase", name)`` heartbeats update the child's last-known phase;
    the final ``("result", envelope)`` frame carries the task outcome.
    A trailing partial frame (worker died mid-write) stays in the
    buffer and is simply never completed — the caller sees a missing
    envelope and records ``WorkerDied``.
    """
    buffer = child.buffer
    header = _FRAME_HEADER.size
    while len(buffer) >= header:
        (size,) = _FRAME_HEADER.unpack(buffer[:header])
        if len(buffer) < header + size:
            return
        payload = bytes(buffer[header:header + size])
        del buffer[:header + size]
        try:
            kind, value = pickle.loads(payload)
        except Exception:
            # A frame the child corrupted mid-crash is equivalent to no
            # frame; the reaper records WorkerDied from the missing envelope.
            continue
        if kind == "phase":
            child.phase = value
        elif kind == "result":
            child.envelope = value


# ----------------------------------------------------------------------
# Worker side


def _collect_telemetry(parent_tracer_enabled, parent_metrics_enabled):
    """Install fresh telemetry sinks in the worker; return a drain fn.

    The forked child inherits the parent's Tracer/MetricsRegistry
    objects, but appending to them is useless — the memory is
    copy-on-write and the parent never sees it.  So when the parent had
    telemetry enabled, the worker swaps in fresh sinks and ships their
    contents back in the result envelope for the parent to merge.
    """
    if not (parent_tracer_enabled or parent_metrics_enabled):
        return lambda: (None, None)
    from ..telemetry.metrics import MetricsRegistry, set_metrics
    from ..telemetry.tracer import Tracer, set_tracer

    tracer = Tracer() if parent_tracer_enabled else None
    metrics = MetricsRegistry() if parent_metrics_enabled else None
    if tracer is not None:
        set_tracer(tracer)
    if metrics is not None:
        set_metrics(metrics)

    def drain():
        records = None
        if tracer is not None:
            now = tracer._clock() - tracer._t0
            while tracer._stack:
                top = tracer._stack.pop()
                top.duration = now - top.start
                top.attrs.setdefault("unclosed", True)
                tracer._record(top)
            records = tracer.records
        snapshot = metrics.snapshot() if metrics is not None else None
        return records, snapshot

    return drain


def _child_main(write_fd, fn, item, index, seed, telemetry_flags,
                dispatch, label):
    """Run one task in the forked child; never returns."""
    global _IN_WORKER
    _IN_WORKER = True
    status = 0
    try:
        from ..guard.phase import set_phase_reporter
        from ..resilience.faults import maybe_fire

        # Stream phase heartbeats over the result pipe so the parent
        # knows what a worker was doing if it has to be watchdog-killed.
        set_phase_reporter(
            lambda name: _send_frame(write_fd, ("phase", name))
        )
        drain = _collect_telemetry(*telemetry_flags)
        try:
            maybe_fire("worker.task", index=index, task=label,
                       dispatch=dispatch)
            result = fn(item, seed)
            records, snapshot = drain()
            envelope = {
                "ok": True,
                "result": result,
                "records": records,
                "metrics": snapshot,
            }
        except Exception as exc:
            records, snapshot = drain()
            envelope = {
                "ok": False,
                "reason": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
                "records": records,
                "metrics": snapshot,
            }
        _send_frame(write_fd, ("result", envelope))
        os.close(write_fd)
    except BaseException:
        # SimulatedKill or anything else non-recoverable: die without a
        # result frame so the parent takes its genuine dead-worker path.
        status = _KILL_EXIT
    finally:
        # Skip interpreter teardown: atexit handlers, buffered parent
        # file handles etc. belong to the parent and must not run here.
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(status)


# ----------------------------------------------------------------------
# Parent side


class _Child:
    __slots__ = ("pid", "read_fd", "index", "buffer", "envelope", "phase",
                 "started", "dispatch")

    def __init__(self, pid, read_fd, index, dispatch):
        self.pid = pid
        self.read_fd = read_fd
        self.index = index
        self.buffer = bytearray()
        self.envelope = None
        self.phase = None
        self.started = monotonic()
        self.dispatch = dispatch


def _spawn(fn, item, index, seed, telemetry_flags, dispatch, label):
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        _child_main(write_fd, fn, item, index, seed, telemetry_flags,
                    dispatch, label)
        os._exit(_KILL_EXIT)  # unreachable; _child_main never returns
    os.close(write_fd)
    return _Child(pid, read_fd, index, dispatch)


def _exit_status_of(wait_status):
    """Decode a raw ``waitpid`` status, signal-aware.

    Mirrors ``os.waitstatus_to_exitcode`` (negative signal number for a
    signal-killed child, plain exit code otherwise) using the POSIX
    macros directly: the naive ``wait_status >> 8`` decodes a
    signal-killed child as exit 0, silently misreporting a SIGKILL/OOM
    kill as a clean exit.
    """
    if os.WIFSIGNALED(wait_status):
        return -os.WTERMSIG(wait_status)
    if os.WIFEXITED(wait_status):
        return os.WEXITSTATUS(wait_status)
    return wait_status


def _sigkill(pid):
    """Best-effort SIGKILL (the process may already be gone)."""
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:  # repro: noqa[RES002] already dead, which is the desired end state
        pass


def _reap(child, kill_after=1.0):
    """Collect the child's exit status without ever blocking the pool.

    Called once the child's pipe reached EOF (it exited or was
    SIGKILLed), so exit is imminent: poll ``WNOHANG`` with a short
    backoff instead of the old blocking ``os.waitpid(pid, 0)``, and
    escalate to SIGKILL if the child somehow lingers past
    ``kill_after`` seconds (a hung atexit path must not wedge the
    supervisor).
    """
    delay = 0.0005
    waited = 0.0
    killed = False
    while True:
        try:
            pid, wait_status = os.waitpid(child.pid, os.WNOHANG)
        except ChildProcessError:
            return None
        if pid != 0:
            return _exit_status_of(wait_status)
        if not killed and waited >= kill_after:
            _sigkill(child.pid)
            killed = True
        time.sleep(delay)
        waited += delay
        delay = min(delay * 2, 0.05)


def _merge_worker_telemetry(envelope):
    if envelope.get("records"):
        from ..telemetry.tracer import get_tracer

        get_tracer().merge(envelope["records"])
    if envelope.get("metrics"):
        from ..telemetry.metrics import get_metrics

        get_metrics().merge_snapshot(envelope["metrics"])


def parallel_map(fn, items, max_workers=None, seed_root=0, on_error="raise",
                 task_label=None, on_result=None, task_deadline=None,
                 deadline_retries=1, pre_dispatch=None):
    """Map ``fn(item, seed)`` over ``items``, optionally in parallel.

    Parameters
    ----------
    fn:
        Callable of ``(item, seed)``.  In parallel mode it runs in a
        forked child; it may close over arbitrary unpicklable state, but
        its *return value* must pickle.
    items:
        Sequence of task inputs.
    max_workers:
        Concurrency cap.  ``None`` uses the process default (see
        :func:`set_default_workers`); 1 runs everything inline in this
        process with the *same* derived seeds, so serial and parallel
        runs are bit-identical by construction.
    seed_root:
        Root of the per-task seed derivation (:func:`derive_seed`).
    on_error:
        ``"raise"`` (default) raises :class:`WorkerError` for the first
        failed task after all tasks finish; ``"return"`` puts a
        :class:`TaskFailure` in the result slot instead.
    task_label:
        Optional ``label(item, index)`` used in per-task telemetry
        events and in the ``worker.task`` fault-point context.
    on_result:
        Optional ``on_result(index, result_or_failure)`` invoked as each
        task finishes, in **completion** order (item order when serial).
        Callers use this for crash-safe incremental persistence — e.g.
        checkpointing sweep cells as they land rather than after the
        whole batch.
    task_deadline:
        Optional per-task wall-clock budget in seconds, enforced by the
        pool's watchdog (parallel mode only — a serial pool has no
        supervisor process to preempt a hung call).  A worker past its
        deadline is SIGKILLed and the task re-dispatched with the same
        derived seed; after ``deadline_retries`` re-dispatches it
        settles as ``TaskFailure(reason="WatchdogKilled")``.
    deadline_retries:
        Re-dispatches allowed per task after a watchdog kill
        (default 1).
    pre_dispatch:
        Optional ``pre_dispatch(item, index)`` called in the parent just
        before a task would fork.  Return :class:`Skip` to settle the
        task with ``Skip.value`` instead of running it, or None to run
        normally.

    Returns
    -------
    list
        One entry per item, in item order.

    Raises
    ------
    PoolInterrupted
        When SIGINT or SIGTERM arrives mid-map.  A temporary SIGTERM
        handler (installed only in the main thread, restored on exit)
        turns termination into the same unwind as Ctrl-C; either way
        every outstanding worker is SIGKILLed and reaped before the
        exception escapes, and it carries which task indices settled
        and which are still pending.
    """
    if on_error not in ("raise", "return"):
        raise ValueError("on_error must be 'raise' or 'return'; got %r"
                         % (on_error,))
    items = list(items)
    workers = resolve_workers(max_workers)
    results = [None] * len(items)
    failures = []
    settled = set()

    interrupt = {"signal": "SIGINT"}

    def on_interrupt(signum, frame):
        # SIGTERM takes the exact unwind path SIGINT does; the
        # except-KeyboardInterrupt below restructures both.
        interrupt["signal"] = signal.Signals(signum).name
        raise KeyboardInterrupt()

    try:
        previous_term = signal.signal(signal.SIGTERM, on_interrupt)
    except ValueError:  # not the main thread; SIGTERM keeps its disposition
        previous_term = None

    def interrupted():
        return PoolInterrupted(
            interrupt["signal"], sorted(settled),
            [i for i in range(len(items)) if i not in settled],
        )

    def restore_sigterm():
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)

    def settle_skip(index, skip):
        if not isinstance(skip, Skip):
            raise TypeError(
                "pre_dispatch must return Skip(value) or None; got %r"
                % (skip,)
            )
        results[index] = skip.value
        settled.add(index)
        if on_result is not None:
            on_result(index, skip.value)

    if workers <= 1 or len(items) <= 1:
        try:
            for index, item in enumerate(items):
                if pre_dispatch is not None:
                    skip = pre_dispatch(item, index)
                    if skip is not None:
                        settle_skip(index, skip)
                        continue
                seed = derive_seed(seed_root, index)
                try:
                    results[index] = fn(item, seed)
                except Exception as exc:
                    if on_error == "raise":
                        raise
                    failure = TaskFailure(
                        index, type(exc).__name__, str(exc),
                        traceback.format_exc(),
                    )
                    failures.append(failure)
                    results[index] = failure
                settled.add(index)
                if on_result is not None:
                    on_result(index, results[index])
        except KeyboardInterrupt:
            raise interrupted() from None
        finally:
            restore_sigterm()
        return results

    from ..telemetry.metrics import get_metrics
    from ..telemetry.tracer import get_tracer

    tracer = get_tracer()
    metrics = get_metrics()
    telemetry_flags = (tracer.enabled, metrics.enabled)

    def label_of(index):
        if task_label is not None:
            return task_label(items[index], index)
        return str(index)

    sel = selectors.DefaultSelector()
    pending = iter(enumerate(items))
    live = 0

    def spawn_task(index, dispatch):
        nonlocal live
        child = _spawn(fn, items[index], index,
                       derive_seed(seed_root, index), telemetry_flags,
                       dispatch, label_of(index))
        sel.register(child.read_fd, selectors.EVENT_READ, child)
        live += 1

    def launch():
        while True:
            try:
                index, item = next(pending)
            except StopIteration:
                return False
            if pre_dispatch is not None:
                skip = pre_dispatch(item, index)
                if skip is not None:
                    settle_skip(index, skip)
                    continue
            spawn_task(index, 0)
            return True

    def settle_failure(failure):
        failures.append(failure)
        results[failure.index] = failure
        settled.add(failure.index)
        if on_result is not None:
            on_result(failure.index, failure)

    def finish(child):
        nonlocal live
        sel.unregister(child.read_fd)
        os.close(child.read_fd)
        live -= 1
        exit_status = _reap(child)
        index = child.index
        envelope = child.envelope
        if envelope is None:
            phase = "" if child.phase is None else \
                ", last phase %r" % child.phase
            failure = TaskFailure(
                index, "WorkerDied",
                "worker process for task %d exited with status %r before "
                "delivering a result%s" % (index, exit_status, phase),
                exit_status=exit_status,
            )
            tracer.event("parallel.worker_died", task=label_of(index),
                         exit_status=exit_status, phase=child.phase)
            settle_failure(failure)
            return
        _merge_worker_telemetry(envelope)
        if envelope["ok"]:
            results[index] = envelope["result"]
        else:
            failure = TaskFailure(
                index, envelope["reason"], envelope["message"],
                envelope.get("traceback", ""), exit_status=exit_status,
            )
            failures.append(failure)
            results[index] = failure
        settled.add(index)
        if on_result is not None:
            on_result(index, results[index])

    def watchdog_kill(child, now):
        """SIGKILL a hung worker; re-dispatch or settle the task.

        Returns True when the task was re-dispatched (pool occupancy
        unchanged), False when it settled as a failure (slot freed).
        """
        nonlocal live
        sel.unregister(child.read_fd)
        os.close(child.read_fd)
        live -= 1
        _sigkill(child.pid)
        _reap(child)
        index = child.index
        elapsed = now - child.started
        tracer.event(
            "guard.watchdog_kill", task=label_of(index),
            elapsed=round(elapsed, 3), phase=child.phase,
            dispatch=child.dispatch,
        )
        metrics.counter("guard.watchdog_kills").inc()
        if child.dispatch < deadline_retries:
            spawn_task(index, child.dispatch + 1)
            return True
        phase = "" if child.phase is None else \
            ", last phase %r" % child.phase
        settle_failure(TaskFailure(
            index, "WatchdogKilled",
            "task %d (%s) exceeded its %.3gs deadline on %d dispatch(es) "
            "(%.2fs elapsed%s)" % (index, label_of(index), task_deadline,
                                   child.dispatch + 1, elapsed, phase),
        ))
        return False

    try:
        try:
            while live < workers and launch():
                pass
            while live:
                timeout = None
                if task_deadline is not None:
                    now = monotonic()
                    timeout = max(0.0, min(
                        child.started + task_deadline - now
                        for child in (key.data
                                      for key in sel.get_map().values())
                    ))
                for key, _ in sel.select(timeout):
                    child = key.data
                    chunk = os.read(child.read_fd, 1 << 16)
                    if chunk:
                        child.buffer.extend(chunk)
                        _drain_frames(child)
                    else:
                        finish(child)
                        launch()
                if task_deadline is not None:
                    now = monotonic()
                    for key in list(sel.get_map().values()):
                        child = key.data
                        if now - child.started >= task_deadline:
                            if not watchdog_kill(child, now):
                                launch()
        finally:
            # On an unexpected parent-side error (including SIGINT /
            # SIGTERM), don't leak (or block on) children: kill
            # outstanding workers before reaping them.
            for key in list(sel.get_map().values()):
                child = key.data
                try:
                    os.close(child.read_fd)
                except OSError:  # repro: noqa[RES002] fd already closed by the normal finish path
                    pass
                _sigkill(child.pid)
                try:
                    os.waitpid(child.pid, 0)
                except ChildProcessError:  # repro: noqa[RES002] child already reaped by the normal finish path
                    pass
            sel.close()
    except KeyboardInterrupt:
        # Workers are dead and reaped (the finally above ran first);
        # surface a structured interruption instead of a raw ^C.
        raise interrupted() from None
    finally:
        restore_sigterm()

    if failures and on_error == "raise":
        failures.sort(key=lambda f: f.index)
        raise WorkerError(failures[0])
    return results


# ----------------------------------------------------------------------
# Persistent supervised workers


def _read_exact(fd, size):
    """Blocking read of exactly ``size`` bytes; None on EOF."""
    data = bytearray()
    while len(data) < size:
        chunk = os.read(fd, size - len(data))
        if not chunk:
            return None
        data.extend(chunk)
    return bytes(data)


def _read_frame(fd):
    """Blocking read of one length-prefixed pickle frame; None on EOF."""
    header = _read_exact(fd, _FRAME_HEADER.size)
    if header is None:
        return None
    (size,) = _FRAME_HEADER.unpack(header)
    payload = _read_exact(fd, size)
    if payload is None:
        return None
    return pickle.loads(payload)


def _persistent_child_main(task_fd, write_fd, fn, telemetry_flags):
    """Serve tasks from the pipe until a stop frame or EOF; never returns.

    The contract difference from the fork-per-task path: the *task
    items* travel over the pipe here (fork-per-task inherits them
    copy-on-write), so both items and results must pickle.  The seed
    arrives with each task — the parent derives it, so a task re-run on
    a different worker (or after a respawn) sees the identical seed and
    stays byte-identical.
    """
    global _IN_WORKER
    _IN_WORKER = True
    status = 0
    try:
        from ..guard.phase import set_phase_reporter
        from ..resilience.faults import maybe_fire

        set_phase_reporter(
            lambda name: _send_frame(write_fd, ("phase", name))
        )
        while True:
            frame = _read_frame(task_fd)
            if frame is None or frame[0] == "stop":
                break
            task = frame[1]
            drain = _collect_telemetry(*telemetry_flags)
            try:
                maybe_fire("worker.task", index=task["id"],
                           task=task["label"], dispatch=task["dispatch"])
                result = fn(task["item"], task["seed"])
                records, snapshot = drain()
                envelope = {
                    "ok": True,
                    "result": result,
                    "records": records,
                    "metrics": snapshot,
                }
            except Exception as exc:
                records, snapshot = drain()
                envelope = {
                    "ok": False,
                    "reason": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                    "records": records,
                    "metrics": snapshot,
                }
            _send_frame(write_fd, ("result",
                                   {"id": task["id"], "envelope": envelope}))
        os.close(write_fd)
    except BaseException:
        # SimulatedKill or anything else non-recoverable: die without a
        # result frame so the parent takes its genuine dead-worker path.
        status = _KILL_EXIT
    finally:
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(status)


class _PWorker:
    __slots__ = ("pid", "task_fd", "read_fd", "buffer", "phase", "jobs",
                 "task", "started", "last_beat", "retiring")

    def __init__(self, pid, task_fd, read_fd):
        self.pid = pid
        self.task_fd = task_fd
        self.read_fd = read_fd
        self.buffer = bytearray()
        self.phase = None
        self.jobs = 0
        self.task = None
        self.started = None
        self.last_beat = monotonic()
        self.retiring = False


class PersistentPool:
    """Pre-forked, supervised worker set for streamed task dispatch.

    Where :func:`parallel_map` forks one child per task (zero pickling
    of inputs, but a full ``fork`` on every dispatch), a
    ``PersistentPool`` forks ``workers`` children **once** and streams
    tasks to them over pipes — the dispatch cost drops from a process
    fork to one pickled frame each way, which is what makes a
    long-lived daemon's per-job latency acceptable.  The price is a
    contract change: task items and results must pickle, and ``fn`` is
    captured at pool construction (workers inherit it copy-on-write).

    Determinism is caller-owned: :meth:`submit` takes an explicit
    ``seed`` (the serve daemon passes ``job_seed(job_id)``), so a task
    re-dispatched after a worker death runs under the identical seed
    and produces byte-identical results on any worker.

    Supervision (the same guarantees :func:`parallel_map` gets from the
    PR-5 watchdog, kept continuously):

    * a worker whose in-flight task exceeds ``task_deadline`` is
      SIGKILLed and the task re-dispatched (same seed) up to
      ``task_retries`` times, then settled as
      ``TaskFailure(reason="WatchdogKilled")``;
    * a worker that dies mid-task (OOM, segfault, ``os._exit``) is
      detected by pipe EOF, reaped, and replaced; its task is
      re-dispatched the same way and settles as ``WorkerDied`` when
      retries run out;
    * after ``recycle_after`` completed tasks a worker is retired and
      replaced by a fresh fork (bounds slow memory growth in a daemon
      that runs for weeks).

    ``phase`` heartbeats (:func:`repro.guard.report_phase`) stream over
    the result pipe exactly as in :func:`parallel_map`; the last beat
    and phase per worker surface in :meth:`stats` for health reporting.
    """

    def __init__(self, fn, workers=1, task_deadline=None, task_retries=1,
                 recycle_after=None):
        from ..telemetry.metrics import get_metrics
        from ..telemetry.tracer import get_tracer

        self.fn = fn
        self.workers = max(1, int(workers))
        self.task_deadline = task_deadline
        self.task_retries = int(task_retries)
        self.recycle_after = (
            None if recycle_after is None else max(1, int(recycle_after))
        )
        self.deaths = 0
        self.respawns = 0
        self.recycles = 0
        self._tracer = get_tracer()
        self._metrics = get_metrics()
        self._telemetry_flags = (self._tracer.enabled, self._metrics.enabled)
        self._backlog = deque()
        self._ordinal = 0
        self._sel = selectors.DefaultSelector()
        self._workers = []
        self._closed = False
        for _ in range(self.workers):
            self._spawn_worker()

    # ------------------------------------------------------------------
    def _spawn_worker(self):
        task_read, task_write = os.pipe()
        res_read, res_write = os.pipe()
        inherited = [fd for worker in self._workers
                     for fd in (worker.task_fd, worker.read_fd)]
        pid = os.fork()
        if pid == 0:
            os.close(task_write)
            os.close(res_read)
            # Drop inherited ends of sibling pipes so a sibling's EOF is
            # decided by the sibling alone, not by this child's copies.
            for fd in inherited:
                try:
                    os.close(fd)
                except OSError:  # repro: noqa[RES002] a sibling fd already closed between snapshot and fork
                    pass
            _persistent_child_main(task_read, res_write, self.fn,
                                   self._telemetry_flags)
            os._exit(_KILL_EXIT)  # unreachable; child main never returns
        os.close(task_read)
        os.close(res_write)
        worker = _PWorker(pid, task_write, res_read)
        self._sel.register(res_read, selectors.EVENT_READ, worker)
        self._workers.append(worker)
        return worker

    def _idle_workers(self):
        return [worker for worker in self._workers
                if worker.task is None and not worker.retiring]

    def capacity(self):
        """Tasks the pool can start right now (idle live workers)."""
        if self._closed:
            return 0
        return max(0, len(self._idle_workers()) - len(self._backlog))

    def backlog(self):
        return len(self._backlog)

    def idle(self):
        """True when no task is in flight or queued anywhere in the pool."""
        return (not self._backlog
                and all(worker.task is None for worker in self._workers))

    # ------------------------------------------------------------------
    def submit(self, task_id, item, seed, label=None):
        """Queue one task for execution under an explicit seed.

        ``task_id`` keys the completion (returned by :meth:`poll`);
        ``seed`` is passed through to ``fn(item, seed)`` verbatim on
        every dispatch, including re-dispatches after a death.
        """
        if self._closed:
            raise RuntimeError("PersistentPool is closed")
        self._ordinal += 1
        task = {
            "id": task_id,
            "item": item,
            "seed": seed,
            "label": str(task_id) if label is None else label,
            "dispatch": 0,
            "ordinal": self._ordinal,
        }
        self._backlog.append(task)
        self._feed()
        return task_id

    def _feed(self):
        for worker in self._idle_workers():
            if not self._backlog:
                return
            self._dispatch(worker, self._backlog.popleft())

    def _dispatch(self, worker, task):
        worker.task = task
        worker.started = monotonic()
        worker.last_beat = worker.started
        worker.phase = None
        try:
            _send_frame(worker.task_fd, ("task", task))
        except OSError:
            # The worker died between polls; put the task back at the
            # front and let the death path respawn + re-feed.
            worker.task = None
            self._backlog.appendleft(task)
            self._on_death(worker)

    # ------------------------------------------------------------------
    def _drain_worker(self, worker):
        """Decode buffered frames; returns completed result frames."""
        completions = []
        buffer = worker.buffer
        header = _FRAME_HEADER.size
        while len(buffer) >= header:
            (size,) = _FRAME_HEADER.unpack(buffer[:header])
            if len(buffer) < header + size:
                break
            payload = bytes(buffer[header:header + size])
            del buffer[:header + size]
            try:
                kind, value = pickle.loads(payload)
            except Exception:
                # A frame corrupted mid-crash is equivalent to no frame;
                # the EOF path records WorkerDied.
                continue
            if kind == "phase":
                worker.phase = value
                worker.last_beat = monotonic()
            elif kind == "result":
                completions.append(value)
        return completions

    def _retire_or_respawn(self, worker):
        """Remove a dead worker's bookkeeping and fork its replacement."""
        try:
            self._sel.unregister(worker.read_fd)
        except KeyError:  # repro: noqa[RES002] already unregistered by a racing death path
            pass
        for fd in (worker.read_fd, worker.task_fd):
            try:
                os.close(fd)
            except OSError:  # repro: noqa[RES002] fd already closed; the kernel freed it with the process
                pass
        if worker in self._workers:
            self._workers.remove(worker)
        if not self._closed:
            self.respawns += 1
            self._spawn_worker()

    def _on_death(self, worker, expected=False):
        """Handle one worker's exit (EOF/SIGKILL); returns completions.

        An *expected* death (clean recycle) just swaps in a fresh fork.
        An unexpected one counts in ``deaths``, and its in-flight task is
        re-dispatched under the same seed — or settled as a
        :class:`TaskFailure` once ``task_retries`` is exhausted.
        """
        if worker not in self._workers:
            return []  # already handled by an earlier path this poll
        _sigkill(worker.pid)
        exit_status = _reap(worker)
        task = worker.task
        worker.task = None
        clean_recycle = (expected or worker.retiring) and task is None
        self._retire_or_respawn(worker)
        if clean_recycle:
            self.recycles += 1
            self._metrics.counter("parallel.pool_recycles").inc()
            self._feed()
            return []
        self.deaths += 1
        self._metrics.counter("parallel.pool_deaths").inc()
        self._tracer.event(
            "parallel.worker_died",
            task=None if task is None else task["label"],
            exit_status=exit_status, phase=worker.phase,
        )
        completions = []
        if task is not None:
            if task["dispatch"] < self.task_retries:
                task = dict(task, dispatch=task["dispatch"] + 1)
                self._backlog.appendleft(task)
            else:
                phase = "" if worker.phase is None else \
                    ", last phase %r" % worker.phase
                completions.append((task["id"], TaskFailure(
                    task["ordinal"], "WorkerDied",
                    "worker process for task %s exited with status %r "
                    "before delivering a result%s"
                    % (task["label"], exit_status, phase),
                    exit_status=exit_status,
                )))
        self._feed()
        return completions

    def _watchdog_sweep(self, now):
        """SIGKILL workers past their task deadline; returns completions."""
        if self.task_deadline is None:
            return []
        completions = []
        for worker in list(self._workers):
            if worker.task is None or worker.started is None:
                continue
            elapsed = now - worker.started
            if elapsed < self.task_deadline:
                continue
            task = worker.task
            self._tracer.event(
                "guard.watchdog_kill", task=task["label"],
                elapsed=round(elapsed, 3), phase=worker.phase,
                dispatch=task["dispatch"],
            )
            self._metrics.counter("guard.watchdog_kills").inc()
            if task["dispatch"] >= self.task_retries:
                # Exhausted: settle here (with the watchdog reason) and
                # hand _on_death a task-less worker to replace.
                worker.task = None
                phase = "" if worker.phase is None else \
                    ", last phase %r" % worker.phase
                completions.append((task["id"], TaskFailure(
                    task["ordinal"], "WatchdogKilled",
                    "task %s exceeded its %.3gs deadline on %d dispatch(es) "
                    "(%.2fs elapsed%s)"
                    % (task["label"], self.task_deadline,
                       task["dispatch"] + 1, elapsed, phase),
                )))
                self.deaths += 1
                self._metrics.counter("parallel.pool_deaths").inc()
                _sigkill(worker.pid)
                _reap(worker)
                self._retire_or_respawn(worker)
                self._feed()
            else:
                _sigkill(worker.pid)
                completions.extend(self._on_death(worker))
        return completions

    def poll(self, timeout=0.0):
        """Advance the pool; returns ``[(task_id, result_or_failure)]``.

        Drains finished results, detects and replaces dead workers,
        enforces the task deadline, and feeds backlogged tasks to idle
        workers.  ``timeout`` bounds the wait when nothing is ready;
        in-flight deadlines shorten it so a hung worker is killed on
        time rather than at the caller's cadence.
        """
        self._feed()
        completions = []
        if self.task_deadline is not None:
            now = monotonic()
            deadlines = [
                max(0.0, worker.started + self.task_deadline - now)
                for worker in self._workers
                if worker.task is not None and worker.started is not None
            ]
            if deadlines:
                timeout = min(timeout, min(deadlines))
        for key, _ in self._sel.select(timeout):
            worker = key.data
            try:
                chunk = os.read(worker.read_fd, 1 << 16)
            except OSError:
                chunk = b""
            if not chunk:
                completions.extend(self._on_death(worker))
                continue
            worker.buffer.extend(chunk)
            for value in self._drain_worker(worker):
                completions.append(self._settle(worker, value))
        completions.extend(self._watchdog_sweep(monotonic()))
        self._feed()
        return completions

    def _settle(self, worker, value):
        task = worker.task
        worker.task = None
        worker.jobs += 1
        worker.last_beat = monotonic()
        envelope = value["envelope"]
        _merge_worker_telemetry(envelope)
        if envelope["ok"]:
            outcome = envelope["result"]
        else:
            ordinal = 0 if task is None else task["ordinal"]
            outcome = TaskFailure(
                ordinal, envelope["reason"], envelope["message"],
                envelope.get("traceback", ""),
            )
        if (self.recycle_after is not None
                and worker.jobs >= self.recycle_after
                and not worker.retiring):
            worker.retiring = True
            try:
                _send_frame(worker.task_fd, ("stop",))
            except OSError:  # repro: noqa[RES002] worker died right after its result; the EOF path replaces it
                pass
        return (value["id"], outcome)

    # ------------------------------------------------------------------
    def stats(self):
        """JSON-safe supervision snapshot for health reporting."""
        now = monotonic()
        return {
            "workers": [
                {
                    "pid": worker.pid,
                    "jobs": worker.jobs,
                    "in_flight": (None if worker.task is None
                                  else worker.task["label"]),
                    "phase": worker.phase,
                    "last_beat_age": round(now - worker.last_beat, 3),
                    "retiring": worker.retiring,
                }
                for worker in self._workers
            ],
            "deaths": self.deaths,
            "respawns": self.respawns,
            "recycles": self.recycles,
            "backlog": len(self._backlog),
        }

    def close(self):
        """Stop every worker (stop frame, then SIGKILL-backed reap)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                _send_frame(worker.task_fd, ("stop",))
            except OSError:  # repro: noqa[RES002] worker already dead; the reap below collects it
                pass
        for worker in self._workers:
            for fd in (worker.task_fd, worker.read_fd):
                try:
                    os.close(fd)
                except OSError:  # repro: noqa[RES002] fd already closed by a death path
                    pass
            _reap(worker, kill_after=0.5)
        self._workers = []
        self._sel.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
