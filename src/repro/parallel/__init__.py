"""Deterministic parallel execution for sweeps, trials and k-NN chunks.

Public surface:

* :func:`parallel_map` — fork-based process pool whose results are
  bit-identical to serial execution for any worker count (per-task
  seeds derived from position, results assembled in item order).
* :class:`PersistentPool` — pre-forked supervised worker set for
  long-lived streamed dispatch (the serve daemon's persistent mode):
  tasks travel as pickled frames instead of paying a fork each,
  explicit per-task seeds keep replay byte-identical, and dead/hung
  workers are SIGKILLed, respawned, and their task re-dispatched under
  the same seed.
* :func:`run_cells` — batched sweep-cell runner preserving the
  resume/retry/degrade contract of :func:`repro.resilience.run_cell`.
* :func:`derive_seed` — the position-based seed derivation.
* :func:`set_default_workers` / :func:`get_default_workers` /
  :func:`resolve_workers` — the process-wide worker default the CLI's
  ``--workers`` flag installs; ``None`` arguments resolve against it.
* :func:`in_worker` — True inside a pool worker (nested pools degrade
  to serial there).
* :class:`TaskFailure` / :class:`WorkerError` — per-task failure record
  and the exception wrapping it.
* :class:`PoolInterrupted` — structured SIGINT/SIGTERM interruption
  (a ``KeyboardInterrupt`` subclass raised only after every worker has
  been killed and reaped, carrying settled vs pending task indices).
* :class:`Skip` — sentinel a ``pre_dispatch`` hook returns to settle a
  task without running it (how open circuit breakers short-circuit
  queued cells).

The pool is supervised by :mod:`repro.guard`: a per-task wall-clock
deadline (``task_deadline``) SIGKILLs hung workers and re-dispatches
their tasks under the same derived seed, preserving bit-exactness.

All process fan-out in this codebase goes through this package — lint
rule PAR001 flags direct ``multiprocessing``/``concurrent.futures``
use elsewhere.
"""

from .cells import run_cells
from .pool import (
    PersistentPool,
    PoolInterrupted,
    Skip,
    TaskFailure,
    WorkerError,
    derive_seed,
    get_default_workers,
    in_worker,
    parallel_map,
    resolve_workers,
    set_default_workers,
)

__all__ = [
    "PersistentPool",
    "PoolInterrupted",
    "Skip",
    "TaskFailure",
    "WorkerError",
    "derive_seed",
    "get_default_workers",
    "in_worker",
    "parallel_map",
    "resolve_workers",
    "run_cells",
    "set_default_workers",
]
