"""CNN architectures used in the paper, with a feature/classifier split.

Every classifier here follows the decomposition in the paper's Figure 2:

* ``forward_features(x)`` — the extraction layers :math:`f_\\theta(\\cdot)`,
  ending in global average pooling.  Its output is the paper's *feature
  embedding* (FE), a (N, D) tensor.
* ``classifier`` — a single Linear layer mapping FE to logits.  This is
  the layer the three-phase framework detaches and fine-tunes on
  augmented embeddings.
* ``forward(x)`` — features followed by the classifier head.

Architectures: CIFAR-style ResNet (depth 6n+2: resnet8/14/20/32/56),
WideResNet (WRN-d-k), and DenseNet (BC-style).  All are parameterised by a
``width_multiplier`` so that the experiment harness can run scaled-down
instances on CPU while the full paper-scale constructors remain available.
"""

from __future__ import annotations

import numpy as np

from ..tensor import concatenate
from .layers import BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear
from .module import Module, Sequential

__all__ = [
    "ImageClassifier",
    "BasicBlock",
    "ResNet",
    "resnet8",
    "resnet14",
    "resnet20",
    "resnet32",
    "resnet56",
    "WideResNet",
    "DenseNet",
    "SmallConvNet",
    "build_model",
]


class ImageClassifier(Module):
    """Base class providing the feature/head split used by the framework."""

    feature_dim = None  # set by subclasses

    def forward_features(self, x):
        """Map images (N, C, H, W) to feature embeddings (N, D)."""
        raise NotImplementedError

    def forward_head(self, features):
        """Map feature embeddings to class logits."""
        return self.classifier(features)

    def forward(self, x):
        return self.forward_head(self.forward_features(x))


def _conv3x3(c_in, c_out, stride, rng):
    return Conv2d(c_in, c_out, 3, stride=stride, padding=1, bias=False, rng=rng)


class BasicBlock(Module):
    """Standard pre-activationless residual block: conv-bn-relu-conv-bn + skip."""

    def __init__(self, c_in, c_out, stride, rng):
        super().__init__()
        self.conv1 = _conv3x3(c_in, c_out, stride, rng)
        self.bn1 = BatchNorm2d(c_out)
        self.conv2 = _conv3x3(c_out, c_out, 1, rng)
        self.bn2 = BatchNorm2d(c_out)
        if stride != 1 or c_in != c_out:
            # Option-B shortcut: 1x1 convolution projection.
            self.shortcut = Sequential(
                Conv2d(c_in, c_out, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(c_out),
            )
        else:
            self.shortcut = None

    def forward(self, x):
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        skip = x if self.shortcut is None else self.shortcut(x)
        return (out + skip).relu()


class ResNet(ImageClassifier):
    """CIFAR-style ResNet: 3 stages of ``n`` blocks, depth ``6n + 2``.

    Parameters
    ----------
    depth:
        Total depth; must satisfy ``depth = 6n + 2`` (8, 14, 20, 32, 56...).
    num_classes:
        Output classes.
    in_channels:
        Image channels (3 for RGB).
    width_multiplier:
        Scales the stage widths (16, 32, 64) for CPU-friendly instances.
    """

    def __init__(
        self,
        depth=32,
        num_classes=10,
        in_channels=3,
        width_multiplier=1.0,
        rng=None,
    ):
        super().__init__()
        if (depth - 2) % 6 != 0:
            raise ValueError("ResNet depth must be 6n+2, got %d" % depth)
        rng = rng if rng is not None else np.random.default_rng(0)
        n = (depth - 2) // 6
        widths = [max(4, int(round(w * width_multiplier))) for w in (16, 32, 64)]
        self.depth = depth
        self.feature_dim = widths[2]

        self.conv1 = _conv3x3(in_channels, widths[0], 1, rng)
        self.bn1 = BatchNorm2d(widths[0])
        self.stage1 = self._make_stage(widths[0], widths[0], n, 1, rng)
        self.stage2 = self._make_stage(widths[0], widths[1], n, 2, rng)
        self.stage3 = self._make_stage(widths[1], widths[2], n, 2, rng)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(widths[2], num_classes, rng=rng)

    @staticmethod
    def _make_stage(c_in, c_out, blocks, stride, rng):
        layers = [BasicBlock(c_in, c_out, stride, rng)]
        for _ in range(blocks - 1):
            layers.append(BasicBlock(c_out, c_out, 1, rng))
        return Sequential(*layers)

    def forward_features(self, x):
        out = self.bn1(self.conv1(x)).relu()
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        return self.pool(out)


def resnet8(**kwargs):
    return ResNet(depth=8, **kwargs)


def resnet14(**kwargs):
    return ResNet(depth=14, **kwargs)


def resnet20(**kwargs):
    return ResNet(depth=20, **kwargs)


def resnet32(**kwargs):
    """The paper's architecture for CIFAR-10/100 and SVHN."""
    return ResNet(depth=32, **kwargs)


def resnet56(**kwargs):
    """The paper's architecture for CelebA (and the Table V comparison)."""
    return ResNet(depth=56, **kwargs)


class WideResNet(ImageClassifier):
    """Wide Residual Network (WRN-depth-k) with CIFAR-style stages.

    ``depth`` must satisfy ``depth = 6n + 4``; ``widen_factor`` multiplies
    the base widths (16, 32, 64).
    """

    def __init__(
        self,
        depth=16,
        widen_factor=2,
        num_classes=10,
        in_channels=3,
        width_multiplier=1.0,
        rng=None,
    ):
        super().__init__()
        if (depth - 4) % 6 != 0:
            raise ValueError("WideResNet depth must be 6n+4, got %d" % depth)
        rng = rng if rng is not None else np.random.default_rng(0)
        n = (depth - 4) // 6
        base = [16, 32, 64]
        widths = [
            max(4, int(round(w * widen_factor * width_multiplier))) for w in base
        ]
        stem = max(4, int(round(16 * width_multiplier)))
        self.feature_dim = widths[2]

        self.conv1 = _conv3x3(in_channels, stem, 1, rng)
        self.bn1 = BatchNorm2d(stem)
        self.stage1 = ResNet._make_stage(stem, widths[0], n, 1, rng)
        self.stage2 = ResNet._make_stage(widths[0], widths[1], n, 2, rng)
        self.stage3 = ResNet._make_stage(widths[1], widths[2], n, 2, rng)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(widths[2], num_classes, rng=rng)

    def forward_features(self, x):
        out = self.bn1(self.conv1(x)).relu()
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        return self.pool(out)


class _DenseLayer(Module):
    """BN-ReLU-Conv(3x3) producing ``growth_rate`` new channels."""

    def __init__(self, c_in, growth_rate, rng):
        super().__init__()
        self.bn = BatchNorm2d(c_in)
        self.conv = _conv3x3(c_in, growth_rate, 1, rng)

    def forward(self, x):
        new = self.conv(self.bn(x).relu())
        return concatenate([x, new], axis=1)


class _Transition(Module):
    """BN-ReLU-Conv(1x1)-AvgPool transition between dense blocks."""

    def __init__(self, c_in, c_out, rng):
        super().__init__()
        from .layers import AvgPool2d

        self.bn = BatchNorm2d(c_in)
        self.conv = Conv2d(c_in, c_out, 1, bias=False, rng=rng)
        self.pool = AvgPool2d(2)

    def forward(self, x):
        return self.pool(self.conv(self.bn(x).relu()))


class DenseNet(ImageClassifier):
    """Densely connected CNN with three dense blocks (CIFAR-style)."""

    def __init__(
        self,
        growth_rate=12,
        block_layers=(4, 4, 4),
        num_classes=10,
        in_channels=3,
        compression=0.5,
        width_multiplier=1.0,
        rng=None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        growth = max(2, int(round(growth_rate * width_multiplier)))
        channels = max(4, 2 * growth)

        self.conv1 = _conv3x3(in_channels, channels, 1, rng)
        blocks = []
        for i, layers in enumerate(block_layers):
            for _ in range(layers):
                blocks.append(_DenseLayer(channels, growth, rng))
                channels += growth
            if i != len(block_layers) - 1:
                out_ch = max(4, int(channels * compression))
                blocks.append(_Transition(channels, out_ch, rng))
                channels = out_ch
        self.blocks = Sequential(*blocks)
        self.bn_final = BatchNorm2d(channels)
        self.pool = GlobalAvgPool2d()
        self.feature_dim = channels
        self.classifier = Linear(channels, num_classes, rng=rng)

    def forward_features(self, x):
        out = self.conv1(x)
        out = self.blocks(out)
        out = self.bn_final(out).relu()
        return self.pool(out)


class SmallConvNet(ImageClassifier):
    """A compact conv-bn-relu stack for fast unit tests and examples."""

    def __init__(self, num_classes=10, in_channels=3, width=8, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv1 = _conv3x3(in_channels, width, 1, rng)
        self.bn1 = BatchNorm2d(width)
        self.conv2 = _conv3x3(width, 2 * width, 2, rng)
        self.bn2 = BatchNorm2d(2 * width)
        self.conv3 = _conv3x3(2 * width, 4 * width, 2, rng)
        self.bn3 = BatchNorm2d(4 * width)
        self.pool = GlobalAvgPool2d()
        self.feature_dim = 4 * width
        self.classifier = Linear(4 * width, num_classes, rng=rng)

    def forward_features(self, x):
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out)).relu()
        return self.pool(out)


_MODEL_REGISTRY = {
    "resnet8": resnet8,
    "resnet14": resnet14,
    "resnet20": resnet20,
    "resnet32": resnet32,
    "resnet56": resnet56,
    "wideresnet": WideResNet,
    "densenet": DenseNet,
    "smallconvnet": SmallConvNet,
}


def build_model(name, **kwargs):
    """Instantiate a registered architecture by name."""
    try:
        factory = _MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown model %r (available: %s)"
            % (name, ", ".join(sorted(_MODEL_REGISTRY)))
        ) from None
    return factory(**kwargs)
