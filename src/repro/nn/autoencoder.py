"""Convolutional autoencoder for image-space generative workflows.

A compact conv encoder / transposed-conv decoder pair.  DeepSMOTE-style
pipelines can train it on images and run SMOTE in its latent space; it
also serves as a general dimensionality-reduction block for the
synthetic image families.

The spatial contract: the encoder halves the spatial dims twice
(stride-2 convs), so the input side length must be a multiple of 4; the
decoder mirrors it back exactly with stride-2 transposed convs.
"""

from __future__ import annotations

import numpy as np

from .layers import BatchNorm2d, Conv2d, ConvTranspose2d, Linear
from .module import Module

__all__ = ["ConvAutoencoder"]


class ConvAutoencoder(Module):
    """Conv encoder + transposed-conv decoder with a linear bottleneck.

    Parameters
    ----------
    in_channels:
        Image channels.
    image_size:
        Side length (must be divisible by 4).
    latent_dim:
        Bottleneck dimension.
    width:
        Base channel width of the conv stacks.
    """

    def __init__(self, in_channels=3, image_size=12, latent_dim=16, width=8,
                 rng=None):
        super().__init__()
        if image_size % 4 != 0:
            raise ValueError("image_size must be divisible by 4")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.image_size = image_size
        self.latent_dim = latent_dim
        self._spatial = image_size // 4
        self._flat = 2 * width * self._spatial * self._spatial

        # Encoder: two stride-2 conv blocks, then a linear bottleneck.
        self.enc_conv1 = Conv2d(in_channels, width, 3, stride=2, padding=1,
                                rng=rng)
        self.enc_bn1 = BatchNorm2d(width)
        self.enc_conv2 = Conv2d(width, 2 * width, 3, stride=2, padding=1,
                                rng=rng)
        self.enc_bn2 = BatchNorm2d(2 * width)
        self.enc_fc = Linear(self._flat, latent_dim, rng=rng)

        # Decoder: linear up-projection, then two stride-2 transposed convs.
        self.dec_fc = Linear(latent_dim, self._flat, rng=rng)
        self.dec_conv1 = ConvTranspose2d(
            2 * width, width, 4, stride=2, padding=1, rng=rng
        )
        self.dec_bn1 = BatchNorm2d(width)
        self.dec_conv2 = ConvTranspose2d(
            width, in_channels, 4, stride=2, padding=1, rng=rng
        )

    def encode(self, x):
        """Images (N, C, H, W) -> latents (N, latent_dim)."""
        out = self.enc_bn1(self.enc_conv1(x)).relu()
        out = self.enc_bn2(self.enc_conv2(out)).relu()
        return self.enc_fc(out.flatten())

    def decode(self, z):
        """Latents (N, latent_dim) -> images (N, C, H, W) in (0, 1)."""
        width2 = self._flat // (self._spatial * self._spatial)
        out = self.dec_fc(z).relu()
        out = out.reshape(-1, width2, self._spatial, self._spatial)
        out = self.dec_bn1(self.dec_conv1(out)).relu()
        return self.dec_conv2(out).sigmoid()

    def forward(self, x):
        return self.decode(self.encode(x))
