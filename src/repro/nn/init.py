"""Weight initialization schemes (Kaiming, Xavier, constant).

All initializers return arrays in the substrate's default dtype
(float32 unless :func:`repro.tensor.set_default_dtype` says otherwise);
the random draws themselves happen in float64 — numpy generators have
no float32 sampling path for normal/uniform — and are cast once, so two
runs differing only in default dtype sample identical values.
"""

from __future__ import annotations

import numpy as np

from ..tensor._dtype import default_dtype

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "xavier_normal",
    "zeros",
    "ones",
]


def _fan(shape, mode):
    if len(shape) == 2:  # Linear: (out, in)
        fan_in, fan_out = shape[1], shape[0]
    elif len(shape) == 4:  # Conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError("unsupported weight shape %s" % (shape,))
    return fan_in if mode == "fan_in" else fan_out


def kaiming_normal(shape, rng, mode="fan_in", gain=np.sqrt(2.0)):
    """He-normal init, the standard choice for ReLU networks."""
    std = gain / np.sqrt(_fan(shape, mode))
    return rng.normal(0.0, std, size=shape).astype(default_dtype(), copy=False)


def kaiming_uniform(shape, rng, mode="fan_in", gain=np.sqrt(2.0)):
    bound = gain * np.sqrt(3.0 / _fan(shape, mode))
    return rng.uniform(-bound, bound, size=shape).astype(
        default_dtype(), copy=False
    )


def xavier_uniform(shape, rng, gain=1.0):
    fan_in = _fan(shape, "fan_in")
    fan_out = _fan(shape, "fan_out")
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(
        default_dtype(), copy=False
    )


def xavier_normal(shape, rng, gain=1.0):
    fan_in = _fan(shape, "fan_in")
    fan_out = _fan(shape, "fan_out")
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(default_dtype(), copy=False)


def zeros(shape):
    return np.zeros(shape, dtype=default_dtype())


def ones(shape):
    return np.ones(shape, dtype=default_dtype())
