"""Module/Parameter abstractions in the style of torch.nn.

A :class:`Module` owns named :class:`Parameter` tensors and child
modules, discovered automatically through attribute assignment.  It
provides parameter iteration, train/eval mode switching, and a simple
state-dict mechanism used by the experiment harness for checkpointing.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..telemetry import profiler as _profiler
from ..telemetry.clock import monotonic as _monotonic
from ..telemetry.profiler import _STATE as _PROFILE
from ..tensor import Tensor, default_dtype

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A Tensor that is registered as a trainable parameter.

    Parameters are stored in the substrate's default dtype (float32
    unless :func:`repro.tensor.set_default_dtype` says otherwise), so
    the whole optimizer/autograd hot path runs at one precision.
    """

    def __init__(self, data, requires_grad=True):
        super().__init__(
            np.asarray(data, dtype=default_dtype()), requires_grad=requires_grad
        )


class Module:
    """Base class for all neural network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name, array):
        """Register a non-trainable numpy array (e.g. BN running stats)."""
        self._buffers[name] = np.asarray(array, dtype=default_dtype())
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name, array):
        """Update a registered buffer in place, keeping the attribute alias."""
        self._buffers[name] = np.asarray(array, dtype=default_dtype())
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def parameters(self):
        """Yield every trainable Parameter in this module tree."""
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix=""):
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def named_buffers(self, prefix=""):
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self):
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self):
        return iter(self._modules.values())

    def num_parameters(self):
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode=True):
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self):
        return self.train(False)

    def zero_grad(self):
        for p in self.parameters():
            p.zero_grad()

    def requires_grad_(self, flag=True):
        """Freeze (False) or unfreeze (True) every parameter in the tree.

        Frozen parameters are skipped by autograd, so freezing the
        extraction layers makes classifier-only fine-tuning cheaper.
        """
        for p in self.parameters():
            p.requires_grad = bool(flag)
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self):
        """Return a flat dict of parameter and buffer arrays (copies)."""
        state = {}
        for name, p in self.named_parameters():
            state["param:" + name] = p.data.copy()
        for name, b in self.named_buffers():
            state["buffer:" + name] = b.copy()
        return state

    def load_state_dict(self, state):
        """Load arrays saved by :meth:`state_dict` (shapes must match)."""
        params = dict(self.named_parameters())
        for key, value in state.items():
            kind, name = key.split(":", 1)
            if kind == "param":
                if name not in params:
                    raise KeyError("unexpected parameter %r" % name)
                if params[name].shape != value.shape:
                    raise ValueError(
                        "shape mismatch for %r: %s vs %s"
                        % (name, params[name].shape, value.shape)
                    )
                params[name].data[...] = value
            elif kind == "buffer":
                module, _, leaf = name.rpartition(".")
                target = self
                if module:
                    for part in module.split("."):
                        target = target._modules[part]
                target._buffers[leaf][...] = value
                object.__setattr__(target, leaf, target._buffers[leaf])
            else:
                raise KeyError("unknown state key kind %r" % kind)

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        if _PROFILE.enabled:
            t0 = _monotonic()
            out = self.forward(*args, **kwargs)
            _profiler._on_layer_forward(type(self).__name__, _monotonic() - t0)
            return out
        return self.forward(*args, **kwargs)

    def __repr__(self):
        lines = [type(self).__name__ + "("]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append("  (%s): %s" % (name, child_repr))
        lines.append(")")
        return "\n".join(lines)


class Sequential(Module):
    """Chain modules in order; supports indexing and iteration.

    Adjacent ``(Linear, ReLU)`` pairs are executed through the fused
    ``linear_relu`` kernel (one tape node instead of three); both
    modules stay registered, so state dicts, repr and indexing are
    unchanged.  A layer advertises fusability via ``_fuses_into_relu``
    and an activation marks itself consumable via ``_is_relu``.
    """

    def __init__(self, *layers):
        super().__init__()
        self._layers = []
        for i, layer in enumerate(layers):
            setattr(self, "layer%d" % i, layer)
            self._layers.append(layer)

    def forward(self, x):
        layers = self._layers
        n = len(layers)
        i = 0
        while i < n:
            layer = layers[i]
            if (
                i + 1 < n
                and getattr(layer, "_fuses_into_relu", False)
                and getattr(layers[i + 1], "_is_relu", False)
            ):
                x = layer.forward_relu(x)
                i += 2
                continue
            x = layer(x)
            i += 1
        return x

    def __len__(self):
        return len(self._layers)

    def __getitem__(self, idx):
        return self._layers[idx]

    def __iter__(self):
        return iter(self._layers)
