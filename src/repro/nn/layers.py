"""Standard neural-network layers on top of the autograd engine.

Includes the layers the paper's architectures need: ``Linear``,
``Conv2d``, ``BatchNorm2d``, ``BatchNorm1d``, ``ReLU``, pooling wrappers,
``Flatten`` and ``Dropout``.  Batch norm keeps running statistics and
switches between batch statistics (train) and running statistics (eval),
matching the semantics the paper's generalization-gap analysis relies on.
"""

from __future__ import annotations

import numpy as np

from .._rng import fresh_generator
from ..tensor import conv as conv_ops
from ..tensor import functional as F
from . import init
from .module import Module, Parameter

__all__ = [
    "Linear",
    "LinearReLU",
    "Conv2d",
    "ConvTranspose2d",
    "BatchNorm2d",
    "BatchNorm1d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
]


class Linear(Module):
    """Affine layer: ``y = x W^T + b``."""

    #: ``Sequential`` fuses this layer with a directly following ReLU.
    _fuses_into_relu = True

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = rng if rng is not None else fresh_generator()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng, gain=1.0)
        )
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x):
        return F.linear(x, self.weight, self.bias)

    def forward_relu(self, x):
        """Fused ``relu(linear(x))`` — one tape node instead of three."""
        return F.linear_relu(x, self.weight, self.bias)

    def __repr__(self):
        return "Linear(in=%d, out=%d, bias=%s)" % (
            self.in_features,
            self.out_features,
            self.bias is not None,
        )


class Conv2d(Module):
    """2D convolution layer (NCHW)."""

    def __init__(
        self,
        in_channels,
        out_channels,
        kernel_size,
        stride=1,
        padding=0,
        bias=True,
        rng=None,
    ):
        super().__init__()
        rng = rng if rng is not None else fresh_generator()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x):
        return conv_ops.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )

    def __repr__(self):
        return "Conv2d(%d, %d, k=%d, s=%d, p=%d)" % (
            self.in_channels,
            self.out_channels,
            self.kernel_size,
            self.stride,
            self.padding,
        )


class ConvTranspose2d(Module):
    """2D transposed convolution layer (upsampling; NCHW).

    Weight layout (in_channels, out_channels, k, k), matching the
    PyTorch convention for transposed convolutions.
    """

    def __init__(
        self,
        in_channels,
        out_channels,
        kernel_size,
        stride=1,
        padding=0,
        bias=True,
        rng=None,
    ):
        super().__init__()
        rng = rng if rng is not None else fresh_generator()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (in_channels, out_channels, kernel_size, kernel_size)
        # fan_in for the adjoint op is in_channels * k^2 viewed from the
        # output side; reuse the conv initializer on the swapped layout.
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            ).transpose(1, 0, 2, 3)
        )
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x):
        return conv_ops.conv_transpose2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )

    def __repr__(self):
        return "ConvTranspose2d(%d, %d, k=%d, s=%d, p=%d)" % (
            self.in_channels,
            self.out_channels,
            self.kernel_size,
            self.stride,
            self.padding,
        )


class _BatchNorm(Module):
    """Shared batch-norm implementation for 1D and 2D variants."""

    def __init__(self, num_features, eps=1e-5, momentum=0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones(num_features))
        self.bias = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", init.zeros(num_features))
        self.register_buffer("running_var", init.ones(num_features))
        self._folded = None  # cached eval-mode folded affine (see below)

    def _folded_affine(self, shape):
        """Eval-mode scale/shift folded from running stats + weight/bias.

        ``out = x * scale + shift`` with ``scale = w / sqrt(var + eps)``
        and ``shift = b - mean * scale``.  The fold is cached; validity
        is checked by comparing snapshots of the four C-length source
        arrays, which stays correct under *any* mutation path (in-place
        optimizer steps, ``load_state_dict``, manual buffer writes) at
        O(C) cost per call.
        """
        cached = self._folded
        if cached is not None:
            snaps, arrays = cached
            if (
                np.array_equal(snaps[0], self.running_mean)
                and np.array_equal(snaps[1], self.running_var)
                and np.array_equal(snaps[2], self.weight.data)
                and np.array_equal(snaps[3], self.bias.data)
                and arrays[0].shape == shape
            ):
                return arrays
        inv = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.weight.data * inv
        shift = self.bias.data - self.running_mean * scale
        arrays = (
            scale.reshape(shape),
            shift.reshape(shape),
            self.running_mean.reshape(shape).copy(),
            inv.reshape(shape),
        )
        snaps = (
            self.running_mean.copy(),
            self.running_var.copy(),
            self.weight.data.copy(),
            self.bias.data.copy(),
        )
        self._folded = (snaps, arrays)
        return arrays

    def _normalize(self, x, axes, shape):
        if not self.training:
            scale, shift, mean, inv = self._folded_affine(shape)
            return F.folded_batchnorm(
                x, self.weight, self.bias, scale, shift, mean, inv, axes
            )
        # Fused kernel: normalizes, differentiates through the batch
        # statistics, and hands back mean/var so the running-stat
        # update below reuses the same reductions.
        out, mean, var = F.batchnorm_train(
            x, self.weight, self.bias, axes, shape, self.eps
        )
        mean = mean.reshape(self.num_features)
        var = var.reshape(self.num_features)
        self.running_mean[...] = (
            (1 - self.momentum) * self.running_mean + self.momentum * mean
        )
        n = x.data.size / self.num_features
        unbiased = var * n / max(n - 1, 1)
        self.running_var[...] = (
            (1 - self.momentum) * self.running_var + self.momentum * unbiased
        )
        return out


class BatchNorm2d(_BatchNorm):
    """Batch normalization over (N, H, W) for each channel of NCHW input."""

    def forward(self, x):
        if x.ndim != 4:
            raise ValueError("BatchNorm2d expects NCHW input")
        return self._normalize(x, (0, 2, 3), (1, self.num_features, 1, 1))

    def __repr__(self):
        return "BatchNorm2d(%d)" % self.num_features


class BatchNorm1d(_BatchNorm):
    """Batch normalization over the batch axis of (N, C) input."""

    def forward(self, x):
        if x.ndim != 2:
            raise ValueError("BatchNorm1d expects (N, C) input")
        return self._normalize(x, (0,), (1, self.num_features))

    def __repr__(self):
        return "BatchNorm1d(%d)" % self.num_features


class ReLU(Module):
    #: Marks this activation as consumable by a preceding fusable layer.
    _is_relu = True

    def forward(self, x):
        return x.relu()

    def __repr__(self):
        return "ReLU()"


class LinearReLU(Module):
    """Explicitly fused ``relu(linear(x))`` block.

    Same parameters (and state-dict keys ``weight``/``bias``) as
    :class:`Linear`; the forward pass runs the single-node fused kernel.
    ``Sequential`` fuses adjacent ``(Linear, ReLU)`` pairs automatically,
    so this class is for hand-built ``forward`` methods.
    """

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = rng if rng is not None else fresh_generator()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng, gain=1.0)
        )
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x):
        return F.linear_relu(x, self.weight, self.bias)

    def __repr__(self):
        return "LinearReLU(in=%d, out=%d, bias=%s)" % (
            self.in_features,
            self.out_features,
            self.bias is not None,
        )


class LeakyReLU(Module):
    def __init__(self, negative_slope=0.2):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x):
        return x.leaky_relu(self.negative_slope)

    def __repr__(self):
        return "LeakyReLU(%.2f)" % self.negative_slope


class Sigmoid(Module):
    def forward(self, x):
        return x.sigmoid()

    def __repr__(self):
        return "Sigmoid()"


class Tanh(Module):
    def forward(self, x):
        return x.tanh()

    def __repr__(self):
        return "Tanh()"


class MaxPool2d(Module):
    def __init__(self, kernel=2, stride=None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x):
        return conv_ops.max_pool2d(x, self.kernel, self.stride)

    def __repr__(self):
        return "MaxPool2d(k=%d)" % self.kernel


class AvgPool2d(Module):
    def __init__(self, kernel=2, stride=None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x):
        return conv_ops.avg_pool2d(x, self.kernel, self.stride)

    def __repr__(self):
        return "AvgPool2d(k=%d)" % self.kernel


class GlobalAvgPool2d(Module):
    """Pool (N, C, H, W) to (N, C) — produces the paper's feature embeddings."""

    def forward(self, x):
        return conv_ops.global_avg_pool2d(x)

    def __repr__(self):
        return "GlobalAvgPool2d()"


class Flatten(Module):
    def __init__(self, start_dim=1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x):
        return x.flatten(self.start_dim)

    def __repr__(self):
        return "Flatten()"


class Dropout(Module):
    def __init__(self, p=0.5, rng=None):
        super().__init__()
        self.p = p
        self.rng = rng if rng is not None else fresh_generator()

    def forward(self, x):
        return F.dropout(x, self.p, training=self.training, rng=self.rng)

    def __repr__(self):
        return "Dropout(p=%.2f)" % self.p


class Identity(Module):
    def forward(self, x):
        return x

    def __repr__(self):
        return "Identity()"
