"""Runtime autograd-tape sanitizer (``detect_anomaly``).

The numpy autograd engine in :mod:`repro.tensor` has none of PyTorch's
safety nets, so this module supplies them as an *opt-in* instrument:

* **Forward NaN/Inf tracing** — every op result is checked as it is
  recorded; the error names the *producing* op and its creation site,
  not the downstream op where the NaN finally surfaced.
* **Backward NaN/Inf tracing** — each backward closure's output
  gradients are checked before they propagate.
* **In-place mutation detection** — when an array goes on the tape, a
  version stamp (CRC32 of its buffer) is recorded; the stamp is
  re-verified when the tape node is consumed during ``backward``, so
  external ``arr[...] = v`` writes between forward and backward raise
  instead of silently corrupting gradients.
* **Dtype/shape invariants** — gradients must match their tensor's
  shape, and reduced-precision leaves must not receive higher-precision
  gradients (e.g. float64 grads flowing into float32 leaves).

Everything is gated behind one boolean so the hot path pays a single
attribute read when the sanitizer is off::

    from repro.tensor import Tensor, detect_anomaly

    with detect_anomaly():
        loss = model(x).sum()
        loss.backward()        # raises AnomalyError at the culprit op
"""

from __future__ import annotations

import traceback
import zlib

import numpy as np

__all__ = [
    "AnomalyError",
    "detect_anomaly",
    "is_anomaly_enabled",
    "array_version",
]


class AnomalyError(RuntimeError):
    """Raised when the tape sanitizer traps a numeric or aliasing defect.

    Attributes
    ----------
    op:
        Name of the producing op (e.g. ``"__mul__"``, ``"conv2d"``).
    site:
        ``file:line`` of the op's creation site in user code, when known.
    """

    def __init__(self, message, op=None, site=None):
        self.op = op
        self.site = site
        detail = message
        if op is not None:
            detail += " [op: %s" % op
            if site:
                detail += " @ %s" % site
            detail += "]"
        super().__init__(detail)


class _State:
    __slots__ = ("enabled", "check_nan", "check_mutation", "check_dtype")

    def __init__(self):
        self.enabled = False
        self.check_nan = True
        self.check_mutation = True
        self.check_dtype = True


_STATE = _State()


def is_anomaly_enabled():
    """True inside an active :class:`detect_anomaly` block."""
    return _STATE.enabled


class detect_anomaly:
    """Context manager enabling the tape sanitizer.

    Parameters
    ----------
    check_nan:
        Trap NaN/Inf in forward values and backward gradients.
    check_mutation:
        Trap in-place mutation of arrays already recorded on the tape
        (version-counter check at backward time).
    check_dtype:
        Trap gradient shape mismatches and precision-widening gradients
        flowing into reduced-precision tensors.
    """

    def __init__(self, check_nan=True, check_mutation=True, check_dtype=True):
        self.check_nan = check_nan
        self.check_mutation = check_mutation
        self.check_dtype = check_dtype
        self._prev = None

    def __enter__(self):
        self._prev = (
            _STATE.enabled,
            _STATE.check_nan,
            _STATE.check_mutation,
            _STATE.check_dtype,
        )
        _STATE.enabled = True
        _STATE.check_nan = self.check_nan
        _STATE.check_mutation = self.check_mutation
        _STATE.check_dtype = self.check_dtype
        return self

    def __exit__(self, exc_type, exc, tb):
        (
            _STATE.enabled,
            _STATE.check_nan,
            _STATE.check_mutation,
            _STATE.check_dtype,
        ) = self._prev
        return False


# ----------------------------------------------------------------------
# Provenance helpers
# ----------------------------------------------------------------------
def array_version(arr):
    """Version stamp of an array's buffer (CRC32 over raw bytes)."""
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


def _op_name(backward):
    """Derive the op name from a backward closure's qualname.

    ``Tensor.__add__.<locals>.backward`` -> ``__add__``;
    ``conv2d.<locals>.backward`` -> ``conv2d``.
    """
    if backward is None:
        return "<leaf>"
    qual = getattr(backward, "__qualname__", "")
    parts = qual.split(".")
    for i, part in enumerate(parts):
        if part == "<locals>" and i > 0:
            return parts[i - 1]
    return qual or "<op>"


def _creation_site():
    """``file:line`` of the innermost stack frame outside the engine."""
    for frame in reversed(traceback.extract_stack()):
        fname = frame.filename.replace("\\", "/")
        if "/repro/tensor/" in fname or "/repro/analysis/" in fname:
            continue
        return "%s:%d" % (frame.filename, frame.lineno)
    return None


class _OpRecord:
    __slots__ = ("op", "site", "parent_versions")

    def __init__(self, op, site, parent_versions):
        self.op = op
        self.site = site
        self.parent_versions = parent_versions


# ----------------------------------------------------------------------
# Hooks — called from repro.tensor.tensor when _STATE.enabled is True
# ----------------------------------------------------------------------
def _is_float(arr):
    return arr.dtype.kind == "f"


def _on_op(out, parents, backward):
    """Record provenance for a freshly created op result and check it."""
    op = _op_name(backward)
    site = _creation_site()
    if _STATE.check_nan and _is_float(out.data) and not np.all(np.isfinite(out.data)):
        raise AnomalyError(
            "non-finite value produced in forward pass", op=op, site=site
        )
    if out._backward is not None:
        versions = None
        if _STATE.check_mutation:
            versions = tuple(array_version(p.data) for p in parents)
        out._anomaly = _OpRecord(op, site, versions)


def _on_seed(tensor, grad):
    """Check the user-supplied (or default) seed gradient of backward()."""
    if _STATE.check_nan and _is_float(grad) and not np.all(np.isfinite(grad)):
        raise AnomalyError(
            "non-finite seed gradient passed to backward()",
            op="backward",
            site=_creation_site(),
        )


def _before_node_backward(node):
    """Verify parents were not mutated since the op was recorded."""
    rec = node._anomaly
    if rec is None or rec.parent_versions is None or not _STATE.check_mutation:
        return
    for i, (parent, stamp) in enumerate(zip(node._prev, rec.parent_versions)):
        if array_version(parent.data) != stamp:
            raise AnomalyError(
                "in-place mutation of a taped array detected (input %d "
                "changed between forward record and backward)" % i,
                op=rec.op,
                site=rec.site,
            )


def _after_node_backward(node, parent_grads):
    """Check gradients a backward closure just produced."""
    rec = node._anomaly
    op = rec.op if rec is not None else "<op>"
    site = rec.site if rec is not None else None
    for parent, grad in zip(node._prev, parent_grads):
        if grad is None or not parent.requires_grad:
            continue
        grad = np.asarray(grad)
        if _STATE.check_nan and _is_float(grad) and not np.all(np.isfinite(grad)):
            raise AnomalyError(
                "non-finite gradient produced in backward pass", op=op, site=site
            )
        if _STATE.check_dtype:
            if grad.shape != parent.data.shape:
                raise AnomalyError(
                    "gradient shape %s does not match input shape %s"
                    % (grad.shape, parent.data.shape),
                    op=op,
                    site=site,
                )
            if (
                _is_float(grad)
                and _is_float(parent.data)
                and grad.dtype.itemsize > parent.data.dtype.itemsize
            ):
                raise AnomalyError(
                    "%s gradient flowing into %s tensor (precision widening)"
                    % (grad.dtype, parent.data.dtype),
                    op=op,
                    site=site,
                )


def _on_accumulate(leaf, grad):
    """Check a gradient about to accumulate into a leaf's ``.grad``."""
    if not _STATE.check_dtype:
        return
    grad = np.asarray(grad)
    if grad.shape != leaf.data.shape:
        raise AnomalyError(
            "accumulated gradient shape %s does not match leaf shape %s"
            % (grad.shape, leaf.data.shape),
            op="<accumulate>",
        )
    if (
        _is_float(grad)
        and _is_float(leaf.data)
        and grad.dtype.itemsize > leaf.data.dtype.itemsize
    ):
        raise AnomalyError(
            "%s gradient accumulating into %s leaf (precision widening)"
            % (grad.dtype, leaf.data.dtype),
            op="<accumulate>",
        )
