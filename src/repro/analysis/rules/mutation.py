"""Mutation-hygiene rules.

numpy arrays are reference types: a function that mutates an argument in
place corrupts caller-owned data — and, when that array is already
recorded on the autograd tape, silently corrupts every gradient computed
from it (the runtime counterpart of these rules is
:func:`repro.analysis.sanitizer.detect_anomaly`).
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["MutableDefaultRule", "ParamInPlaceMutationRule"]

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict"}


class MutableDefaultRule(Rule):
    """MUT001: no mutable default arguments.

    A mutable default is created once at definition time and shared by
    every call — classic source of state leaking across experiments.
    """

    id = "MUT001"
    name = "mutable-default-argument"
    description = "mutable default argument (list/dict/set literal or constructor)"

    @staticmethod
    def _is_mutable(node):
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            return name in _MUTABLE_CALLS
        return False

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        "mutable default argument in %r; use None and "
                        "initialise inside the function" % node.name,
                    )


class ParamInPlaceMutationRule(Rule):
    """MUT002: no in-place mutation of function parameters.

    ``x[...] = v`` or ``x += v`` on a bare parameter name writes through
    to the caller's array.  Copy first (``x = x.copy()``) or document the
    contract with a noqa justification.
    """

    id = "MUT002"
    name = "parameter-inplace-mutation"
    description = "in-place mutation (subscript/augmented assign) of a parameter"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            params = {
                a.arg
                for a in (
                    list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
                )
            }
            params.discard("self")
            params.discard("cls")
            if args.vararg:
                params.add(args.vararg.arg)
            yield from self._check_body(ctx, node, params)

    def _check_body(self, ctx, func, params):
        # A param that is also plainly rebound (`x = x.copy()`, `x =
        # np.asarray(x)` ...) points at a function-local object by the
        # time it is written, so mutations of it are considered local.
        rebound = set()
        body_nodes = []
        for node in ast.walk(func):
            if node is func or isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            body_nodes.append(node)
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        rebound.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                rebound.add(node.target.id)

        live = params - rebound
        for node in body_nodes:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        base = target.value
                        if isinstance(base, ast.Name) and base.id in live:
                            yield self.finding(
                                ctx,
                                target,
                                "in-place write to parameter %r mutates the "
                                "caller's array; copy before mutating" % base.id,
                            )
            elif isinstance(node, ast.AugAssign):
                target = node.target
                base = target.value if isinstance(target, ast.Subscript) else target
                if isinstance(base, ast.Name) and base.id in live:
                    yield self.finding(
                        ctx,
                        node,
                        "augmented assignment mutates parameter %r in place; "
                        "copy before mutating" % base.id,
                    )
