"""RNG discipline rules.

Reproducibility of every table and figure in the paper hinges on seeded,
explicitly-threaded random number generation.  The legacy global
``np.random.*`` API is banned, and even the modern API must be seeded.
"""

from __future__ import annotations

import ast

from ..engine import Rule
from ..fixes import Fix

__all__ = ["BareNumpyRandomRule", "UnseededGeneratorRule"]

# Attributes of np.random that are part of the *modern*, allowed API.
_ALLOWED_RANDOM_ATTRS = {"default_rng", "Generator", "SeedSequence", "BitGenerator",
                         "PCG64", "Philox", "SFC64", "MT19937"}

_NUMPY_ALIASES = {"np", "numpy"}


def _is_np_random(node):
    """True for an ``np.random`` / ``numpy.random`` attribute chain base."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in _NUMPY_ALIASES
    )


class BareNumpyRandomRule(Rule):
    """RNG001: no bare ``np.random.*`` calls.

    The legacy global-state API (``np.random.rand``, ``np.random.choice``
    ...) makes results depend on import order and on every other caller
    in the process.  Thread an explicit ``np.random.default_rng(seed)``
    Generator instead.
    """

    id = "RNG001"
    name = "bare-numpy-random"
    description = ("bare np.random.* call; thread an explicit seeded "
                   "Generator (np.random.default_rng(seed)) instead")

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr not in _ALLOWED_RANDOM_ATTRS
                and _is_np_random(func.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "np.random.%s uses hidden global RNG state; pass a seeded "
                    "np.random.Generator instead" % func.attr,
                )


class UnseededGeneratorRule(Rule):
    """RNG002: ``np.random.default_rng()`` must receive an explicit seed.

    An unseeded Generator draws entropy from the OS, so two runs of the
    same experiment silently diverge.
    """

    id = "RNG002"
    name = "unseeded-default-rng"
    description = "np.random.default_rng() called without an explicit seed"

    @staticmethod
    def _fix_for(ctx, node):
        """Seedable-constructor injection: swap the unseeded call for
        ``fresh_generator()`` (independent stream of the seeded process
        root) and import it."""
        if node.lineno != getattr(node, "end_lineno", None):
            return None
        segment = ast.get_source_segment(ctx.source, node)
        if not segment:
            return None
        line_text = ctx.lines[node.lineno - 1]
        if line_text.count(segment) != 1:
            return None
        return Fix(
            [(node.lineno, segment, "fresh_generator()")],
            add_imports=("from repro._rng import fresh_generator",),
        )

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_default_rng = (
                isinstance(func, ast.Attribute)
                and func.attr == "default_rng"
                and _is_np_random(func.value)
            ) or (isinstance(func, ast.Name) and func.id == "default_rng")
            if is_default_rng and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() without a seed is non-reproducible; pass "
                    "an explicit seed or an existing Generator",
                    fix=self._fix_for(ctx, node),
                )
