"""Rule registry for the repro lint engine.

``all_rules()`` returns one fresh instance of every registered rule, in
stable id order.  Add new rules by importing the class and appending it
to ``RULE_CLASSES``.
"""

from __future__ import annotations

from ..flow import DtypeFlowRule, ForkSafetyRule, RngTaintRule
from .api import AllExportDriftRule, SamplerValidationRule, UnusedNoqaRule
from .autograd import MissingNoGradRule, TapeDataEscapeRule, TensorDtypeRule
from .evals import DirectSqliteRule
from .mutation import MutableDefaultRule, ParamInPlaceMutationRule
from .observability import RawClockRule
from .parallelism import DirectMultiprocessingRule
from .resilience import (
    NonAtomicArtifactWriteRule,
    RawCheckpointIORule,
    SwallowedExceptionRule,
)
from .rng import BareNumpyRandomRule, UnseededGeneratorRule
from .serving import JournalFileAccessRule, RawSocketServerRule

__all__ = [
    "RULE_CLASSES",
    "all_rules",
    "rule_index",
    "AllExportDriftRule",
    "SamplerValidationRule",
    "UnusedNoqaRule",
    "MissingNoGradRule",
    "TapeDataEscapeRule",
    "TensorDtypeRule",
    "MutableDefaultRule",
    "ParamInPlaceMutationRule",
    "NonAtomicArtifactWriteRule",
    "RawCheckpointIORule",
    "SwallowedExceptionRule",
    "RawClockRule",
    "DirectMultiprocessingRule",
    "DirectSqliteRule",
    "JournalFileAccessRule",
    "RawSocketServerRule",
    "BareNumpyRandomRule",
    "UnseededGeneratorRule",
    "DtypeFlowRule",
    "ForkSafetyRule",
    "RngTaintRule",
]

RULE_CLASSES = (
    BareNumpyRandomRule,    # RNG001
    UnseededGeneratorRule,  # RNG002
    MutableDefaultRule,     # MUT001
    ParamInPlaceMutationRule,  # MUT002
    MissingNoGradRule,      # GRAD001
    TapeDataEscapeRule,     # TAPE001
    TensorDtypeRule,        # DTYPE001
    SamplerValidationRule,  # VAL001
    NonAtomicArtifactWriteRule,  # RES001
    SwallowedExceptionRule,      # RES002
    RawCheckpointIORule,         # RES003
    AllExportDriftRule,     # EXP001
    RawClockRule,           # OBS001
    DirectMultiprocessingRule,  # PAR001
    RawSocketServerRule,    # SRV001
    JournalFileAccessRule,  # SRV002
    DirectSqliteRule,       # EVAL001
    UnusedNoqaRule,         # NOQA001
    RngTaintRule,           # FLOW-RNG (whole-program)
    DtypeFlowRule,          # FLOW-DTYPE (whole-program)
    ForkSafetyRule,         # FLOW-FORK (whole-program)
)


def all_rules():
    """Fresh instances of every registered rule."""
    return [cls() for cls in RULE_CLASSES]


def rule_index():
    """Mapping of rule id -> (name, description, severity)."""
    return {
        cls.id: (cls.name, cls.description, cls.severity) for cls in RULE_CLASSES
    }
