"""Fault-tolerance hygiene rules.

The resume machinery in :mod:`repro.resilience` only works if every
artifact on disk is written atomically (temp file + fsync + rename) and
if failures actually propagate to the retry/degradation layer instead of
being silently swallowed.  These rules keep both invariants honest at
the source level.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["NonAtomicArtifactWriteRule", "SwallowedExceptionRule"]

_NUMPY_ALIASES = {"np", "numpy"}
_NUMPY_WRITERS = {"save", "savez", "savez_compressed", "savetxt"}
_WRITE_MODE_CHARS = set("wax")


def _open_mode(node):
    """The constant mode string of a builtin ``open()`` call, or None."""
    mode = node.args[1] if len(node.args) > 1 else None
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


class NonAtomicArtifactWriteRule(Rule):
    """RES001: artifact writes must go through the atomic writer.

    A direct ``np.savez(path, ...)`` or ``open(path, "w")`` that dies
    mid-write leaves a torn file that poisons every later resume.  Route
    writes through :func:`repro.utils.serialization.atomic_write` (or
    the ``save_*`` helpers built on it) so a crash leaves either the old
    artifact or none.
    """

    id = "RES001"
    name = "non-atomic-artifact-write"
    description = ("direct np.save*/open(..., 'w') artifact write bypasses "
                   "repro.utils.serialization.atomic_write")

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _NUMPY_WRITERS
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_ALIASES
            ):
                yield self.finding(
                    ctx,
                    node,
                    "np.%s writes the artifact in place (torn file on "
                    "crash); use repro.utils.serialization.atomic_write "
                    "or save_arrays" % func.attr,
                )
            elif isinstance(func, ast.Name) and func.id == "open":
                mode = _open_mode(node)
                if mode is not None and _WRITE_MODE_CHARS & set(mode):
                    yield self.finding(
                        ctx,
                        node,
                        "open(..., %r) writes the file in place (torn file "
                        "on crash); use repro.utils.serialization."
                        "atomic_write" % mode,
                    )


class SwallowedExceptionRule(Rule):
    """RES002: no bare ``except:`` and no silently-swallowed exceptions.

    A bare ``except:`` traps ``KeyboardInterrupt``/``SystemExit`` (and
    the fault harness's ``SimulatedKill``), while an ``except ...: pass``
    hides the divergence/timeout errors the retry and degradation layers
    exist to handle.  Catch specific types and act on them — or justify
    the swallow with a noqa comment on the ``except`` line.
    """

    id = "RES002"
    name = "swallowed-exception"
    description = ("bare except:, or an except handler whose body only "
                   "passes, silently swallows failures")

    @staticmethod
    def _is_noop(stmt):
        if isinstance(stmt, ast.Pass):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    yield self.finding(
                        ctx,
                        handler,
                        "bare except: also traps KeyboardInterrupt/"
                        "SystemExit/SimulatedKill; name the exception "
                        "types you mean to handle",
                    )
                elif all(self._is_noop(stmt) for stmt in handler.body):
                    yield self.finding(
                        ctx,
                        handler,
                        "exception handler swallows the error without "
                        "acting on it; handle it, re-raise, or justify "
                        "with a noqa on this line",
                    )
