"""Fault-tolerance hygiene rules.

The resume machinery in :mod:`repro.resilience` only works if every
artifact on disk is written atomically (temp file + fsync + rename) and
if failures actually propagate to the retry/degradation layer instead of
being silently swallowed.  These rules keep both invariants honest at
the source level.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["NonAtomicArtifactWriteRule", "RawCheckpointIORule",
           "SwallowedExceptionRule"]

_NUMPY_ALIASES = {"np", "numpy"}
_NUMPY_WRITERS = {"save", "savez", "savez_compressed", "savetxt"}
_WRITE_MODE_CHARS = set("wax")
#: npz checkpoint I/O that must route through repro.utils.serialization.
_CHECKPOINT_IO = {"load", "savez", "savez_compressed"}


def _in_serialization_module(path):
    return path.replace("\\", "/").endswith("utils/serialization.py")


def _open_mode(node):
    """The constant mode string of a builtin ``open()`` call, or None."""
    mode = node.args[1] if len(node.args) > 1 else None
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


class NonAtomicArtifactWriteRule(Rule):
    """RES001: artifact writes must go through the atomic writer.

    A direct ``np.savez(path, ...)`` or ``open(path, "w")`` that dies
    mid-write leaves a torn file that poisons every later resume.  Route
    writes through :func:`repro.utils.serialization.atomic_write` (or
    the ``save_*`` helpers built on it) so a crash leaves either the old
    artifact or none.
    """

    id = "RES001"
    name = "non-atomic-artifact-write"
    description = ("direct np.save*/open(..., 'w') artifact write bypasses "
                   "repro.utils.serialization.atomic_write")

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _NUMPY_WRITERS
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_ALIASES
            ):
                yield self.finding(
                    ctx,
                    node,
                    "np.%s writes the artifact in place (torn file on "
                    "crash); use repro.utils.serialization.atomic_write "
                    "or save_arrays" % func.attr,
                )
            elif isinstance(func, ast.Name) and func.id == "open":
                mode = _open_mode(node)
                if mode is not None and _WRITE_MODE_CHARS & set(mode):
                    yield self.finding(
                        ctx,
                        node,
                        "open(..., %r) writes the file in place (torn file "
                        "on crash); use repro.utils.serialization."
                        "atomic_write" % mode,
                    )


class RawCheckpointIORule(Rule):
    """RES003: checkpoint ``.npz`` I/O must route through the
    serialization module.

    :mod:`repro.utils.serialization` is the only place that records and
    verifies sha256 digest sidecars and that wraps truncated-zip errors
    in :class:`repro.resilience.CheckpointCorruptError`.  A direct
    ``np.load(path)`` elsewhere reads an artifact *without* integrity
    verification (and surfaces corruption as a raw ``zipfile`` error),
    and a direct ``np.savez`` writes one with no digest to verify —
    both silently punch holes in the quarantine/recompute guarantees of
    :mod:`repro.guard`.
    """

    id = "RES003"
    name = "raw-checkpoint-io"
    description = ("direct np.load/np.savez of checkpoint artifacts "
                   "outside repro.utils.serialization bypasses digest "
                   "verification")

    def check(self, ctx):
        if _in_serialization_module(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _CHECKPOINT_IO
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_ALIASES
            ):
                yield self.finding(
                    ctx,
                    node,
                    "np.%s bypasses the digest-verified checkpoint I/O in "
                    "repro.utils.serialization; use load_arrays/save_arrays "
                    "(or the model/embedding helpers)" % func.attr,
                )


class SwallowedExceptionRule(Rule):
    """RES002: no bare ``except:`` and no silently-swallowed exceptions.

    A bare ``except:`` traps ``KeyboardInterrupt``/``SystemExit`` (and
    the fault harness's ``SimulatedKill``), while an ``except ...: pass``
    hides the divergence/timeout errors the retry and degradation layers
    exist to handle.  Catch specific types and act on them — or justify
    the swallow with a noqa comment on the ``except`` line.
    """

    id = "RES002"
    name = "swallowed-exception"
    description = ("bare except:, or an except handler whose body only "
                   "passes, silently swallows failures")

    @staticmethod
    def _is_noop(stmt):
        if isinstance(stmt, ast.Pass):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    yield self.finding(
                        ctx,
                        handler,
                        "bare except: also traps KeyboardInterrupt/"
                        "SystemExit/SimulatedKill; name the exception "
                        "types you mean to handle",
                    )
                elif all(self._is_noop(stmt) for stmt in handler.body):
                    yield self.finding(
                        ctx,
                        handler,
                        "exception handler swallows the error without "
                        "acting on it; handle it, re-raise, or justify "
                        "with a noqa on this line",
                    )
