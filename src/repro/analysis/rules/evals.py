"""Result-store discipline rules.

All result persistence flows through
:class:`repro.evals.store.ResultStore`: one schema-versioned,
WAL-mode, append-only sqlite database written from the parent process
only.  A direct ``sqlite3.connect`` elsewhere opens a database with no
schema version to check, no idempotent-insert discipline, and no
append-only guarantee — exactly the drift the store exists to rule
out.  EVAL001 pins every module outside ``repro/evals/store.py`` to
the store API.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["DirectSqliteRule"]


def _in_store_module(path):
    normalized = path.replace("\\", "/")
    return normalized.endswith("evals/store.py")


class DirectSqliteRule(Rule):
    """EVAL001: no ``sqlite3`` use outside ``repro.evals.store``.

    The :class:`~repro.evals.store.ResultStore` is the single
    sanctioned sqlite surface; a raw connection bypasses schema
    versioning and the idempotent append-only write discipline that
    makes killed-and-resumed runs duplicate-free.
    """

    id = "EVAL001"
    name = "direct-sqlite"
    description = ("direct sqlite3 use outside repro.evals.store "
                   "bypasses the schema-versioned ResultStore")

    def check(self, ctx):
        if _in_store_module(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "sqlite3":
                        yield self.finding(
                            ctx,
                            node,
                            "import of sqlite3 outside repro.evals.store; "
                            "query results through ResultStore",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and (node.module or "").split(".")[0] == "sqlite3":
                    yield self.finding(
                        ctx,
                        node,
                        "import from sqlite3 outside repro.evals.store; "
                        "query results through ResultStore",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "connect"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "sqlite3"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "sqlite3.connect outside repro.evals.store opens "
                        "an unversioned database; use ResultStore",
                    )
