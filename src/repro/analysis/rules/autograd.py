"""Autograd-tape hygiene rules.

These rules encode the safety conventions of the hand-rolled tape engine
in :mod:`repro.tensor`: inference code must not record tape nodes,
``.data`` buffers must not escape into persisted state without a copy,
and tensor construction must not silently mix float precisions.
"""

from __future__ import annotations

import ast
import re

from ..engine import Rule

__all__ = ["MissingNoGradRule", "TapeDataEscapeRule", "TensorDtypeRule"]

_EVAL_NAME_RE = re.compile(
    r"^(predict|evaluate|extract_features|extract_embeddings|infer|inference)"
)
_MODEL_NAMES = {"model", "net", "network", "classifier", "encoder", "decoder",
                "extractor", "backbone"}
_PERSIST_NAMES = re.compile(r"(^|_)(save|savez|savez_compressed|dump|tofile)($|_)")


def _call_name(func):
    """Trailing identifier of a call target (``a.b.c(...)`` -> ``c``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class MissingNoGradRule(Rule):
    """GRAD001: eval/inference paths must run under ``no_grad``.

    A ``predict``/``evaluate``/``extract_*`` function that invokes a
    model forward pass without ``with no_grad():`` records a full tape
    per batch — silently multiplying inference memory and walking the
    graph on the next ``backward``.
    """

    id = "GRAD001"
    name = "missing-no-grad"
    description = ("eval/inference function runs a model forward pass outside "
                   "a no_grad() block")
    severity = "error"

    @staticmethod
    def _is_forward_call(node):
        """Model-invocation heuristics: ``self.model(x)``, ``model(x)``,
        ``anything.forward(x)``."""
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "forward":
                return True
            return func.attr in _MODEL_NAMES and isinstance(func.value, ast.Name)
        if isinstance(func, ast.Name):
            return func.id in _MODEL_NAMES
        return False

    @staticmethod
    def _has_no_grad(func_node):
        for node in ast.walk(func_node):
            if isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    name = _call_name(expr)
                    if name == "no_grad":
                        return True
        return False

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not _EVAL_NAME_RE.match(node.name):
                continue
            forward_calls = [
                n
                for n in ast.walk(node)
                if isinstance(n, ast.Call) and self._is_forward_call(n)
            ]
            if forward_calls and not self._has_no_grad(node):
                yield self.finding(
                    ctx,
                    forward_calls[0],
                    "%r runs a model forward pass without no_grad(); inference "
                    "must not record tape nodes" % node.name,
                )


class TapeDataEscapeRule(Rule):
    """TAPE001: no raw ``.data`` buffers into persistence calls.

    ``Tensor.data`` shares memory with the live tape.  Handing it to
    ``np.save*``/``pickle.dump`` persists a view that later in-place
    updates (optimizer steps) will have mutated.  Persist a copy.
    """

    id = "TAPE001"
    name = "tape-data-escape"
    description = ("raw Tensor .data passed to a save/dump call; persist "
                   ".data.copy() instead")
    severity = "error"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name is None or not _PERSIST_NAMES.search(name):
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                if isinstance(value, ast.Attribute) and value.attr == "data":
                    yield self.finding(
                        ctx,
                        value,
                        "raw .data buffer passed to %s(); it aliases the live "
                        "tape — persist .data.copy()" % name,
                    )


class TensorDtypeRule(Rule):
    """DTYPE001: no reduced-precision dtypes at tensor-construction sites.

    The autograd stack standardises on float64.  Constructing
    ``Tensor``/``Parameter`` leaves as float32/float16 invites float64
    gradients flowing into float32 leaves — exactly the mismatch
    ``detect_anomaly()`` traps at runtime.
    """

    id = "DTYPE001"
    name = "tensor-dtype-mix"
    description = ("Tensor/Parameter constructed with a reduced-precision "
                   "dtype (float32/float16)")
    severity = "warning"

    _CTORS = {"Tensor", "Parameter"}
    _BAD_DTYPES = {"float32", "float16", "half", "single"}

    def _is_bad_dtype(self, node):
        if isinstance(node, ast.Attribute):
            return node.attr in self._BAD_DTYPES
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value in self._BAD_DTYPES
        if isinstance(node, ast.Name):
            return node.id in self._BAD_DTYPES
        return False

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name not in self._CTORS:
                continue
            for kw in node.keywords:
                if kw.arg == "dtype" and self._is_bad_dtype(kw.value):
                    yield self.finding(
                        ctx,
                        kw.value,
                        "%s constructed with reduced precision; the autograd "
                        "stack standardises on float64 (use detect_anomaly() "
                        "to see the resulting grad-dtype mismatches)" % name,
                    )
