"""Public-API discipline rules.

Samplers must validate their inputs at the public boundary, and each
module's ``__all__`` must agree with what the module actually defines —
drift in either direction means either unvalidated data entering the
pipeline or phantom/unreachable exports.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["SamplerValidationRule", "AllExportDriftRule", "UnusedNoqaRule"]


class SamplerValidationRule(Rule):
    """VAL001: ``fit_resample`` must validate or delegate.

    Every public sampler entry point either calls ``validate_xy`` on its
    inputs or delegates to another ``fit_resample`` (which does).
    """

    id = "VAL001"
    name = "sampler-missing-validation"
    description = ("fit_resample neither calls validate_xy nor delegates to "
                   "another fit_resample")

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef) or node.name != "fit_resample":
                continue
            validated = False
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                func = inner.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if name in ("validate_xy", "fit_resample", "_validate_xy"):
                    validated = True
                    break
            if not validated:
                yield self.finding(
                    ctx,
                    node,
                    "fit_resample must call validate_xy (or delegate to a "
                    "validating fit_resample) before touching X/y",
                )


class AllExportDriftRule(Rule):
    """EXP001: ``__all__`` must match the module's public definitions.

    Flags names exported but never defined, and public top-level
    functions/classes defined but missing from an existing ``__all__``.
    """

    id = "EXP001"
    name = "all-export-drift"
    description = "__all__ disagrees with the module's top-level definitions"

    @staticmethod
    def _exported_names(tree):
        """Return (node, names) for a top-level ``__all__`` list/tuple."""
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        names = [
                            elt.value
                            for elt in node.value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        ]
                        return node, names
        return None, None

    @staticmethod
    def _defined_names(tree):
        defined, defs_only = set(), set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined.add(node.name)
                defs_only.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    defined.add(node.target.id)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    defined.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    defined.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, (ast.If, ast.Try)):
                # Conditional definitions (TYPE_CHECKING, optional deps).
                for sub in ast.walk(node):
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        defined.add(sub.name)
                    elif isinstance(sub, ast.ImportFrom):
                        for alias in sub.names:
                            defined.add(alias.asname or alias.name)
        return defined, defs_only

    def check(self, ctx):
        node, exported = self._exported_names(ctx.tree)
        if node is None:
            return
        defined, defs_only = self._defined_names(ctx.tree)
        for name in exported:
            if name not in defined and name != "*":
                yield self.finding(
                    ctx,
                    node,
                    "__all__ exports %r which is not defined in this module"
                    % name,
                )
        exported_set = set(exported)
        for name in sorted(defs_only):
            if not name.startswith("_") and name not in exported_set:
                yield self.finding(
                    ctx,
                    node,
                    "public definition %r is missing from __all__ (export it "
                    "or make it private)" % name,
                )


class UnusedNoqaRule(Rule):
    """NOQA001: every ``# repro: noqa`` must suppress a real finding.

    The check itself runs inside the engine (it needs the post-
    suppression view of all other rules); this class exists so the rule
    can be listed, selected and disabled like any other.
    """

    id = "NOQA001"
    name = "unused-noqa"
    description = "suppression comment that does not match any finding"
    severity = "warning"

    def check(self, ctx):
        return iter(())
