"""Serving discipline rules.

All request/response serving in the library flows through
:mod:`repro.serve`, whose daemon pairs every accepted request with a
fsynced journal record before acknowledging it.  A hand-rolled socket
server (raw ``socket`` listeners, ``http.server``, ``socketserver``)
accepts work with no write-ahead journal, no admission control and no
drain semantics: a crash silently loses every in-flight request, which
is exactly the failure mode the serve subsystem exists to rule out.
SRV001 pins every module outside the serve package to the journaled
daemon.

The journal itself has a second invariant: its segment files are only
meaningful through :class:`repro.serve.Journal`, which owns checksum
framing, torn-tail repair, segment ordering and crash-safe compaction.
A raw ``open()`` on a journal path elsewhere can read a half-compacted
segment set or write an unchecksummed line that replay will silently
skip.  SRV002 pins journal file access to ``repro/serve/journal.py``.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["JournalFileAccessRule", "RawSocketServerRule"]

#: Module roots whose import means a hand-rolled server or client.
_SERVER_MODULES = {"socket", "socketserver", "http"}

#: ``from http import ...`` is only a problem for the server half;
#: ``http.HTTPStatus`` style enum use carries no serving machinery.
_HTTP_SERVER_SUBMODULES = {"server"}


def _in_serve_package(path):
    parts = path.replace("\\", "/").split("/")
    return "serve" in parts


class RawSocketServerRule(Rule):
    """SRV001: no raw socket/socketserver/http.server outside repro.serve.

    The journaled daemon (:class:`repro.serve.ReproService`) is the
    single sanctioned serving primitive; a raw listener accepts jobs
    it cannot recover after a crash and sheds load by stalling instead
    of answering with a structured ``retry_after``.
    """

    id = "SRV001"
    name = "raw-socket-server"
    description = ("raw socket/socketserver/http.server outside "
                   "repro.serve; use ReproService / ServeClient")

    def _module_violates(self, module):
        root = module.split(".")[0]
        if root not in _SERVER_MODULES:
            return False
        if root == "http":
            # ``import http`` alone (status enums) is fine; only the
            # server machinery is a parallel serving stack.
            tail = module.split(".")[1:]
            return bool(tail) and tail[0] in _HTTP_SERVER_SUBMODULES
        return True

    def check(self, ctx):
        if _in_serve_package(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._module_violates(alias.name):
                        yield self.finding(
                            ctx,
                            node,
                            "import of %r builds a serving/transport stack "
                            "outside repro.serve; use ReproService (daemon) "
                            "or ServeClient (requests)" % alias.name,
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level != 0:
                    continue
                if self._module_violates(module):
                    yield self.finding(
                        ctx,
                        node,
                        "import from %r builds a serving/transport stack "
                        "outside repro.serve; use ReproService (daemon) "
                        "or ServeClient (requests)" % module,
                    )
                elif (module == "http"
                      and any(alias.name in _HTTP_SERVER_SUBMODULES
                              for alias in node.names)):
                    yield self.finding(
                        ctx,
                        node,
                        "import of http.server builds a serving stack "
                        "outside repro.serve; use ReproService instead",
                    )


def _in_journal_module(path):
    return path.replace("\\", "/").endswith("serve/journal.py")


def _name_tokens(node):
    """Every identifier/string fragment reachable from an expression.

    Used to decide whether an ``open()`` argument *names* a journal:
    the path may be a literal, a variable, an attribute, an f-string,
    a ``%``/``+`` composition or a ``str(...)`` wrapper, and in each
    case the tell is the word appearing somewhere in the expression.
    """
    tokens = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            tokens.append(sub.value)
        elif isinstance(sub, ast.Name):
            tokens.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.append(sub.attr)
        elif isinstance(sub, ast.keyword) and sub.arg:
            tokens.append(sub.arg)
    return tokens


def _is_open_call(func):
    if isinstance(func, ast.Name):
        return func.id == "open"
    if isinstance(func, ast.Attribute) and func.attr == "open":
        return (isinstance(func.value, ast.Name)
                and func.value.id in ("os", "io"))
    return False


class JournalFileAccessRule(Rule):
    """SRV002: journal segment files are opened only by the Journal class.

    ``repro/serve/journal.py`` owns the segment format end to end —
    checksummed lines, torn-tail repair, oldest-first segment ordering
    and the compaction handle switch.  Any other module opening a
    journal path by hand either reads state the Journal is mid-way
    through rewriting or appends bytes replay will reject; route reads
    through :func:`repro.serve.read_journal` and writes through
    :meth:`repro.serve.Journal.append`.
    """

    id = "SRV002"
    name = "journal-file-access"
    description = ("journal file opened outside repro/serve/journal.py; "
                   "use Journal / read_journal")

    def check(self, ctx):
        if _in_journal_module(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_open_call(node.func):
                continue
            if not node.args:
                continue
            if any("journal" in token.lower()
                   for token in _name_tokens(node.args[0])):
                yield self.finding(
                    ctx,
                    node,
                    "direct open() of a journal path outside "
                    "repro/serve/journal.py bypasses checksum framing and "
                    "torn-tail repair; use Journal.append / read_journal",
                )
