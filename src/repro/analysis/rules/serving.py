"""Serving discipline rules.

All request/response serving in the library flows through
:mod:`repro.serve`, whose daemon pairs every accepted request with a
fsynced journal record before acknowledging it.  A hand-rolled socket
server (raw ``socket`` listeners, ``http.server``, ``socketserver``)
accepts work with no write-ahead journal, no admission control and no
drain semantics: a crash silently loses every in-flight request, which
is exactly the failure mode the serve subsystem exists to rule out.
SRV001 pins every module outside the serve package to the journaled
daemon.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["RawSocketServerRule"]

#: Module roots whose import means a hand-rolled server or client.
_SERVER_MODULES = {"socket", "socketserver", "http"}

#: ``from http import ...`` is only a problem for the server half;
#: ``http.HTTPStatus`` style enum use carries no serving machinery.
_HTTP_SERVER_SUBMODULES = {"server"}


def _in_serve_package(path):
    parts = path.replace("\\", "/").split("/")
    return "serve" in parts


class RawSocketServerRule(Rule):
    """SRV001: no raw socket/socketserver/http.server outside repro.serve.

    The journaled daemon (:class:`repro.serve.ReproService`) is the
    single sanctioned serving primitive; a raw listener accepts jobs
    it cannot recover after a crash and sheds load by stalling instead
    of answering with a structured ``retry_after``.
    """

    id = "SRV001"
    name = "raw-socket-server"
    description = ("raw socket/socketserver/http.server outside "
                   "repro.serve; use ReproService / ServeClient")

    def _module_violates(self, module):
        root = module.split(".")[0]
        if root not in _SERVER_MODULES:
            return False
        if root == "http":
            # ``import http`` alone (status enums) is fine; only the
            # server machinery is a parallel serving stack.
            tail = module.split(".")[1:]
            return bool(tail) and tail[0] in _HTTP_SERVER_SUBMODULES
        return True

    def check(self, ctx):
        if _in_serve_package(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._module_violates(alias.name):
                        yield self.finding(
                            ctx,
                            node,
                            "import of %r builds a serving/transport stack "
                            "outside repro.serve; use ReproService (daemon) "
                            "or ServeClient (requests)" % alias.name,
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level != 0:
                    continue
                if self._module_violates(module):
                    yield self.finding(
                        ctx,
                        node,
                        "import from %r builds a serving/transport stack "
                        "outside repro.serve; use ReproService (daemon) "
                        "or ServeClient (requests)" % module,
                    )
                elif (module == "http"
                      and any(alias.name in _HTTP_SERVER_SUBMODULES
                              for alias in node.names)):
                    yield self.finding(
                        ctx,
                        node,
                        "import of http.server builds a serving stack "
                        "outside repro.serve; use ReproService instead",
                    )
