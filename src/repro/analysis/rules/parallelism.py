"""Parallelism discipline rules.

All process fan-out in the library flows through :mod:`repro.parallel`,
which guarantees deterministic per-task seeding, order-preserved result
assembly, per-task fault attribution, and telemetry forwarding.  Direct
``multiprocessing``/``concurrent.futures`` pools (or raw ``os.fork``
calls) bypass every one of those guarantees: a pickled job queue breaks
closure-captured artifacts, a dead worker poisons the whole pool, and
completion-order results silently destroy the serial == parallel
bit-exactness contract.  PAR001 pins every module outside the parallel
package to the deterministic wrapper.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["DirectMultiprocessingRule"]

#: Module roots whose import means a hand-rolled pool.
_POOL_MODULES = {"multiprocessing", "concurrent"}

#: ``os.<attr>`` calls that spawn a raw child process.
_FORK_ATTRS = {"fork", "forkpty"}


def _in_parallel_package(path):
    parts = path.replace("\\", "/").split("/")
    return "parallel" in parts


class DirectMultiprocessingRule(Rule):
    """PAR001: no direct multiprocessing/concurrent.futures/os.fork
    outside repro.parallel.

    The deterministic pool (:func:`repro.parallel.parallel_map`) is the
    single sanctioned fan-out primitive; anything else loses the
    serial == parallel equivalence guarantee, per-task dead-worker
    attribution, and worker telemetry forwarding.
    """

    id = "PAR001"
    name = "direct-multiprocessing"
    description = ("multiprocessing/concurrent.futures/os.fork outside "
                   "repro.parallel; use repro.parallel.parallel_map")

    def check(self, ctx):
        if _in_parallel_package(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _POOL_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            "import of %r bypasses repro.parallel; use "
                            "parallel_map for deterministic fan-out"
                            % alias.name,
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in _POOL_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        "import from %r bypasses repro.parallel; use "
                        "parallel_map for deterministic fan-out"
                        % (node.module or ""),
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _FORK_ATTRS
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "os.%s() forks a raw child process; route worker "
                        "fan-out through repro.parallel.parallel_map"
                        % func.attr,
                    )
