"""Observability discipline rules.

All timing in the library flows through :mod:`repro.telemetry.clock`
(``monotonic`` for durations, ``wall_time`` for timestamps).  Raw
``time.time()`` in experiment code drifts with NTP adjustments and
splits the codebase across two clocks, making trace spans and history
``seconds`` fields incomparable.  OBS001 pins every module outside the
telemetry package to the shared clock.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["RawClockRule"]

#: ``time.<attr>`` reads that must route through repro.telemetry.clock.
_CLOCK_ATTRS = {"time", "perf_counter", "monotonic", "process_time"}


def _in_telemetry_package(path):
    parts = path.replace("\\", "/").split("/")
    return "telemetry" in parts


class RawClockRule(Rule):
    """OBS001: no raw ``time.*()`` clock reads outside repro.telemetry.

    Durations belong on the telemetry monotonic clock and timestamps on
    its ``wall_time`` so every recorded ``seconds`` field is measured
    the same way the tracer measures spans.  Only the telemetry package
    itself may touch :mod:`time` directly.
    """

    id = "OBS001"
    name = "raw-clock-read"
    description = ("raw time.time()/time.perf_counter() outside "
                   "repro.telemetry; use telemetry.monotonic/wall_time")

    def check(self, ctx):
        if _in_telemetry_package(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _CLOCK_ATTRS
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "time.%s() reads a raw clock; use repro.telemetry."
                    "monotonic (durations) or wall_time (timestamps) so "
                    "all timings share the tracer's clock" % func.attr,
                )
