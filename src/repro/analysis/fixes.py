"""Mechanical auto-fixes for lint findings (``repro-lint --fix``).

A rule that knows how to repair its own finding attaches a :class:`Fix`
to it.  A fix is a bundle of same-line textual replacements plus any
import statements the new code needs; :func:`apply_fixes` groups fixes
by file, applies them bottom-up (so earlier edits never shift later
anchors), inserts missing imports after the module's import block, and
writes the result atomically.

The applier is deliberately conservative — a replacement only happens
when its ``old`` text occurs exactly once on the anchored line, so a
stale fix (source drifted since the finding was computed) is skipped
rather than misapplied.  Applying the same fixes twice is a no-op by
construction: once rewritten, the finding (and therefore the fix)
no longer exists, and a replacement whose ``old`` text is gone does
not match.
"""

from __future__ import annotations

import ast
from pathlib import Path

__all__ = ["Fix", "FixResult", "apply_fixes"]


class Fix:
    """A mechanical rewrite that removes one finding.

    Parameters
    ----------
    replacements:
        Iterable of ``(line, old, new)`` triples; ``line`` is 1-based
        and the edit replaces the single occurrence of ``old`` on that
        physical line with ``new``.
    add_imports:
        Import statements (full source lines, e.g.
        ``"from repro._rng import fresh_generator"``) the rewritten
        code requires; inserted once per file, after the existing
        import block, only when not already present.
    """

    __slots__ = ("replacements", "add_imports")

    def __init__(self, replacements, add_imports=()):
        self.replacements = tuple(
            (int(line), str(old), str(new)) for line, old, new in replacements
        )
        self.add_imports = tuple(add_imports)

    def __repr__(self):
        return "Fix(%r, add_imports=%r)" % (
            self.replacements, self.add_imports,
        )


class FixResult:
    """Outcome of one :func:`apply_fixes` pass."""

    __slots__ = ("fixed", "skipped", "files")

    def __init__(self, fixed, skipped, files):
        self.fixed = fixed          # findings whose fix fully applied
        self.skipped = skipped      # findings whose fix did not match
        self.files = files          # sorted list of rewritten paths

    def summary(self):
        return "fixed %d finding(s) in %d file(s)%s" % (
            self.fixed,
            len(self.files),
            ", skipped %d stale fix(es)" % self.skipped if self.skipped else "",
        )


def _import_insertion_line(source):
    """1-based line *after* which new imports go.

    After the last top-level import if there is one, else after the
    module docstring, else at the very top (0 → insert before line 1).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return 0
    last_import = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last_import = max(last_import, node.end_lineno or node.lineno)
    if last_import:
        return last_import
    if (
        tree.body
        and isinstance(tree.body[0], ast.Expr)
        and isinstance(tree.body[0].value, ast.Constant)
        and isinstance(tree.body[0].value.value, str)
    ):
        return tree.body[0].end_lineno or tree.body[0].lineno
    return 0


def apply_fixes(findings, write=True):
    """Apply every attached fix; returns a :class:`FixResult`.

    ``write=False`` dry-runs the application (counts what *would*
    change) without touching the filesystem.
    """
    from ..utils.serialization import atomic_write

    by_path = {}
    for finding in findings:
        if finding.fix is not None:
            by_path.setdefault(finding.path, []).append(finding)

    fixed = skipped = 0
    touched = []
    for path in sorted(by_path):
        source = Path(path).read_text(encoding="utf-8")
        lines = source.splitlines(keepends=True)
        wanted_imports = []

        # Bottom-up, then by rule id for determinism when two fixes
        # share a line.
        ordered = sorted(
            by_path[path],
            key=lambda f: (-f.line, f.rule, f.col),
        )
        changed = False
        for finding in ordered:
            applied = True
            staged = []
            for line_no, old, new in finding.fix.replacements:
                index = line_no - 1
                if index < 0 or index >= len(lines) or \
                        lines[index].count(old) != 1:
                    applied = False
                    break
                staged.append((index, old, new))
            if not applied:
                skipped += 1
                continue
            for index, old, new in staged:
                lines[index] = lines[index].replace(old, new, 1)
            for statement in finding.fix.add_imports:
                if statement not in wanted_imports:
                    wanted_imports.append(statement)
            fixed += 1
            changed = True

        if not changed:
            continue
        new_source = "".join(lines)
        missing = [
            statement for statement in wanted_imports
            if statement not in new_source
        ]
        if missing:
            insert_after = _import_insertion_line(new_source)
            lines = new_source.splitlines(keepends=True)
            block = "".join(statement + "\n" for statement in sorted(missing))
            lines.insert(insert_after, block)
            new_source = "".join(lines)
        if write:
            payload = new_source.encode("utf-8")
            atomic_write(path, lambda fh: fh.write(payload))
        touched.append(path)

    return FixResult(fixed, skipped, touched)
