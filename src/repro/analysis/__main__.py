"""Command-line entry point for the repro lint engine.

Examples::

    PYTHONPATH=src python -m repro.analysis src/
    PYTHONPATH=src python -m repro.analysis --strict --format json src/repro
    PYTHONPATH=src python -m repro.analysis --select FLOW src tests
    PYTHONPATH=src python -m repro.analysis --fix src/
    PYTHONPATH=src python -m repro.analysis --jobs 4 --format sarif src/
    PYTHONPATH=src python -m repro.analysis --update-baseline src tests
    PYTHONPATH=src python -m repro.analysis --list-rules

Baseline semantics: ``--baseline FILE`` subtracts frozen findings from
the report (``.repro-lint-baseline.json`` in the current directory is
picked up automatically when present; ``--no-baseline`` disables the
discovery).  ``--update-baseline`` rewrites the file from the current
findings and exits 0.

``--fix`` applies every mechanical fix the enabled rules attached
(seedable RNG constructor injection for RNG002, explicit dtype kwargs
for FLOW-DTYPE), then re-lints and reports what remains; a second
``--fix`` run is a no-op.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import Baseline
from .engine import LintEngine
from .fixes import apply_fixes
from .rules import rule_index

__all__ = ["main"]

DEFAULT_BASELINE = ".repro-lint-baseline.json"


def _split_ids(spec):
    return [part.strip().upper() for part in spec.split(",") if part.strip()]


def _emit(report, fmt):
    if fmt == "json":
        print(report.format_json())
    elif fmt == "sarif":
        print(report.format_sarif(rule_index()))
    elif fmt == "github":
        print(report.format_github())
    else:
        print(report.format_text())


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repro-specific AST lint engine (RNG discipline, "
        "autograd-tape hygiene, sampler validation...) with whole-program "
        "FLOW-RNG / FLOW-DTYPE / FLOW-FORK dataflow analyses",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any finding, warnings included",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif", "github"),
        default="text",
        help="output format (default: text); 'sarif' emits SARIF 2.1.0, "
        "'github' emits ::error workflow annotations",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids or family prefixes to enable "
        "exclusively (e.g. FLOW selects FLOW-RNG,FLOW-DTYPE,FLOW-FORK)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids or family prefixes to disable",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=1,
        help="lint files across N worker processes via repro.parallel "
        "(finding order is identical at any N; 1 = serial, default)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes for fixable findings, then re-lint",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract findings recorded in this baseline file "
        "(default: %s in the current directory, when present)"
        % DEFAULT_BASELINE,
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any default baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rid, (name, description, severity) in sorted(rule_index().items()):
            print("%s  %-28s [%s] %s" % (rid, name, severity, description))
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis src/)")

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline \
            and Path(DEFAULT_BASELINE).is_file():
        baseline_path = DEFAULT_BASELINE

    try:
        engine = LintEngine(
            select=_split_ids(args.select) if args.select else None,
            ignore=_split_ids(args.ignore) if args.ignore else None,
        )
        report = engine.run(args.paths, jobs=args.jobs)
    except (ValueError, FileNotFoundError) as exc:
        print("repro-lint: error: %s" % exc, file=sys.stderr)
        return 2

    if args.update_baseline:
        target = Path(baseline_path or DEFAULT_BASELINE)
        Baseline.from_findings(report.findings, target.parent).save(target)
        print(
            "baseline: froze %d finding(s) into %s"
            % (len(report.findings), target)
        )
        return 0

    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as exc:
            print("repro-lint: error: bad baseline: %s" % exc, file=sys.stderr)
            return 2
        new, baselined = baseline.filter(report.findings)
        report.findings = new
        report.baselined = len(baselined)

    if args.fix:
        result = apply_fixes(report.findings)
        print("repro-lint: %s" % result.summary())
        report = engine.run(args.paths, jobs=args.jobs)
        if baseline_path is not None:
            new, baselined = baseline.filter(report.findings)
            report.findings = new
            report.baselined = len(baselined)

    try:
        _emit(report, args.format)
    except BrokenPipeError:  # repro: noqa[RES002] downstream closed the pipe early; exit code still reports the findings
        pass
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
