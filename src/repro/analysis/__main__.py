"""Command-line entry point for the repro lint engine.

Examples::

    PYTHONPATH=src python -m repro.analysis src/
    PYTHONPATH=src python -m repro.analysis --strict --format json src/repro
    PYTHONPATH=src python -m repro.analysis --select RNG001,RNG002 src/
    PYTHONPATH=src python -m repro.analysis --list-rules
"""

from __future__ import annotations

import argparse
import sys

from .engine import LintEngine
from .rules import rule_index

__all__ = ["main"]


def _split_ids(spec):
    return [part.strip().upper() for part in spec.split(",") if part.strip()]


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repro-specific AST lint engine (RNG discipline, "
        "autograd-tape hygiene, sampler validation...)",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any finding, warnings included",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to enable exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to disable",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rid, (name, description, severity) in sorted(rule_index().items()):
            print("%s  %-28s [%s] %s" % (rid, name, severity, description))
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis src/)")

    try:
        engine = LintEngine(
            select=_split_ids(args.select) if args.select else None,
            ignore=_split_ids(args.ignore) if args.ignore else None,
        )
        report = engine.run(args.paths)
    except (ValueError, FileNotFoundError) as exc:
        print("repro-lint: error: %s" % exc, file=sys.stderr)
        return 2

    try:
        if args.format == "json":
            print(report.format_json())
        else:
            print(report.format_text())
    except BrokenPipeError:  # repro: noqa[RES002] downstream closed the pipe early; exit code still reports the findings
        pass
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
