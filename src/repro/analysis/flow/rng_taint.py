"""FLOW-RNG: interprocedural RNG taint analysis.

The determinism contract of the sweep machinery (PRs 4–5) is that every
random draw is either threaded from an explicitly seeded generator or
derived from a task's position.  Per-file rules (RNG001/RNG002) ban the
obvious constructions, but taint *flows*: a helper in one module can
return an unseeded generator that another module hands to a sampler,
and a module-global generator — even a seeded one — is shared state
that makes results depend on call order across sweep cells and breaks
the fork-per-task bit-identity guarantee.

Taint sources
    * ``np.random.default_rng()`` with no seed (and bare
      ``default_rng()``);
    * ``random.Random()`` / ``np.random.RandomState()`` with no seed;
    * ``np.random.Generator(PCG64())`` over an unseeded bit generator;
    * module-global generator objects (``rng = default_rng(...)`` at
      module scope), seeded or not — shared stream, order-dependent;
    * calls to any function whose summary says it returns one of the
      above (computed to fixpoint over the project call graph).

Sinks
    * arguments of ``fit_resample`` / ``_fit_resample`` / ``fit`` /
      ``finetune_classifier`` calls — sampler and trainer entry points;
    * arguments of ``parallel_map`` / ``run_cells``, plus free
      variables captured by the task closure handed to them;
    * the *bodies* of ``_fit_resample`` implementations reading a
      module-global generator directly.

Each finding names the source construction site (file:line) so the
cross-module flow is visible from the one-line message.
"""

from __future__ import annotations

import ast
from pathlib import Path

from ..engine import ProjectRule

__all__ = ["RngTaintRule"]

_NUMPY_ALIASES = {"np", "numpy"}
_UNSEEDED_CTORS = {"default_rng", "Random", "RandomState"}
_BITGEN_NAMES = {"PCG64", "Philox", "SFC64", "MT19937"}
_GLOBAL_RNG_CTORS = {"default_rng", "fresh_generator", "Random",
                     "RandomState", "Generator"}
_SINK_CALL_NAMES = {"fit_resample", "_fit_resample", "fit",
                    "finetune_classifier"}
_POOL_CANONICAL = {
    "repro.parallel.pool.parallel_map",
    "repro.parallel.cells.run_cells",
}
_POOL_NAMES = {"parallel_map", "run_cells"}


def _trailing_name(func):
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class _Taint:
    """Why a value is considered RNG-tainted, and where it came from."""

    __slots__ = ("kind", "describe", "site")

    def __init__(self, kind, describe, site):
        self.kind = kind          # "unseeded" | "global"
        self.describe = describe  # human-readable source description
        self.site = site          # "file.py:line"


def _site(module, node):
    return "%s:%d" % (Path(module.path).name, node.lineno)


def _unseeded_rng_call(node):
    """Taint description for an unseeded RNG constructor call, or None."""
    if not isinstance(node, ast.Call):
        return None
    name = _trailing_name(node.func)
    if name in _UNSEEDED_CTORS and not node.args and not node.keywords:
        return "unseeded %s()" % name
    if name == "Generator" and node.args:
        bitgen = node.args[0]
        if (
            isinstance(bitgen, ast.Call)
            and _trailing_name(bitgen.func) in _BITGEN_NAMES
            and not bitgen.args
            and not bitgen.keywords
        ):
            return "Generator over unseeded %s()" % _trailing_name(bitgen.func)
    return None


def _free_names(func_node):
    """Names a function reads but does not bind — its closure captures."""
    bound = set()
    args = func_node.args
    for a in (list(args.posonlyargs) + list(args.args)
              + list(args.kwonlyargs)):
        bound.add(a.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    loads = {}
    body = func_node.body if isinstance(func_node.body, list) \
        else [func_node.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loads.setdefault(node.id, node)
                else:
                    bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
    return {name: node for name, node in loads.items() if name not in bound}


class RngTaintRule(ProjectRule):
    """FLOW-RNG: unseeded or shared-global RNG reaching a determinism sink."""

    id = "FLOW-RNG"
    name = "rng-taint-flow"
    description = ("unseeded or module-global RNG flows into a sampler, "
                   "trainer, or parallel task (whole-program taint analysis)")
    severity = "error"

    # -- taint machinery -------------------------------------------------
    def _global_rngs(self, project):
        """{module_name: {global_name: _Taint}} for module-level RNGs."""
        table = {}
        for module in project.iter_modules():
            found = {}
            for name, gvar in module.globals.items():
                value = gvar.value
                if not isinstance(value, ast.Call):
                    continue
                ctor = _trailing_name(value.func)
                if ctor in _GLOBAL_RNG_CTORS:
                    found[name] = _Taint(
                        "global",
                        "module-global RNG %r (%s at %s)" % (
                            name, ctor, _site(module, value)
                        ),
                        _site(module, value),
                    )
            if found:
                table[module.name] = found
        return table

    def _taint_of(self, expr, env, module, project, summaries, globals_table):
        """Taint of an expression under a local taint environment."""
        if isinstance(expr, ast.Call):
            unseeded = _unseeded_rng_call(expr)
            if unseeded is not None:
                return _Taint("unseeded",
                              "%s at %s" % (unseeded, _site(module, expr)),
                              _site(module, expr))
            callee = project.resolve_call(module, expr)
            if callee is not None:
                inner = summaries.get(callee)
                if inner is not None:
                    return _Taint(
                        inner.kind,
                        "%s() which returns %s" % (
                            callee.rpartition(".")[2], inner.describe
                        ),
                        inner.site,
                    )
            return None
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            module_globals = globals_table.get(module.name, {})
            return module_globals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            dotted = module.dotted_name(expr)
            if dotted is None:
                return None
            owner, _, symbol = dotted.rpartition(".")
            owner_module = project.modules.get(owner)
            if owner_module is not None:
                return globals_table.get(owner_module.name, {}).get(symbol)
        return None

    def _local_env(self, fn, module, project, summaries, globals_table):
        """Name → taint for a function body (iterated for copy chains)."""
        env = {}
        for _ in range(3):
            changed = False
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                taint = self._taint_of(node.value, env, module, project,
                                       summaries, globals_table)
                if taint is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id not in env:
                        env[target.id] = taint
                        changed = True
            if not changed:
                break
        return env

    def _summaries(self, project, globals_table):
        """Fixpoint: canonical name → taint of the function's return."""
        summaries = {}
        for _ in range(len(project.functions) + 1):
            changed = False
            for fn in project.iter_functions():
                if fn.qualname in summaries:
                    continue
                module = fn.module
                env = self._local_env(fn, module, project, summaries,
                                      globals_table)
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Return) and node.value is not None:
                        taint = self._taint_of(
                            node.value, env, module, project, summaries,
                            globals_table,
                        )
                        if taint is not None:
                            summaries[fn.qualname] = taint
                            changed = True
                            break
            if not changed:
                break
        return summaries

    # -- sinks -----------------------------------------------------------
    def _resolve_closure(self, expr, fn, module):
        """The FunctionDef/Lambda a callable argument refers to, or None."""
        if isinstance(expr, ast.Lambda):
            return expr
        if not isinstance(expr, ast.Name):
            return None
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == expr.id:
                return node
        target = module.functions.get(expr.id)
        return target.node if target is not None else None

    def check_project(self, project):
        globals_table = self._global_rngs(project)
        summaries = self._summaries(project, globals_table)

        for fn in project.iter_functions():
            module = fn.module
            env = self._local_env(fn, module, project, summaries,
                                  globals_table)

            for site in fn.call_sites:
                call = site.node
                callee = site.callee
                trailing = _trailing_name(call.func)
                is_pool = callee in _POOL_CANONICAL or (
                    callee is None and trailing in _POOL_NAMES
                ) or (callee is not None
                      and callee.rpartition(".")[2] in _POOL_NAMES)
                is_sink_call = trailing in _SINK_CALL_NAMES or (
                    callee is not None
                    and callee.rpartition(".")[2] in _SINK_CALL_NAMES
                )
                if not (is_pool or is_sink_call):
                    continue
                sink_label = trailing or (callee or "").rpartition(".")[2]

                values = list(call.args) + [kw.value for kw in call.keywords]
                for value in values:
                    taint = self._taint_of(value, env, module, project,
                                           summaries, globals_table)
                    if taint is not None:
                        yield module.ctx.finding(
                            self.id,
                            value,
                            "RNG tainted by %s flows into %s(); thread a "
                            "seeded per-call generator instead"
                            % (taint.describe, sink_label),
                            severity=self.severity,
                        )

                if is_pool and call.args:
                    closure = self._resolve_closure(call.args[0], fn, module)
                    if closure is not None:
                        for name, load in sorted(_free_names(closure).items()):
                            taint = env.get(name) or globals_table.get(
                                module.name, {}
                            ).get(name)
                            if taint is not None:
                                yield module.ctx.finding(
                                    self.id,
                                    load,
                                    "task closure passed to %s() captures "
                                    "%s; workers must derive their own "
                                    "seeded generator from the task seed"
                                    % (sink_label, taint.describe),
                                    severity=self.severity,
                                )

            # Sampler bodies reading a module-global generator directly.
            if fn.name == "_fit_resample":
                module_globals = globals_table.get(module.name, {})
                if module_globals:
                    for node in ast.walk(fn.node):
                        if isinstance(node, ast.Name) \
                                and isinstance(node.ctx, ast.Load) \
                                and node.id in module_globals:
                            yield module.ctx.finding(
                                self.id,
                                node,
                                "_fit_resample() draws from %s; resampling "
                                "must use the sampler's own seeded generator"
                                % module_globals[node.id].describe,
                                severity=self.severity,
                            )
