"""FLOW-FORK: fork-safety capture analysis for parallel task closures.

:func:`repro.parallel.parallel_map` forks one child per task; the task
closure inherits the parent's entire heap copy-on-write.  That makes
three capture patterns silently wrong:

* **open file handles** — parent and children share the file offset,
  so interleaved reads/writes corrupt each other;
* **live telemetry objects** (``Tracer`` / ``MetricsRegistry``
  instances captured from the parent) — spans and counters recorded on
  the parent's object inside a child die with the child; workers must
  call ``get_tracer()``/``get_metrics()`` *inside* the task so the
  pool's merge protocol forwards them;
* **mutation of module globals** — a child's write to a module-level
  list/dict/set (or ``global`` rebind) is discarded at ``_exit``;
  code that aggregates into a global under ``parallel_map`` only works
  serially, which is exactly the bit-identity-breaking divergence the
  pool exists to prevent.

The analysis resolves the task-function argument of every
``parallel_map``/``run_cells`` call (named local function, module
function, or inline lambda), computes its free variables, and
classifies each captured binding against the enclosing function's
locals and the module's globals.
"""

from __future__ import annotations

import ast

from ..engine import ProjectRule
from .rng_taint import _free_names, _trailing_name

__all__ = ["ForkSafetyRule"]

_POOL_CANONICAL = {
    "repro.parallel.pool.parallel_map",
    "repro.parallel.cells.run_cells",
}
_POOL_NAMES = {"parallel_map", "run_cells"}
_TELEMETRY_CTORS = {"Tracer", "MetricsRegistry", "get_tracer", "get_metrics"}
_MUTATOR_METHODS = {"append", "extend", "insert", "add", "update", "setdefault",
                    "pop", "popitem", "remove", "discard", "clear"}


def _is_open_call(node):
    return isinstance(node, ast.Call) and _trailing_name(node.func) == "open"


def _is_telemetry_call(node):
    return isinstance(node, ast.Call) \
        and _trailing_name(node.func) in _TELEMETRY_CTORS


def _mutated_names(func_node):
    """Names a function body writes through: subscript/attribute stores,
    augmented assigns, mutator method calls, and ``global`` rebinds."""
    mutated = {}
    body = func_node.body if isinstance(func_node.body, list) \
        else [func_node.body]
    declared_global = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if isinstance(base, ast.Name) and base is not target:
                        mutated.setdefault(base.id, target)
                    elif isinstance(base, ast.Name) \
                            and base.id in declared_global:
                        mutated.setdefault(base.id, target)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATOR_METHODS \
                    and isinstance(node.func.value, ast.Name):
                mutated.setdefault(node.func.value.id, node)
    for name in declared_global:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for target in targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            mutated.setdefault(name, target)
    return mutated


class ForkSafetyRule(ProjectRule):
    """FLOW-FORK: fork-unsafe captures in parallel task closures."""

    id = "FLOW-FORK"
    name = "fork-safety"
    description = ("task closure handed to parallel_map/run_cells captures "
                   "an open file handle, a live telemetry object, or "
                   "mutates a module global")
    severity = "error"

    def _binding_of(self, name, enclosing, module):
        """The RHS a captured name was bound to: search the enclosing
        function's assignments first, then module globals."""
        if enclosing is not None:
            for node in ast.walk(enclosing.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) \
                                and target.id == name:
                            return node.value, "local"
                elif isinstance(node, ast.withitem) \
                        and isinstance(node.optional_vars, ast.Name) \
                        and node.optional_vars.id == name:
                    return node.context_expr, "local"
        gvar = module.globals.get(name)
        if gvar is not None:
            return gvar.value, "global"
        return None, None

    def _check_closure(self, closure, enclosing, module, sink_label):
        free = _free_names(closure)
        mutated = _mutated_names(closure)
        for name in sorted(free):
            load = free[name]
            value, scope = self._binding_of(name, enclosing, module)
            if value is not None and _is_open_call(value):
                yield module.ctx.finding(
                    self.id,
                    load,
                    "task closure passed to %s() captures open file handle "
                    "%r; forked children share its offset — open the file "
                    "inside the task" % (sink_label, name),
                    severity=self.severity,
                )
            elif value is not None and _is_telemetry_call(value) \
                    and scope == "local":
                yield module.ctx.finding(
                    self.id,
                    load,
                    "task closure passed to %s() captures live telemetry "
                    "object %r from the parent; call get_tracer()/"
                    "get_metrics() inside the task so the pool can merge "
                    "worker telemetry" % (sink_label, name),
                    severity=self.severity,
                )
        for name in sorted(mutated):
            if name not in free:
                continue  # bound inside the closure — shadows any global
            gvar = module.globals.get(name)
            if gvar is None or not gvar.is_mutable_literal():
                continue
            yield module.ctx.finding(
                self.id,
                mutated[name],
                "task closure passed to %s() mutates module global %r; "
                "fork-per-task discards the child's writes — return the "
                "value and aggregate in the parent" % (sink_label, name),
                severity=self.severity,
            )

    def check_project(self, project):
        for fn in project.iter_functions():
            module = fn.module
            for site in fn.call_sites:
                call = site.node
                callee = site.callee
                trailing = _trailing_name(call.func)
                short = (callee or "").rpartition(".")[2]
                if not (callee in _POOL_CANONICAL or short in _POOL_NAMES
                        or (callee is None and trailing in _POOL_NAMES)):
                    continue
                sink_label = trailing or short
                if not call.args:
                    continue
                closures = []
                head = self._resolve_callable(call.args[0], fn, module)
                if head is not None:
                    closures.append(head)
                for value in list(call.args[1:]) + [
                    kw.value for kw in call.keywords
                ]:
                    # run_cells-style (cell_id, thunk) task lists: scan
                    # container expressions for inline lambdas / names.
                    for node in ast.walk(value):
                        if isinstance(node, ast.Lambda):
                            closures.append(node)
                for closure in closures:
                    yield from self._check_closure(closure, fn, module,
                                                  sink_label)

    def _resolve_callable(self, expr, fn, module):
        if isinstance(expr, ast.Lambda):
            return expr
        if not isinstance(expr, ast.Name):
            return None
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == expr.id:
                return node
        target = module.functions.get(expr.id)
        return target.node if target is not None else None
