"""Whole-program dataflow analyses for the repro lint engine.

This package gives :class:`repro.analysis.LintEngine` an interprocedural
layer: the engine parses the whole tree once, builds one
:class:`ProjectModel` (module symbol tables + resolved call graph), and
runs three rule families over it:

* :class:`RngTaintRule` (**FLOW-RNG**) — taint analysis proving that no
  unseeded or module-global RNG reaches a sampler, trainer, or
  parallel task closure;
* :class:`DtypeFlowRule` (**FLOW-DTYPE**) — abstract interpretation
  over the ``{weak, int, float32, float64, unknown}`` dtype lattice,
  flagging silent float64 promotions and implicit-width allocations on
  the autograd hot path;
* :class:`ForkSafetyRule` (**FLOW-FORK**) — capture analysis of task
  closures handed to ``parallel_map``/``run_cells`` (open file
  handles, live telemetry objects, module-global mutation).

``repro-lint --select FLOW src tests`` runs all three project-wide in
one invocation.
"""

from __future__ import annotations

from .dtype_infer import DtypeFlowRule
from .fork_safety import ForkSafetyRule
from .project import (
    CallSite,
    FunctionInfo,
    GlobalVar,
    ModuleInfo,
    ProjectModel,
    module_name_for,
)
from .rng_taint import RngTaintRule

__all__ = [
    "CallSite",
    "DtypeFlowRule",
    "ForkSafetyRule",
    "FunctionInfo",
    "GlobalVar",
    "ModuleInfo",
    "ProjectModel",
    "RngTaintRule",
    "module_name_for",
]
