"""FLOW-DTYPE: abstract interpretation over the dtype lattice.

The float32 migration of the tensor substrate (ROADMAP: "make the
tensor substrate fast") needs a pre-flight guarantee: no op on the
autograd hot path silently promotes to float64, and no allocation
relies on numpy's implicit float64 default.  Per-file rule DTYPE001
only sees construction keywords; this analysis abstractly interprets
every function over the lattice::

    weak  <  int  <  float32  <  float64        (join = promotion)
                       unknown = top

with interprocedural return summaries (a helper returning
``x.astype(np.float32)`` in one module taints arithmetic in another).

Three finding shapes:

* **mix promotion** — a binary op joins a ``float32`` value with a
  ``float64`` value: numpy silently widens, gradients flow back at the
  wrong width, and the float32 migration will change numerics here.
* **implicit float64 allocation** — ``np.zeros/ones/empty/full/
  linspace`` without an explicit ``dtype=`` whose result either feeds
  a ``Tensor``/``Parameter``/``register_buffer`` construction or is
  returned from a hot-path module (``repro.tensor``, ``repro.nn``).
  These are mechanically fixable (``--fix`` appends
  ``dtype=np.float64``), making every default-width decision explicit
  before the default flips.
* **float64 signature default** — a hot-path function signature pins
  ``dtype=np.float64`` (or ``"float64"`` / ``np.double``) as a
  parameter default.  Such defaults bypass the switchable substrate
  default entirely: callers keep allocating wide even after the
  float32 migration.  The fix is ``dtype=None`` resolved against
  ``repro.tensor.default_dtype()`` in the body (the ``one_hot``
  float64 default hid exactly this way until the migration).
"""

from __future__ import annotations

import ast

from ..engine import ProjectRule
from ..fixes import Fix

__all__ = ["DtypeFlowRule"]

WEAK = "weak"          # python scalar: adopts the other operand's dtype
INT = "int"
F32 = "float32"
F64 = "float64"
UNKNOWN = "unknown"

_NUMPY_ALIASES = {"np", "numpy"}
_IMPLICIT_F64_ALLOCS = {"zeros", "ones", "empty", "full", "linspace"}
_F32_NAMES = {"float32", "float16", "half", "single"}
_F64_NAMES = {"float64", "double"}
_INT_NAMES = {"int8", "int16", "int32", "int64", "uint8", "intp", "int_"}
_TENSOR_SINKS = {"Tensor", "Parameter", "register_buffer"}


class _DVal:
    """Abstract value: a lattice dtype plus the allocation node that
    made it implicitly float64 (None when the width was explicit)."""

    __slots__ = ("dtype", "implicit")

    def __init__(self, dtype, implicit=None):
        self.dtype = dtype
        self.implicit = implicit


_UNKNOWN = _DVal(UNKNOWN)
_WEAK = _DVal(WEAK)


def _join(a, b):
    """Lattice join, mirroring numpy promotion (NEP 50 weak scalars)."""
    if a.dtype == UNKNOWN or b.dtype == UNKNOWN:
        return _UNKNOWN
    if a.dtype == WEAK:
        return b
    if b.dtype == WEAK:
        return a
    if a.dtype == b.dtype:
        return _DVal(a.dtype, a.implicit or b.implicit)
    order = {INT: 0, F32: 1, F64: 2}
    wider = a if order.get(a.dtype, 2) >= order.get(b.dtype, 2) else b
    return _DVal(wider.dtype, wider.implicit)


def _trailing_name(func):
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _dtype_from_annotation(node):
    """Lattice dtype named by a dtype expression (np.float32, "float64")."""
    name = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    if name in _F32_NAMES:
        return F32
    if name in _F64_NAMES:
        return F64
    if name in _INT_NAMES:
        return INT
    return UNKNOWN


def _is_numpy_func(func, module, project, names):
    """True for ``np.<name>`` / ``numpy.<name>`` / ``from numpy import
    <name>`` calls (and not a same-named project function)."""
    trailing = _trailing_name(func)
    if trailing not in names:
        return False
    if isinstance(func, ast.Attribute):
        return (isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_ALIASES)
    resolved = module.dotted_name(func)
    return resolved == "numpy.%s" % trailing


def _is_hot_module(module):
    """Hot-path scope: the autograd substrate, plus loose (package-less)
    modules so fixture trees exercise the rule."""
    return module.name.startswith(("repro.tensor", "repro.nn")) \
        or "." not in module.name


class DtypeFlowRule(ProjectRule):
    """FLOW-DTYPE: silent float64 promotion / implicit-width allocation."""

    id = "FLOW-DTYPE"
    name = "dtype-flow"
    description = ("abstract dtype interpretation: float32/float64 mix "
                   "promotions and implicit float64 allocations on the "
                   "autograd hot path")
    severity = "error"

    # -- abstract evaluation --------------------------------------------
    def _infer(self, expr, env, module, project, summaries):
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool):
                return _UNKNOWN
            if isinstance(expr.value, (int, float)):
                return _WEAK
            return _UNKNOWN
        if isinstance(expr, ast.Name):
            return env.get(expr.id, _UNKNOWN)
        if isinstance(expr, ast.UnaryOp):
            return self._infer(expr.operand, env, module, project, summaries)
        if isinstance(expr, ast.BinOp):
            left = self._infer(expr.left, env, module, project, summaries)
            right = self._infer(expr.right, env, module, project, summaries)
            return _join(left, right)
        if isinstance(expr, ast.Subscript):
            return self._infer(expr.value, env, module, project, summaries)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, env, module, project, summaries)
        if isinstance(expr, ast.IfExp):
            return _join(
                self._infer(expr.body, env, module, project, summaries),
                self._infer(expr.orelse, env, module, project, summaries),
            )
        return _UNKNOWN

    def _infer_call(self, call, env, module, project, summaries):
        trailing = _trailing_name(call.func)
        if trailing == "astype":
            if call.args:
                return _DVal(_dtype_from_annotation(call.args[0]))
            for kw in call.keywords:
                if kw.arg == "dtype":
                    return _DVal(_dtype_from_annotation(kw.value))
            return _UNKNOWN
        if trailing in _F32_NAMES and _is_numpy_func(
                call.func, module, project, _F32_NAMES):
            return _DVal(F32)
        if trailing in _F64_NAMES and _is_numpy_func(
                call.func, module, project, _F64_NAMES):
            return _DVal(F64)
        if _is_numpy_func(call.func, module, project, _IMPLICIT_F64_ALLOCS):
            for kw in call.keywords:
                if kw.arg == "dtype":
                    return _DVal(_dtype_from_annotation(kw.value))
            return _DVal(F64, implicit=call)
        if _is_numpy_func(call.func, module, project, {"arange"}):
            for kw in call.keywords:
                if kw.arg == "dtype":
                    return _DVal(_dtype_from_annotation(kw.value))
            return _DVal(INT)
        callee = project.resolve_call(module, call)
        if callee is not None and callee in summaries:
            return summaries[callee]
        return _UNKNOWN

    def _local_env(self, fn, module, project, summaries):
        env = {}
        for _ in range(3):
            changed = False
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                value = self._infer(node.value, env, module, project,
                                    summaries)
                if value.dtype == UNKNOWN:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id not in env:
                        env[target.id] = value
                        changed = True
            if not changed:
                break
        return env

    def _summaries(self, project):
        """Canonical name → return _DVal (implicit flag stripped: the
        finding and fix belong at the allocation site, not the caller)."""
        summaries = {}
        for _ in range(len(project.functions) + 1):
            changed = False
            for fn in project.iter_functions():
                if fn.qualname in summaries:
                    continue
                env = self._local_env(fn, fn.module, project, summaries)
                result = None
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Return) and node.value is not None:
                        value = self._infer(node.value, env, fn.module,
                                            project, summaries)
                        result = value if result is None \
                            else _join(result, value)
                if result is not None and result.dtype != UNKNOWN:
                    summaries[fn.qualname] = _DVal(result.dtype)
                    changed = True
            if not changed:
                break
        return summaries

    # -- fixes -----------------------------------------------------------
    def _implicit_fix(self, alloc, module):
        """Append ``dtype=np.float64`` to a single-line allocation call."""
        if alloc.lineno != getattr(alloc, "end_lineno", None):
            return None
        if module.imports.get("np") == "numpy":
            alias = "np"
        elif module.imports.get("numpy") == "numpy":
            alias = "numpy"
        else:
            return None
        segment = ast.get_source_segment(module.source, alloc)
        if not segment or "\n" in segment or not segment.endswith(")"):
            return None
        line_text = module.ctx.lines[alloc.lineno - 1]
        if line_text.count(segment) != 1:
            return None
        replacement = "%s, dtype=%s.float64)" % (segment[:-1], alias)
        if not alloc.args and not alloc.keywords:
            replacement = "%sdtype=%s.float64)" % (segment[:-1], alias)
        return Fix([(alloc.lineno, segment, replacement)])

    def _signature_defaults(self, fn, module):
        """Findings for float64-pinned parameter defaults in hot modules."""
        args = fn.node.args
        positional = args.posonlyargs + args.args
        paired = list(
            zip(positional[len(positional) - len(args.defaults):],
                args.defaults)
        )
        paired += [
            (arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        ]
        for arg, default in paired:
            if not isinstance(default, (ast.Attribute, ast.Name, ast.Constant)):
                continue
            if _dtype_from_annotation(default) != F64:
                continue
            yield module.ctx.finding(
                self.id,
                default,
                "signature default pins %r to float64, bypassing the "
                "switchable substrate default; use None and resolve "
                "default_dtype() in the body" % arg.arg,
                severity=self.severity,
            )

    # -- rule body -------------------------------------------------------
    def check_project(self, project):
        summaries = self._summaries(project)
        for fn in project.iter_functions():
            module = fn.module
            env = self._local_env(fn, module, project, summaries)
            flagged_allocs = set()

            if _is_hot_module(module):
                yield from self._signature_defaults(fn, module)

            for node in ast.walk(fn.node):
                if isinstance(node, (ast.BinOp, ast.AugAssign)):
                    if isinstance(node, ast.AugAssign):
                        left = env.get(node.target.id, _UNKNOWN) \
                            if isinstance(node.target, ast.Name) else _UNKNOWN
                        right = self._infer(node.value, env, module,
                                            project, summaries)
                    else:
                        left = self._infer(node.left, env, module, project,
                                           summaries)
                        right = self._infer(node.right, env, module, project,
                                            summaries)
                    if {left.dtype, right.dtype} == {F32, F64}:
                        yield module.ctx.finding(
                            self.id,
                            node,
                            "float32 operand meets float64 operand; numpy "
                            "silently promotes — align dtypes explicitly "
                            "before the float32 migration flips defaults",
                            severity=self.severity,
                        )
                elif isinstance(node, ast.Call):
                    trailing = _trailing_name(node.func)
                    if trailing not in _TENSOR_SINKS:
                        continue
                    for value in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        inferred = self._infer(value, env, module, project,
                                               summaries)
                        alloc = inferred.implicit
                        if alloc is None or id(alloc) in flagged_allocs:
                            continue
                        flagged_allocs.add(id(alloc))
                        yield module.ctx.finding(
                            self.id,
                            alloc,
                            "implicit float64 allocation flows into %s(); "
                            "pass an explicit dtype so the float32 "
                            "migration can retarget it" % trailing,
                            severity=self.severity,
                            fix=self._implicit_fix(alloc, module),
                        )
                elif isinstance(node, ast.Return) and node.value is not None \
                        and _is_hot_module(module):
                    inferred = self._infer(node.value, env, module, project,
                                           summaries)
                    alloc = inferred.implicit
                    if alloc is None or id(alloc) in flagged_allocs:
                        continue
                    flagged_allocs.add(id(alloc))
                    yield module.ctx.finding(
                        self.id,
                        alloc,
                        "hot-path function %r returns an implicit float64 "
                        "allocation; pass an explicit dtype" % fn.name,
                        severity=self.severity,
                        fix=self._implicit_fix(alloc, module),
                    )
