"""Whole-program model: module symbol tables + interprocedural call graph.

The flow analyses (:mod:`repro.analysis.flow`) all start from the same
question — *who calls whom with what* — so the engine parses the whole
tree once and builds one :class:`ProjectModel`:

* a :class:`ModuleInfo` per parseable file, with its import table
  (alias → dotted target, relative imports resolved against the
  module's package), its top-level functions/methods as
  :class:`FunctionInfo` records, and its module-level globals;
* per-function call sites with callees resolved to *canonical* dotted
  names, following re-export chains (``from .pool import parallel_map``
  in ``repro.parallel/__init__`` makes ``repro.parallel.parallel_map``
  canonicalise to ``repro.parallel.pool.parallel_map``).

Module names are derived from the filesystem: a file inside nested
``__init__.py`` packages gets its real dotted path (``src/repro/nn/
layers.py`` → ``repro.nn.layers``); a loose file (test fixture trees)
is just its stem.  Resolution is best-effort and static — dynamic
dispatch, ``getattr`` and star imports resolve to ``None`` and the
analyses treat those calls as opaque.
"""

from __future__ import annotations

import ast
from pathlib import Path

from ..engine import ModuleContext

__all__ = [
    "CallSite",
    "FunctionInfo",
    "GlobalVar",
    "ModuleInfo",
    "ProjectModel",
    "module_name_for",
]

_MUTABLE_CTORS = {"list", "dict", "set", "defaultdict", "OrderedDict",
                  "Counter", "deque"}


def module_name_for(path):
    """Dotted module name for a file, walking up ``__init__.py`` packages."""
    p = Path(path).resolve()
    parts = [] if p.name == "__init__.py" else [p.stem]
    d = p.parent
    while (d / "__init__.py").exists():
        parts.insert(0, d.name)
        parent = d.parent
        if parent == d:
            break
        d = parent
    return ".".join(parts) if parts else p.stem


class CallSite:
    """One ``ast.Call`` inside a function, with its resolved callee."""

    __slots__ = ("node", "callee", "function")

    def __init__(self, node, callee, function):
        self.node = node
        self.callee = callee        # canonical dotted name or None
        self.function = function    # enclosing FunctionInfo

    def __repr__(self):
        return "CallSite(%s -> %s)" % (
            self.function.qualname if self.function else "<module>",
            self.callee,
        )


class FunctionInfo:
    """A function or method definition plus its resolved call sites."""

    __slots__ = ("module", "node", "name", "class_name", "qualname",
                 "params", "call_sites")

    def __init__(self, module, node, class_name=None):
        self.module = module
        self.node = node
        self.name = node.name
        self.class_name = class_name
        local = "%s.%s" % (class_name, node.name) if class_name else node.name
        self.qualname = "%s.%s" % (module.name, local)
        args = node.args
        self.params = [a.arg for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )]
        if args.vararg:
            self.params.append(args.vararg.arg)
        if args.kwarg:
            self.params.append(args.kwarg.arg)
        self.call_sites = []

    def __repr__(self):
        return "FunctionInfo(%s)" % self.qualname


class GlobalVar:
    """A module-level binding (``NAME = <expr>`` at module scope)."""

    __slots__ = ("name", "node", "value")

    def __init__(self, name, node, value):
        self.name = name
        self.node = node      # the assignment statement
        self.value = value    # the RHS expression (or None)

    def is_mutable_literal(self):
        value = self.value
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            return name in _MUTABLE_CTORS
        return False


class ModuleInfo:
    """Symbol table for one parsed module."""

    def __init__(self, name, path, source, tree):
        self.name = name
        self.path = str(path)
        self.source = source
        self.tree = tree
        self.ctx = ModuleContext(path, source, tree)
        self.imports = {}      # local alias -> dotted target
        self.functions = {}    # "f" / "Cls.m" -> FunctionInfo
        self.classes = {}      # class name -> ClassDef node
        self.globals = {}      # name -> GlobalVar
        self._index_top_level()

    # -- symbol table ---------------------------------------------------
    def _package(self):
        """Dotted package containing this module."""
        if Path(self.path).name == "__init__.py":
            return self.name
        return self.name.rpartition(".")[0]

    def _index_top_level(self):
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        self.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = "%s.%s" % (base, alias.name) if base else alias.name
                    self.imports[local] = target
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionInfo(self, node)
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        info = FunctionInfo(self, item,
                                            class_name=node.name)
                        self.functions["%s.%s" % (node.name, item.name)] = info
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.globals[target.id] = GlobalVar(
                            target.id, node, getattr(node, "value", None)
                        )

    def _resolve_from_base(self, node):
        """Dotted base module of a ``from X import ...`` statement."""
        if node.level == 0:
            return node.module
        package = self._package()
        parts = package.split(".") if package else []
        up = node.level - 1
        if up > len(parts):
            return None
        if up:
            parts = parts[:-up]
        if node.module:
            parts.append(node.module)
        return ".".join(parts) if parts else None

    # -- expression resolution ------------------------------------------
    def dotted_name(self, expr, class_name=None):
        """Resolve a Name/Attribute chain to a project dotted name.

        ``class_name`` enables ``self.method`` resolution inside a
        method of that class.  Returns None for locals, calls, and
        anything dynamic.
        """
        parts = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.insert(0, node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base == "self" and class_name is not None and parts:
            return ".".join([self.name, class_name] + parts)
        if base in self.imports:
            return ".".join([self.imports[base]] + parts)
        if base in self.functions or base in self.classes \
                or base in self.globals:
            return ".".join([self.name, base] + parts)
        return None


class ProjectModel:
    """All modules of a run, with a resolved interprocedural call graph."""

    def __init__(self, modules):
        self.modules = modules                      # name -> ModuleInfo
        self.by_path = {m.path: m for m in modules.values()}
        self.functions = {}                         # canonical -> FunctionInfo
        for module in modules.values():
            for info in module.functions.values():
                self.functions[info.qualname] = info
        self._canonical_cache = {}
        for module in modules.values():
            self._link_calls(module)

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, sources):
        """Build from ``{path: (source, tree_or_None)}``.

        Trees are re-parsed from source when absent (the parallel lint
        path ships sources, not trees, across the process boundary).
        Unparseable files are skipped — the engine reports their syntax
        errors separately.
        """
        modules = {}
        for path in sorted(sources):
            source, tree = sources[path]
            if tree is None:
                try:
                    tree = ast.parse(source, filename=str(path))
                except SyntaxError:
                    continue
            name = module_name_for(path)
            if name in modules:
                # Two files mapping to one dotted name (loose fixture
                # trees); keep both addressable via a path suffix.
                name = "%s@%s" % (name, path)
            modules[name] = ModuleInfo(name, path, source, tree)
        return cls(modules)

    # -- canonicalisation -----------------------------------------------
    def canonical(self, dotted):
        """Follow re-export chains to the defining module's name.

        ``repro.parallel.parallel_map`` → ``repro.parallel.pool.
        parallel_map`` when ``repro.parallel/__init__`` re-exports it.
        """
        if dotted is None:
            return None
        if dotted in self._canonical_cache:
            return self._canonical_cache[dotted]
        seen, current = set(), dotted
        while current not in seen:
            seen.add(current)
            if current in self.functions:
                break
            redirected = self._follow_import(current)
            if redirected is None:
                break
            current = redirected
        self._canonical_cache[dotted] = current
        return current

    def _follow_import(self, dotted):
        """One re-export hop: resolve ``pkg.symbol[.rest]`` through
        ``pkg``'s import table."""
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:split])
            module = self.modules.get(module_name)
            if module is None:
                continue
            symbol = parts[split]
            rest = parts[split + 1:]
            if symbol in module.imports:
                return ".".join([module.imports[symbol]] + rest)
            return None
        return None

    def resolve_call(self, module, call, class_name=None):
        """Canonical dotted callee of an ``ast.Call`` (or None)."""
        return self.canonical(module.dotted_name(call.func, class_name))

    def function(self, dotted):
        """FunctionInfo for a dotted name, following re-exports."""
        return self.functions.get(self.canonical(dotted))

    def _link_calls(self, module):
        for info in module.functions.values():
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    callee = self.resolve_call(module, node,
                                               class_name=info.class_name)
                    info.call_sites.append(CallSite(node, callee, info))

    # -- iteration helpers ----------------------------------------------
    def iter_functions(self):
        for name in sorted(self.functions):
            yield self.functions[name]

    def iter_modules(self):
        for name in sorted(self.modules):
            yield self.modules[name]
