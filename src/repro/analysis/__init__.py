"""Static analysis and runtime sanitizers for the reproduction.

Three coordinated layers of correctness tooling:

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — an
  AST-based lint engine with repro-specific per-file rules (RNG
  discipline, tape hygiene, sampler validation, export drift...).
* :mod:`repro.analysis.flow` — whole-program dataflow analyses (the
  ``FLOW-RNG`` / ``FLOW-DTYPE`` / ``FLOW-FORK`` families) built on a
  project-wide symbol table and call graph, with mechanical auto-fixes
  (:mod:`repro.analysis.fixes`) and a frozen-debt baseline
  (:mod:`repro.analysis.baseline`).  Run everything as
  ``python -m repro.analysis [--strict] [--fix] src/`` or via the
  ``repro-lint`` console script.
* :mod:`repro.analysis.sanitizer` — the opt-in ``detect_anomaly()``
  runtime tape sanitizer for the autograd engine.
"""

from .baseline import Baseline, finding_key
from .engine import (
    Finding,
    LintEngine,
    LintReport,
    ModuleContext,
    ProjectRule,
    Rule,
)
from .fixes import Fix, FixResult, apply_fixes
from .flow import ProjectModel
from .rules import RULE_CLASSES, all_rules, rule_index
from .sanitizer import AnomalyError, array_version, detect_anomaly, is_anomaly_enabled

__all__ = [
    "Baseline",
    "Finding",
    "Fix",
    "FixResult",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "RULE_CLASSES",
    "all_rules",
    "apply_fixes",
    "finding_key",
    "rule_index",
    "AnomalyError",
    "array_version",
    "detect_anomaly",
    "is_anomaly_enabled",
]
