"""Static analysis and runtime sanitizers for the reproduction.

Two coordinated layers of correctness tooling:

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — an
  AST-based lint engine with repro-specific rules (RNG discipline, tape
  hygiene, sampler validation, export drift...).  Run it as
  ``python -m repro.analysis [--strict] src/`` or via the
  ``repro-lint`` console script.
* :mod:`repro.analysis.sanitizer` — the opt-in ``detect_anomaly()``
  runtime tape sanitizer for the autograd engine.
"""

from .engine import Finding, LintEngine, LintReport, ModuleContext, Rule
from .rules import RULE_CLASSES, all_rules, rule_index
from .sanitizer import AnomalyError, array_version, detect_anomaly, is_anomaly_enabled

__all__ = [
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "Rule",
    "RULE_CLASSES",
    "all_rules",
    "rule_index",
    "AnomalyError",
    "array_version",
    "detect_anomaly",
    "is_anomaly_enabled",
]
