"""Finding baselines: freeze pre-existing lint debt, fail only on new.

A baseline file (conventionally ``.repro-lint-baseline.json`` at the
repo root) records every finding that existed when it was written, as
``(rule, path, message) → count`` entries — deliberately *line-free*,
so unrelated edits that shift line numbers do not resurrect frozen
debt.  ``repro-lint --baseline FILE`` subtracts baselined findings from
the report; ``--update-baseline`` rewrites the file from the current
tree.  The committed baseline plus the CI gate test means new
violations fail the build while historical ones stay visible (and
shrink as they get fixed — a baseline entry that no longer matches
anything is dropped on the next ``--update-baseline``).

Paths are stored relative to the baseline file's directory so the file
is stable across checkouts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["Baseline", "finding_key"]


def finding_key(finding, root):
    """Stable identity of a finding for baseline matching."""
    path = finding.path
    try:
        path = os.path.relpath(path, root)
    except ValueError:  # repro: noqa[RES002] different drive (windows); the absolute path is the fallback key
        pass
    return "%s::%s::%s" % (finding.rule, path.replace(os.sep, "/"),
                           finding.message)


class Baseline:
    """A frozen set of findings, keyed by :func:`finding_key`."""

    def __init__(self, entries, root):
        self.entries = dict(entries)   # key -> count
        self.root = str(root)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_findings(cls, findings, root):
        entries = {}
        for finding in findings:
            key = finding_key(finding, root)
            entries[key] = entries.get(key, 0) + 1
        return cls(entries, root)

    @classmethod
    def load(cls, path):
        path = Path(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != 1:
            raise ValueError(
                "unsupported baseline version %r in %s"
                % (payload.get("version"), path)
            )
        entries = {
            "%s::%s::%s" % (e["rule"], e["path"], e["message"]): int(e["count"])
            for e in payload.get("entries", ())
        }
        return cls(entries, path.parent)

    def save(self, path):
        """Write the baseline; byte-stable (sorted entries, fixed layout)."""
        from ..utils.serialization import atomic_write

        entries = []
        for key in sorted(self.entries):
            rule, rel_path, message = key.split("::", 2)
            entries.append(
                {
                    "rule": rule,
                    "path": rel_path,
                    "message": message,
                    "count": self.entries[key],
                }
            )
        payload = json.dumps({"version": 1, "entries": entries}, indent=2,
                             sort_keys=True) + "\n"
        data = payload.encode("utf-8")
        atomic_write(path, lambda fh: fh.write(data))

    # -- filtering ------------------------------------------------------
    def filter(self, findings):
        """Split ``findings`` into (new, baselined).

        Per key, up to ``count`` findings are absorbed by the baseline;
        any excess (the same debt duplicated further) counts as new.
        """
        remaining = dict(self.entries)
        new, baselined = [], []
        for finding in findings:
            key = finding_key(finding, self.root)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined
