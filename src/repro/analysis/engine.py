"""AST-based lint engine specialised for this reproduction.

The engine is deliberately small: it parses every ``*.py`` file under
the given paths once, hands the parsed module to each enabled
:class:`Rule`, collects :class:`Finding` objects, and then applies
``# repro: noqa[RULE]`` suppression comments.  It exists because the
usual PyTorch safety nets do not apply to a hand-rolled numpy autograd
stack — RNG discipline, tape hygiene and dtype policy have to be
enforced by our own tooling.

Suppression syntax (always on the flagged line)::

    something_risky()  # repro: noqa[RNG001] justification text
    other_thing()      # repro: noqa  (blanket, suppresses every rule)

Usage::

    engine = LintEngine()
    report = engine.run(["src/repro"])
    print(report.format_text())
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from pathlib import Path

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "LintEngine",
    "LintReport",
    "NoqaComment",
    "parse_noqa_comments",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")


class Finding:
    """A single lint finding anchored to a file and line."""

    __slots__ = ("rule", "path", "line", "col", "message", "severity")

    def __init__(self, rule, path, line, col, message, severity="error"):
        self.rule = rule
        self.path = str(path)
        self.line = int(line)
        self.col = int(col)
        self.message = message
        self.severity = severity

    def to_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def __repr__(self):
        return "Finding(%s %s:%d:%d %s)" % (
            self.rule,
            self.path,
            self.line,
            self.col,
            self.message,
        )


class NoqaComment:
    """A ``# repro: noqa`` comment found in a source file."""

    __slots__ = ("line", "rules", "used")

    def __init__(self, line, rules):
        self.line = int(line)
        self.rules = rules  # frozenset of rule ids, or None for blanket
        self.used = False

    def suppresses(self, rule_id):
        return self.rules is None or rule_id in self.rules


def parse_noqa_comments(source):
    """Extract ``# repro: noqa`` comments, keyed by physical line number.

    Uses the tokenizer so that string literals containing the marker are
    not misread as suppressions.
    """
    comments = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if not match:
                continue
            spec = match.group(1)
            if spec is None:
                rules = None
            else:
                rules = frozenset(
                    part.strip().upper() for part in spec.split(",") if part.strip()
                )
            comments[tok.start[0]] = NoqaComment(tok.start[0], rules)
    except tokenize.TokenError:  # repro: noqa[RES002] unterminated source still lints; it just loses noqa handling
        pass
    return comments


class ModuleContext:
    """Everything a rule needs to inspect one parsed module."""

    def __init__(self, path, source, tree):
        self.path = str(path)
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.noqa = parse_noqa_comments(source)

    def finding(self, rule, node, message, severity="error"):
        """Build a Finding anchored at an AST node (or (line, col) pair)."""
        if isinstance(node, tuple):
            line, col = node
        else:
            line, col = node.lineno, getattr(node, "col_offset", 0)
        return Finding(rule, self.path, line, col, message, severity)


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` / ``name`` / ``description`` and implement
    :meth:`check`, yielding :class:`Finding` objects.
    """

    id = "RULE000"
    name = "base-rule"
    description = ""
    severity = "error"

    def check(self, ctx):
        raise NotImplementedError

    def finding(self, ctx, node, message):
        return ctx.finding(self.id, node, message, severity=self.severity)


class LintReport:
    """Findings plus bookkeeping from one engine run."""

    def __init__(self, findings, suppressed, files_checked):
        self.findings = findings
        self.suppressed = suppressed
        self.files_checked = files_checked

    @property
    def error_count(self):
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warning_count(self):
        return sum(1 for f in self.findings if f.severity == "warning")

    def exit_code(self, strict=False):
        """0 when clean; 1 when errors (or, under --strict, any finding)."""
        if self.error_count:
            return 1
        if strict and self.findings:
            return 1
        return 0

    def format_text(self):
        lines = []
        for f in self.findings:
            lines.append(
                "%s:%d:%d: %s [%s] %s"
                % (f.path, f.line, f.col, f.severity, f.rule, f.message)
            )
        lines.append(
            "%d file(s) checked: %d error(s), %d warning(s), %d suppressed"
            % (
                self.files_checked,
                self.error_count,
                self.warning_count,
                len(self.suppressed),
            )
        )
        return "\n".join(lines)

    def format_json(self):
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "errors": self.error_count,
                "warnings": self.warning_count,
                "suppressed": len(self.suppressed),
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


class LintEngine:
    """Run a set of rules over python files.

    Parameters
    ----------
    rules:
        Iterable of Rule instances.  Defaults to the full registry from
        :mod:`repro.analysis.rules`.
    select / ignore:
        Optional iterables of rule ids enabling or disabling rules.
        ``select`` wins when both are given.
    """

    def __init__(self, rules=None, select=None, ignore=None):
        if rules is None:
            from .rules import all_rules

            rules = all_rules()
        rules = list(rules)
        known = {r.id for r in rules}
        for spec in (select or ()), (ignore or ()):
            for rid in spec:
                if rid not in known:
                    raise ValueError("unknown rule id %r (known: %s)"
                                     % (rid, ", ".join(sorted(known))))
        if select:
            wanted = set(select)
            rules = [r for r in rules if r.id in wanted]
        elif ignore:
            unwanted = set(ignore)
            rules = [r for r in rules if r.id not in unwanted]
        self.rules = rules

    # ------------------------------------------------------------------
    @staticmethod
    def collect_files(paths):
        files = []
        for path in paths:
            p = Path(path)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(p)
            else:
                raise FileNotFoundError("not a python file or directory: %s" % path)
        return files

    def check_source(self, source, path="<string>"):
        """Lint one in-memory module; returns (findings, noqa_comments)."""
        tree = ast.parse(source, filename=str(path))
        ctx = ModuleContext(path, source, tree)
        findings = []
        for rule in self.rules:
            findings.extend(rule.check(ctx))
        return findings, ctx.noqa

    def run(self, paths):
        """Lint every file under ``paths`` and return a :class:`LintReport`."""
        findings, suppressed = [], []
        files = self.collect_files(paths)
        check_unused_noqa = any(r.id == "NOQA001" for r in self.rules)
        for path in files:
            source = path.read_text(encoding="utf-8")
            try:
                raw, noqa = self.check_source(source, path)
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        "SYNTAX",
                        path,
                        exc.lineno or 1,
                        exc.offset or 0,
                        "syntax error: %s" % exc.msg,
                    )
                )
                continue
            for f in raw:
                comment = noqa.get(f.line)
                if comment is not None and comment.suppresses(f.rule):
                    comment.used = True
                    suppressed.append(f)
                else:
                    findings.append(f)
            if check_unused_noqa:
                for comment in noqa.values():
                    if not comment.used:
                        findings.append(
                            Finding(
                                "NOQA001",
                                path,
                                comment.line,
                                0,
                                "unused suppression: no finding on this line "
                                "matches this noqa comment",
                                severity="warning",
                            )
                        )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return LintReport(findings, suppressed, len(files))
