"""AST-based lint engine specialised for this reproduction.

The engine is deliberately small: it parses every ``*.py`` file under
the given paths once, hands the parsed module to each enabled
:class:`Rule`, collects :class:`Finding` objects, and then applies
``# repro: noqa[RULE]`` suppression comments.  It exists because the
usual PyTorch safety nets do not apply to a hand-rolled numpy autograd
stack — RNG discipline, tape hygiene and dtype policy have to be
enforced by our own tooling.

Two rule shapes plug into the engine:

* :class:`Rule` — per-file rules.  ``check(ctx)`` sees one parsed
  module at a time.
* :class:`ProjectRule` — whole-program rules (the ``FLOW-*`` families
  in :mod:`repro.analysis.flow`).  The engine parses the entire tree
  first, builds one :class:`repro.analysis.flow.ProjectModel`, and
  hands it to ``check_project(project)``; findings may be anchored to
  *any* file in the project.  Suppression is always resolved against
  the noqa comments of the file a finding is anchored to — a noqa in
  the file that *triggered* an interprocedural finding does not
  suppress a finding anchored elsewhere.

Suppression syntax (always on the flagged line)::

    something_risky()  # repro: noqa[RNG001] justification text
    other_thing()      # repro: noqa  (blanket, suppresses every rule)
    third_thing()      # repro: noqa[RNG001,FLOW-RNG] multiple ids

Usage::

    engine = LintEngine()
    report = engine.run(["src/repro"])
    print(report.format_text())
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from pathlib import Path

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "ProjectRule",
    "LintEngine",
    "LintReport",
    "NoqaComment",
    "parse_noqa_comments",
]

# Rule ids may contain hyphens (the FLOW-* families), so the id class
# includes ``-`` — ``noqa[RNG001,FLOW-RNG]`` parses as two ids.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_\-,\s]+)\])?")


class Finding:
    """A single lint finding anchored to a file and line.

    ``fix`` optionally carries a :class:`repro.analysis.fixes.Fix`
    describing a mechanical rewrite that removes the finding;
    ``repro-lint --fix`` applies it.
    """

    __slots__ = ("rule", "path", "line", "col", "message", "severity", "fix")

    def __init__(self, rule, path, line, col, message, severity="error",
                 fix=None):
        self.rule = rule
        self.path = str(path)
        self.line = int(line)
        self.col = int(col)
        self.message = message
        self.severity = severity
        self.fix = fix

    def to_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "fixable": self.fix is not None,
        }

    def __repr__(self):
        return "Finding(%s %s:%d:%d %s)" % (
            self.rule,
            self.path,
            self.line,
            self.col,
            self.message,
        )


class NoqaComment:
    """A ``# repro: noqa`` comment found in a source file."""

    __slots__ = ("line", "rules", "used")

    def __init__(self, line, rules):
        self.line = int(line)
        self.rules = rules  # frozenset of rule ids, or None for blanket
        self.used = False

    def suppresses(self, rule_id):
        return self.rules is None or rule_id in self.rules


def parse_noqa_comments(source):
    """Extract ``# repro: noqa`` comments, keyed by physical line number.

    Uses the tokenizer so that string literals containing the marker are
    not misread as suppressions.
    """
    comments = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if not match:
                continue
            spec = match.group(1)
            if spec is None:
                rules = None
            else:
                rules = frozenset(
                    part.strip().upper() for part in spec.split(",") if part.strip()
                )
            comments[tok.start[0]] = NoqaComment(tok.start[0], rules)
    except tokenize.TokenError:  # repro: noqa[RES002] unterminated source still lints; it just loses noqa handling
        pass
    return comments


class ModuleContext:
    """Everything a rule needs to inspect one parsed module."""

    def __init__(self, path, source, tree):
        self.path = str(path)
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.noqa = parse_noqa_comments(source)

    def finding(self, rule, node, message, severity="error", fix=None):
        """Build a Finding anchored at an AST node (or (line, col) pair)."""
        if isinstance(node, tuple):
            line, col = node
        else:
            line, col = node.lineno, getattr(node, "col_offset", 0)
        return Finding(rule, self.path, line, col, message, severity, fix=fix)


class Rule:
    """Base class for per-file lint rules.

    Subclasses set ``id`` / ``name`` / ``description`` and implement
    :meth:`check`, yielding :class:`Finding` objects.
    """

    id = "RULE000"
    name = "base-rule"
    description = ""
    severity = "error"
    requires_project = False

    def check(self, ctx):
        raise NotImplementedError

    def finding(self, ctx, node, message, fix=None):
        return ctx.finding(self.id, node, message, severity=self.severity,
                           fix=fix)


class ProjectRule(Rule):
    """Base class for whole-program rules.

    ``check_project`` receives a :class:`repro.analysis.flow.ProjectModel`
    covering every parseable file of the run and yields findings that
    may be anchored to any of them.  ``check(ctx)`` is a no-op so
    project rules degrade gracefully under :meth:`LintEngine.check_source`
    (which has no project to offer).
    """

    requires_project = True

    def check(self, ctx):
        return ()

    def check_project(self, project):
        raise NotImplementedError


class LintReport:
    """Findings plus bookkeeping from one engine run."""

    def __init__(self, findings, suppressed, files_checked, baselined=0):
        self.findings = findings
        self.suppressed = suppressed
        self.files_checked = files_checked
        self.baselined = baselined

    @property
    def error_count(self):
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warning_count(self):
        return sum(1 for f in self.findings if f.severity == "warning")

    @property
    def fixable_count(self):
        return sum(1 for f in self.findings if f.fix is not None)

    def exit_code(self, strict=False):
        """0 when clean; 1 when errors (or, under --strict, any finding)."""
        if self.error_count:
            return 1
        if strict and self.findings:
            return 1
        return 0

    def format_text(self):
        lines = []
        for f in self.findings:
            lines.append(
                "%s:%d:%d: %s [%s] %s"
                % (f.path, f.line, f.col, f.severity, f.rule, f.message)
            )
        summary = "%d file(s) checked: %d error(s), %d warning(s), %d suppressed" % (
            self.files_checked,
            self.error_count,
            self.warning_count,
            len(self.suppressed),
        )
        if self.baselined:
            summary += ", %d baselined" % self.baselined
        if self.fixable_count:
            summary += " (%d fixable with --fix)" % self.fixable_count
        lines.append(summary)
        return "\n".join(lines)

    def format_json(self):
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "errors": self.error_count,
                "warnings": self.warning_count,
                "suppressed": len(self.suppressed),
                "baselined": self.baselined,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )

    def format_sarif(self, rule_index=None):
        """SARIF 2.1.0 — the format GitHub code scanning ingests."""
        seen_rules = []
        for f in self.findings:
            if f.rule not in seen_rules:
                seen_rules.append(f.rule)
        driver_rules = []
        for rid in sorted(seen_rules):
            entry = {"id": rid}
            if rule_index and rid in rule_index:
                name, description, _severity = rule_index[rid]
                entry["name"] = name
                entry["shortDescription"] = {"text": description}
            driver_rules.append(entry)
        results = [
            {
                "ruleId": f.rule,
                "level": "error" if f.severity == "error" else "warning",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": f.line,
                                "startColumn": max(1, f.col + 1),
                            },
                        }
                    }
                ],
            }
            for f in self.findings
        ]
        payload = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri":
                                "https://github.com/repro/repro",
                            "rules": driver_rules,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(payload, indent=2)

    def format_github(self):
        """GitHub Actions workflow annotations (``::error file=...``)."""
        lines = [
            "::%s file=%s,line=%d,col=%d,title=%s::%s"
            % (
                "error" if f.severity == "error" else "warning",
                f.path,
                f.line,
                max(1, f.col + 1),
                f.rule,
                f.message.replace("%", "%25").replace("\n", "%0A"),
            )
            for f in self.findings
        ]
        lines.append(
            "%d file(s) checked: %d error(s), %d warning(s)"
            % (self.files_checked, self.error_count, self.warning_count)
        )
        return "\n".join(lines)


class _FileResult:
    """Per-file lint output: raw findings + noqa table (+ tree when the
    pass ran serially, so project rules can reuse the parse)."""

    __slots__ = ("path", "source", "findings", "noqa", "tree", "syntax_error")

    def __init__(self, path, source, findings, noqa, tree=None,
                 syntax_error=False):
        self.path = path
        self.source = source
        self.findings = findings
        self.noqa = noqa
        self.tree = tree
        self.syntax_error = syntax_error

    def __getstate__(self):
        # Trees never cross a process boundary: the parent re-parses
        # from source when project rules need them.
        return (self.path, self.source, self.findings, self.noqa,
                self.syntax_error)

    def __setstate__(self, state):
        self.path, self.source, self.findings, self.noqa, \
            self.syntax_error = state
        self.tree = None


def _spec_matches(spec, rule_id):
    """True when a --select/--ignore spec names this rule.

    A spec is either an exact rule id (``RNG001``, ``FLOW-RNG``) or a
    family prefix: ``FLOW`` matches every ``FLOW-*`` rule, ``RNG``
    matches ``RNG001``/``RNG002``.
    """
    if rule_id == spec:
        return True
    if rule_id.startswith(spec + "-"):
        return True
    return rule_id.startswith(spec) and rule_id[len(spec):].isdigit()


class LintEngine:
    """Run a set of rules over python files.

    Parameters
    ----------
    rules:
        Iterable of Rule instances.  Defaults to the full registry from
        :mod:`repro.analysis.rules`.
    select / ignore:
        Optional iterables of rule ids or family prefixes enabling or
        disabling rules (``FLOW`` selects all three ``FLOW-*``
        analyses).  ``select`` wins when both are given.
    """

    def __init__(self, rules=None, select=None, ignore=None):
        if rules is None:
            from .rules import all_rules

            rules = all_rules()
        rules = list(rules)
        known = {r.id for r in rules}
        for spec in (select or ()), (ignore or ()):
            for rid in spec:
                if not any(_spec_matches(rid, k) for k in known):
                    raise ValueError("unknown rule id %r (known: %s)"
                                     % (rid, ", ".join(sorted(known))))
        if select:
            wanted = list(select)
            rules = [r for r in rules
                     if any(_spec_matches(s, r.id) for s in wanted)]
        elif ignore:
            unwanted = list(ignore)
            rules = [r for r in rules
                     if not any(_spec_matches(s, r.id) for s in unwanted)]
        self.rules = rules

    # ------------------------------------------------------------------
    @staticmethod
    def collect_files(paths):
        files = []
        for path in paths:
            p = Path(path)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(p)
            else:
                raise FileNotFoundError("not a python file or directory: %s" % path)
        return files

    @property
    def file_rules(self):
        return [r for r in self.rules if not r.requires_project]

    @property
    def project_rules(self):
        return [r for r in self.rules if r.requires_project]

    def check_source(self, source, path="<string>"):
        """Lint one in-memory module; returns (findings, noqa_comments).

        Only per-file rules run here — project rules need the whole
        tree and therefore only fire under :meth:`run`.
        """
        tree = ast.parse(source, filename=str(path))
        ctx = ModuleContext(path, source, tree)
        findings = []
        for rule in self.file_rules:
            findings.extend(rule.check(ctx))
        return findings, ctx.noqa

    # ------------------------------------------------------------------
    def _lint_file(self, path, keep_tree):
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            finding = Finding(
                "SYNTAX",
                path,
                exc.lineno or 1,
                exc.offset or 0,
                "syntax error: %s" % exc.msg,
            )
            return _FileResult(str(path), source, [finding], {},
                               syntax_error=True)
        ctx = ModuleContext(path, source, tree)
        findings = []
        for rule in self.file_rules:
            findings.extend(rule.check(ctx))
        return _FileResult(str(path), source, findings, ctx.noqa,
                           tree=tree if keep_tree else None)

    def run(self, paths, jobs=None):
        """Lint every file under ``paths`` and return a :class:`LintReport`.

        ``jobs`` > 1 fans the per-file pass out through
        :func:`repro.parallel.parallel_map`; results are assembled in
        file order, so the report is byte-identical to a serial run.
        Project rules always run in the parent, over the whole tree.
        """
        files = self.collect_files(paths)
        jobs = 1 if jobs is None else max(1, int(jobs))
        project_rules = self.project_rules
        keep_tree = bool(project_rules)

        if jobs > 1 and len(files) > 1:
            from ..parallel import parallel_map

            def lint_one(path, _seed):
                return self._lint_file(path, keep_tree=False)

            results = parallel_map(
                lint_one, [str(f) for f in files], max_workers=jobs,
            )
        else:
            results = [self._lint_file(f, keep_tree=keep_tree) for f in files]

        raw_findings = []
        syntax_findings = []
        noqa_by_path = {}
        for res in results:
            noqa_by_path[res.path] = res.noqa
            if res.syntax_error:
                syntax_findings.extend(res.findings)
            else:
                raw_findings.extend(res.findings)

        if project_rules:
            from .flow import ProjectModel

            modules = {
                res.path: (res.source, res.tree)
                for res in results
                if not res.syntax_error
            }
            project = ProjectModel.build(modules)
            for rule in project_rules:
                raw_findings.extend(rule.check_project(project))

        # Suppression is resolved against the *anchored* file's noqa
        # table: an interprocedural finding in a.py is never silenced
        # by a noqa comment in b.py, blanket or not.
        findings, suppressed = list(syntax_findings), []
        for f in raw_findings:
            comment = noqa_by_path.get(f.path, {}).get(f.line)
            if comment is not None and comment.suppresses(f.rule):
                comment.used = True
                suppressed.append(f)
            else:
                findings.append(f)

        if any(r.id == "NOQA001" for r in self.rules):
            for path in noqa_by_path:
                for comment in noqa_by_path[path].values():
                    if not comment.used:
                        findings.append(
                            Finding(
                                "NOQA001",
                                path,
                                comment.line,
                                0,
                                "unused suppression: no finding on this line "
                                "matches this noqa comment",
                                severity="warning",
                            )
                        )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return LintReport(findings, suppressed, len(files))
