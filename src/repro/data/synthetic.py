"""Procedural image-dataset families standing in for the paper's datasets.

No network access is available in the reproduction environment, so
CIFAR-10, SVHN, CIFAR-100 and CelebA are replaced by *synthetic
families*: each family defines per-class latent prototypes (optionally
with several sub-concepts per class, some of which are pulled toward a
different class to create the class overlap that drives the paper's
minority-generalization story).  A fixed random low-frequency cosine
basis decodes latents into (C, H, W) images, and per-sample latent noise
plus pixel noise make train and test i.i.d. draws from the same
class-conditional distribution.

This construction preserves the properties the paper's experiments probe:

* classes are learnable but overlap (sub-concepts shared across classes),
* i.i.d. train/test sampling, so sparsely-sampled minority classes have a
  genuinely wider train/test embedding-range gap,
* the four named profiles mirror the paper's class counts and imbalance
  ratios (10/10/100/5 classes; 100:1, 100:1, 10:1, 40:1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import ArrayDataset
from .imbalance import apply_imbalance, exponential_profile

__all__ = [
    "SyntheticConfig",
    "SyntheticImageFamily",
    "DATASET_PROFILES",
    "SCALE_PRESETS",
    "make_dataset",
    "list_datasets",
]


@dataclass
class SyntheticConfig:
    """Parameters of a synthetic image family.

    Attributes
    ----------
    num_classes:
        Number of classes.
    image_size:
        Side length of the square images.
    channels:
        Image channels (3 = RGB).
    latent_dim:
        Dimension of the class-prototype latent space.
    class_separation:
        Scale of the prototype cloud; larger = easier classes.
    within_class_std:
        Latent noise around each sub-concept prototype.
    subconcepts:
        Sub-concept prototypes per class (multi-modal classes).
    overlap:
        Fraction of the distance each secondary sub-concept is pulled
        toward a *different* class's prototype (class overlap).
    pixel_noise:
        Std of additive pixel noise after decoding.
    seed:
        Seed fixing the family (prototypes + decoder basis).
    """

    num_classes: int = 10
    image_size: int = 12
    channels: int = 3
    latent_dim: int = 24
    class_separation: float = 3.0
    within_class_std: float = 1.0
    subconcepts: int = 2
    overlap: float = 0.35
    pixel_noise: float = 0.02
    seed: int = 0


class SyntheticImageFamily:
    """A fixed class-conditional image distribution that can be sampled.

    The family is deterministic given its config; sampling takes an
    external ``rng`` so different cuts of the training set can be drawn
    (the paper trains on three cuts before selecting one).
    """

    def __init__(self, config):
        self.config = config
        rng = np.random.default_rng(config.seed)
        c = config

        # Class prototypes in latent space.
        self.prototypes = rng.normal(
            0.0, c.class_separation, size=(c.num_classes, c.latent_dim)
        )

        # Sub-concept prototypes: the first sits at the class prototype;
        # the rest are jittered copies, some pulled toward another class
        # to create inter-class overlap.
        sub = np.empty((c.num_classes, c.subconcepts, c.latent_dim))
        for k in range(c.num_classes):
            sub[k, 0] = self.prototypes[k]
            for s in range(1, c.subconcepts):
                jitter = rng.normal(0.0, 0.5 * c.class_separation, c.latent_dim)
                point = self.prototypes[k] + jitter
                if c.overlap > 0 and c.num_classes > 1:
                    other = rng.integers(0, c.num_classes - 1)
                    if other >= k:
                        other += 1
                    point = (1 - c.overlap) * point + c.overlap * self.prototypes[other]
                sub[k, s] = point
        self.subconcept_prototypes = sub

        # Fixed decoder: low-frequency cosine basis per latent dimension.
        size = c.image_size
        yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        basis = np.empty((c.latent_dim, c.channels, size, size))
        freqs = rng.uniform(0.3, 2.0, size=(c.latent_dim, c.channels, 2))
        phases = rng.uniform(0, 2 * np.pi, size=(c.latent_dim, c.channels, 2))
        for l in range(c.latent_dim):
            for ch in range(c.channels):
                fy, fx = freqs[l, ch]
                py, px = phases[l, ch]
                basis[l, ch] = np.cos(
                    2 * np.pi * fy * yy / size + py
                ) * np.cos(2 * np.pi * fx * xx / size + px)
        self.basis = basis.reshape(c.latent_dim, -1)
        self._image_shape = (c.channels, size, size)

    def decode(self, latents, rng=None):
        """Decode (N, latent_dim) latents to (N, C, H, W) images in [0, 1]."""
        flat = latents @ self.basis  # (N, C*H*W)
        images = np.tanh(flat / np.sqrt(self.config.latent_dim))
        images = (images + 1.0) / 2.0
        if rng is not None and self.config.pixel_noise > 0:
            images = images + rng.normal(0, self.config.pixel_noise, images.shape)
        return np.clip(images, 0.0, 1.0).reshape((-1,) + self._image_shape)

    def sample_latents(self, labels, rng):
        """Sample per-instance latents for the given integer labels."""
        c = self.config
        labels = np.asarray(labels)
        concept = rng.integers(0, c.subconcepts, size=labels.shape[0])
        centers = self.subconcept_prototypes[labels, concept]
        return centers + rng.normal(0.0, c.within_class_std, centers.shape)

    def sample(self, n_per_class, rng):
        """Draw a balanced dataset with ``n_per_class`` samples per class."""
        c = self.config
        labels = np.repeat(np.arange(c.num_classes), n_per_class)
        latents = self.sample_latents(labels, rng)
        images = self.decode(latents, rng)
        return ArrayDataset(images, labels)


# ----------------------------------------------------------------------
# Named dataset profiles mirroring the paper's four benchmarks
# ----------------------------------------------------------------------

#: Per-dataset family parameters and imbalance profile.  ``ratio`` and
#: ``num_classes`` follow the paper; sample counts are set by the scale
#: preset at :func:`make_dataset` time.
DATASET_PROFILES = {
    "cifar10_like": {
        "config": SyntheticConfig(
            num_classes=10,
            class_separation=2.8,
            within_class_std=1.6,
            subconcepts=3,
            overlap=0.45,
            seed=101,
        ),
        "ratio": 100,
    },
    "svhn_like": {
        "config": SyntheticConfig(
            num_classes=10,
            class_separation=3.4,
            within_class_std=1.5,
            subconcepts=3,
            overlap=0.35,
            seed=202,
        ),
        "ratio": 100,
    },
    "cifar100_like": {
        "config": SyntheticConfig(
            num_classes=100,
            latent_dim=32,
            class_separation=2.6,
            within_class_std=1.4,
            subconcepts=2,
            overlap=0.45,
            seed=303,
        ),
        "ratio": 10,
    },
    "celeba_like": {
        "config": SyntheticConfig(
            num_classes=5,
            class_separation=2.6,
            within_class_std=1.7,
            subconcepts=3,
            overlap=0.50,
            seed=404,
        ),
        "ratio": 40,
    },
}

#: Scale presets: (max train samples per class, test samples per class).
#: "tiny" keeps benchmarks fast; "small" is the default experiment scale;
#: "medium" gives smoother curves when more CPU time is available.
SCALE_PRESETS = {
    "tiny": {"n_max_train": 60, "n_test": 30},
    "small": {"n_max_train": 150, "n_test": 60},
    "medium": {"n_max_train": 400, "n_test": 150},
}

# CIFAR-100-like has 10x fewer samples per class, as in the paper.
_PER_DATASET_SCALE_FACTOR = {"cifar100_like": 0.25}


def list_datasets():
    """Names of the available dataset profiles."""
    return sorted(DATASET_PROFILES)


def make_dataset(name, scale="small", seed=0, image_size=None):
    """Build an imbalanced train set and balanced test set for a profile.

    Parameters
    ----------
    name:
        One of :func:`list_datasets` (e.g. ``"cifar10_like"``).
    scale:
        A key of :data:`SCALE_PRESETS`, or a dict with ``n_max_train``
        and ``n_test``.
    seed:
        Seed for the *sampling* rng (the family itself is fixed by its
        profile seed, so different seeds give different training cuts of
        the same underlying distribution).
    image_size:
        Optional override of the profile's image side length.

    Returns
    -------
    (train, test, info):
        ``train`` is exponentially imbalanced per the profile's ratio,
        ``test`` is balanced, ``info`` is a dict with the family, the
        per-class counts and the profile parameters.
    """
    if name not in DATASET_PROFILES:
        raise KeyError(
            "unknown dataset %r (available: %s)" % (name, ", ".join(list_datasets()))
        )
    profile = DATASET_PROFILES[name]
    if isinstance(scale, str):
        try:
            scale_params = dict(SCALE_PRESETS[scale])
        except KeyError:
            raise KeyError(
                "unknown scale %r (available: %s)"
                % (scale, ", ".join(sorted(SCALE_PRESETS)))
            ) from None
    else:
        scale_params = dict(scale)

    factor = _PER_DATASET_SCALE_FACTOR.get(name, 1.0)
    n_max = max(4, int(round(scale_params["n_max_train"] * factor)))
    n_test = max(4, int(round(scale_params["n_test"] * factor)))

    config = profile["config"]
    if image_size is not None:
        config = SyntheticConfig(**{**config.__dict__, "image_size": image_size})
    family = SyntheticImageFamily(config)

    rng = np.random.default_rng(seed)
    counts = exponential_profile(n_max, config.num_classes, profile["ratio"])
    train_balanced = family.sample(n_max, rng)
    train = apply_imbalance(train_balanced, counts, rng)
    test = family.sample(n_test, rng)
    info = {
        "name": name,
        "family": family,
        "train_counts": counts,
        "ratio": profile["ratio"],
        "num_classes": config.num_classes,
        "image_size": config.image_size,
    }
    return train, test, info
