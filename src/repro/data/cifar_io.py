"""Loaders for the real CIFAR binary formats (offline use).

The reproduction environment has no network access, so the experiments
run on synthetic families — but a user with the actual ``cifar-10-
binary`` / ``cifar-100-binary`` distributions on disk can load them here
and run the identical pipeline on real data.

Formats (https://www.cs.toronto.edu/~kriz/cifar.html):

* CIFAR-10 binary: records of 1 label byte + 3072 pixel bytes
  (3 channels x 32 x 32, row-major).
* CIFAR-100 binary: records of 1 coarse-label byte + 1 fine-label byte
  + 3072 pixel bytes.
"""

from __future__ import annotations

import os

import numpy as np

from ..tensor._dtype import default_dtype

from .dataset import ArrayDataset

__all__ = ["load_cifar10_binary", "load_cifar100_binary"]

_IMAGE_BYTES = 3 * 32 * 32


def _parse_records(raw, label_bytes):
    record = label_bytes + _IMAGE_BYTES
    if len(raw) % record != 0:
        raise ValueError(
            "file size %d is not a multiple of the record size %d"
            % (len(raw), record)
        )
    data = np.frombuffer(raw, dtype=np.uint8).reshape(-1, record)
    labels = data[:, label_bytes - 1].astype(np.int64)
    images = data[:, label_bytes:].reshape(-1, 3, 32, 32).astype(default_dtype())
    return images / 255.0, labels


def load_cifar10_binary(paths):
    """Load one or more CIFAR-10 ``data_batch_*.bin`` files.

    Parameters
    ----------
    paths:
        A path or list of paths to ``.bin`` files.

    Returns an :class:`ArrayDataset` with images in [0, 1].
    """
    if isinstance(paths, (str, os.PathLike)):
        paths = [paths]
    if not paths:
        raise ValueError("no paths given")
    images, labels = [], []
    for path in paths:
        with open(path, "rb") as fh:
            raw = fh.read()
        imgs, labs = _parse_records(raw, label_bytes=1)
        images.append(imgs)
        labels.append(labs)
    return ArrayDataset(np.concatenate(images), np.concatenate(labels))


def load_cifar100_binary(path, label_kind="fine"):
    """Load a CIFAR-100 ``train.bin`` / ``test.bin`` file.

    ``label_kind`` selects the fine (100-class) or coarse (20-class)
    labels.
    """
    if label_kind not in ("fine", "coarse"):
        raise ValueError("label_kind must be 'fine' or 'coarse'")
    with open(path, "rb") as fh:
        raw = fh.read()
    record = 2 + _IMAGE_BYTES
    if len(raw) % record != 0:
        raise ValueError(
            "file size %d is not a multiple of the record size %d"
            % (len(raw), record)
        )
    data = np.frombuffer(raw, dtype=np.uint8).reshape(-1, record)
    column = 1 if label_kind == "fine" else 0
    labels = data[:, column].astype(np.int64)
    images = data[:, 2:].reshape(-1, 3, 32, 32).astype(default_dtype()) / 255.0
    return ArrayDataset(images, labels)
