"""Dataset containers and batch loading.

``ArrayDataset`` holds images as an (N, C, H, W) float array plus integer
labels; ``DataLoader`` provides shuffled mini-batches with optional
per-batch transforms (data augmentation in pixel space).
"""

from __future__ import annotations

import numpy as np

from .._rng import fresh_generator
from ..tensor._dtype import default_dtype

__all__ = ["ArrayDataset", "DataLoader"]


class ArrayDataset:
    """In-memory image classification dataset.

    Parameters
    ----------
    images:
        float array of shape (N, C, H, W), values roughly in [0, 1].
    labels:
        integer array of shape (N,).
    """

    def __init__(self, images, labels):
        # The single choke point for image dtype: everything downstream
        # (loaders, trainers, extractors) inherits the substrate default.
        images = np.asarray(images, dtype=default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4:
            raise ValueError("images must be (N, C, H, W), got %s" % (images.shape,))
        if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
            raise ValueError(
                "labels must be (N,) matching images, got %s" % (labels.shape,)
            )
        self.images = images
        self.labels = labels

    def __len__(self):
        return self.images.shape[0]

    def __getitem__(self, idx):
        return self.images[idx], self.labels[idx]

    @property
    def num_classes(self):
        return int(self.labels.max()) + 1 if len(self) else 0

    @property
    def image_shape(self):
        return self.images.shape[1:]

    def class_counts(self, num_classes=None):
        """Per-class sample counts as an int array of length num_classes."""
        k = num_classes if num_classes is not None else self.num_classes
        return np.bincount(self.labels, minlength=k)

    def subset(self, indices):
        """Return a new dataset containing only ``indices`` (copies)."""
        indices = np.asarray(indices)
        return ArrayDataset(self.images[indices].copy(), self.labels[indices].copy())

    def class_indices(self, label):
        """Indices of all samples with the given label."""
        return np.nonzero(self.labels == label)[0]

    def shuffled(self, rng):
        """Return a shuffled copy of the dataset."""
        perm = rng.permutation(len(self))
        return self.subset(perm)

    def split(self, fraction, rng):
        """Random split into two datasets: (fraction, 1 - fraction)."""
        if not 0 < fraction < 1:
            raise ValueError("fraction must be in (0, 1)")
        perm = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        return self.subset(perm[:cut]), self.subset(perm[cut:])


class DataLoader:
    """Mini-batch iterator over an :class:`ArrayDataset`.

    Parameters
    ----------
    dataset:
        The dataset to iterate.
    batch_size:
        Mini-batch size; the final batch may be smaller unless
        ``drop_last`` is set.
    shuffle:
        Reshuffle sample order every epoch.
    transform:
        Optional callable ``(images, rng) -> images`` applied per batch
        (see :mod:`repro.data.transforms`).
    rng:
        numpy Generator used for shuffling and transforms.
    """

    def __init__(
        self,
        dataset,
        batch_size=32,
        shuffle=True,
        transform=None,
        drop_last=False,
        rng=None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self.rng = rng if rng is not None else fresh_generator()

    def __len__(self):
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            images = self.dataset.images[idx]
            labels = self.dataset.labels[idx]
            if self.transform is not None:
                images = self.transform(images, self.rng)
            yield images, labels
