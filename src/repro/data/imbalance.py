"""Class-imbalance profiles and their application to datasets.

The paper studies *exponential* (long-tailed) imbalance following Cui et
al. (2019): class ``c`` keeps ``n_max * mu^c`` samples where ``mu`` is
chosen so the last class has ``n_max / ratio`` samples.  A *step* profile
is also provided (half the classes at ``n_max``, half at ``n_max/ratio``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "exponential_profile",
    "step_profile",
    "apply_imbalance",
    "imbalance_ratio",
]


def exponential_profile(n_max, num_classes, ratio):
    """Long-tailed per-class counts: n_c = n_max * ratio^(-c / (C-1)).

    Class 0 keeps ``n_max`` samples; the last class keeps ``n_max/ratio``.
    Counts are floored at 1 sample.
    """
    if n_max <= 0 or num_classes <= 0:
        raise ValueError("n_max and num_classes must be positive")
    if ratio < 1:
        raise ValueError("imbalance ratio must be >= 1")
    if num_classes == 1:
        return np.array([n_max], dtype=np.int64)
    exponents = np.arange(num_classes) / (num_classes - 1)
    counts = n_max * np.power(1.0 / ratio, exponents)
    return np.maximum(counts.astype(np.int64), 1)


def step_profile(n_max, num_classes, ratio, minority_fraction=0.5):
    """Step imbalance: a block of majority classes and a block of minority.

    The last ``minority_fraction`` of classes keep ``n_max/ratio`` samples.
    """
    if not 0 < minority_fraction < 1:
        raise ValueError("minority_fraction must be in (0, 1)")
    counts = np.full(num_classes, n_max, dtype=np.int64)
    n_minority = int(round(num_classes * minority_fraction))
    if n_minority:
        counts[-n_minority:] = max(1, int(n_max / ratio))
    return counts


def apply_imbalance(dataset, counts, rng):
    """Subsample ``dataset`` so class ``c`` keeps ``counts[c]`` samples.

    Sampling within each class is uniform without replacement.  Raises if
    a class does not have enough samples.
    """
    counts = np.asarray(counts, dtype=np.int64)
    keep = []
    for c, want in enumerate(counts):
        idx = dataset.class_indices(c)
        if len(idx) < want:
            raise ValueError(
                "class %d has %d samples but the profile wants %d"
                % (c, len(idx), want)
            )
        chosen = rng.choice(idx, size=want, replace=False)
        keep.append(chosen)
    keep = np.concatenate(keep)
    return dataset.subset(np.sort(keep))


def imbalance_ratio(labels, num_classes=None):
    """Max/min class-count ratio of a label array."""
    labels = np.asarray(labels)
    k = num_classes if num_classes is not None else int(labels.max()) + 1
    counts = np.bincount(labels, minlength=k)
    counts = counts[counts > 0]
    return counts.max() / counts.min()
