"""Pixel-space augmentation transforms, applied per batch.

Each transform is a callable ``(images, rng) -> images`` over an
(N, C, H, W) float array; :class:`Compose` chains them.  These mirror the
standard CIFAR training augmentations (random crop with padding, random
horizontal flip) used by the paper's training regime.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Compose",
    "RandomHorizontalFlip",
    "RandomCrop",
    "GaussianNoise",
    "Normalize",
    "standard_augmentation",
]


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms):
        self.transforms = list(transforms)

    def __call__(self, images, rng):
        for t in self.transforms:
            images = t(images, rng)
        return images


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p=0.5):
        if not 0 <= p <= 1:
            raise ValueError("p must be in [0, 1]")
        self.p = p

    def __call__(self, images, rng):
        flip = rng.random(images.shape[0]) < self.p
        out = images.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class RandomCrop:
    """Pad by ``padding`` pixels then crop back at a random offset."""

    def __init__(self, padding=2):
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.padding = padding

    def __call__(self, images, rng):
        if self.padding == 0:
            return images
        p = self.padding
        n, c, h, w = images.shape
        padded = np.pad(images, ((0, 0), (0, 0), (p, p), (p, p)))
        out = np.empty_like(images)
        offsets_y = rng.integers(0, 2 * p + 1, size=n)
        offsets_x = rng.integers(0, 2 * p + 1, size=n)
        for i in range(n):
            oy, ox = offsets_y[i], offsets_x[i]
            out[i] = padded[i, :, oy : oy + h, ox : ox + w]
        return out


class GaussianNoise:
    """Add i.i.d. gaussian pixel noise with std ``sigma``."""

    def __init__(self, sigma=0.02):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma

    def __call__(self, images, rng):
        if self.sigma == 0:
            return images
        return images + rng.normal(0.0, self.sigma, size=images.shape)


class Normalize:
    """Standardize with per-channel mean/std (channel-first layout)."""

    def __init__(self, mean, std):
        from ..tensor._dtype import default_dtype

        self.mean = np.asarray(mean, dtype=default_dtype()).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, dtype=default_dtype()).reshape(1, -1, 1, 1)
        if np.any(self.std <= 0):
            raise ValueError("std values must be positive")

    def __call__(self, images, rng=None):
        return (images - self.mean) / self.std


def standard_augmentation(padding=1, flip_p=0.5, noise_sigma=0.0):
    """The default train-time augmentation pipeline (crop + flip)."""
    transforms = [RandomCrop(padding), RandomHorizontalFlip(flip_p)]
    if noise_sigma > 0:
        transforms.append(GaussianNoise(noise_sigma))
    return Compose(transforms)
