"""Data substrate: datasets, loaders, imbalance profiles, synthetic families."""

from .cifar_io import load_cifar10_binary, load_cifar100_binary
from .dataset import ArrayDataset, DataLoader
from .imbalance import (
    apply_imbalance,
    exponential_profile,
    imbalance_ratio,
    step_profile,
)
from .synthetic import (
    DATASET_PROFILES,
    SCALE_PRESETS,
    SyntheticConfig,
    SyntheticImageFamily,
    list_datasets,
    make_dataset,
)
from .transforms import (
    Compose,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    standard_augmentation,
)

__all__ = [
    "ArrayDataset",
    "load_cifar10_binary",
    "load_cifar100_binary",
    "DataLoader",
    "exponential_profile",
    "step_profile",
    "apply_imbalance",
    "imbalance_ratio",
    "SyntheticConfig",
    "SyntheticImageFamily",
    "DATASET_PROFILES",
    "SCALE_PRESETS",
    "make_dataset",
    "list_datasets",
    "Compose",
    "RandomHorizontalFlip",
    "RandomCrop",
    "GaussianNoise",
    "Normalize",
    "standard_augmentation",
]
