"""repro.serve — crash-safe resampling-as-a-service.

A long-running daemon (:class:`ReproService`) over a local Unix socket
speaking a length-prefixed JSON protocol, built on the reliability
machinery of PRs 2–5:

* **write-ahead journaled job queue** (:mod:`~repro.serve.journal`,
  :mod:`~repro.serve.queue`) — accept is fsynced before it is ACKed;
  replay after a SIGKILL recovers every accepted-but-unsettled job
  exactly once and serves already-settled results without
  re-execution; crash-safe compaction folds settled history into a
  checkpoint segment so the journal stays bounded over a long life;
* **admission control** (:mod:`~repro.serve.admission`) — bounded
  depth and per-client caps shed overload with a structured
  ``retry_after`` instead of accepting work the daemon would drop;
* **supervised dispatch** — jobs run through
  :func:`repro.parallel.parallel_map` (fork per job) or a pre-forked
  :class:`repro.parallel.PersistentPool` (``persistent=True``;
  watchdog deadlines, dead-worker respawn + same-seed re-dispatch,
  recycling) with a :class:`repro.guard.CircuitBreaker` keyed per job
  kind; the ``health`` verb reports ``ok|degraded|draining`` plus
  per-worker liveness;
* **graceful shutdown** — SIGTERM/SIGINT drain to a deadline, then a
  clean ``stop`` marker is journaled; anything unfinished stays
  journaled for the successor.

The ``repro-serve`` CLI (:mod:`~repro.serve.__main__`) wraps
start/submit/status/result/stop, and the chaos suite in
``tests/test_serve_chaos.py`` proves the recovery contract by
SIGKILLing the daemon mid-batch and diffing replayed results against a
crash-free run.
"""

from .admission import AdmissionController, ShedDecision
from .client import LoadShedded, ServeClient, ServeError, retry_jitter
from .journal import Journal, JournalStats, read_journal, segment_paths
from .protocol import (
    MAX_FRAME,
    ProtocolError,
    error_response,
    ok_response,
    read_message,
    retry_after_response,
    write_message,
)
from .queue import JobQueue, recover
from .router import Router, default_router, job_seed
from .service import ReproService, ServiceAlreadyRunning

__all__ = [
    "AdmissionController",
    "ShedDecision",
    "LoadShedded",
    "ServeClient",
    "ServeError",
    "Journal",
    "JournalStats",
    "read_journal",
    "retry_jitter",
    "segment_paths",
    "MAX_FRAME",
    "ProtocolError",
    "error_response",
    "ok_response",
    "read_message",
    "retry_after_response",
    "write_message",
    "JobQueue",
    "recover",
    "Router",
    "default_router",
    "job_seed",
    "ReproService",
    "ServiceAlreadyRunning",
]
