"""Admission control: bounded queues, per-client caps, honest shedding.

A daemon that accepts everything under overload fails the worst way
possible — it ACKs work it will drop on the floor when it OOMs or is
killed.  The admission controller enforces the opposite contract:
**every accepted job is journaled and will be finished or replayed;
everything else is refused up front** with a structured ``retry_after``
response (:func:`repro.serve.protocol.retry_after_response`) telling
the client when to come back.

Two independent limits, checked before anything touches the journal:

* **queue depth** — total accepted-but-unsettled jobs across clients;
* **per-client in-flight cap** — one chatty client cannot starve the
  rest of the queue's capacity.

The suggested ``retry_after`` grows linearly with how far over capacity
the queue is, scaled by the observed mean service time, so backoff
tracks the daemon's actual drain rate instead of a magic constant.
"""

from __future__ import annotations

from ..telemetry import get_metrics

__all__ = ["AdmissionController", "ShedDecision"]

#: Floor for suggested backoff; also the scale when nothing has been
#: served yet (no drain-rate estimate to extrapolate from).
_MIN_RETRY_AFTER = 0.05


class ShedDecision:
    """Why a submit was refused, and when to retry."""

    __slots__ = ("reason", "retry_after", "detail")

    def __init__(self, reason, retry_after, detail=""):
        self.reason = reason
        self.retry_after = max(_MIN_RETRY_AFTER, float(retry_after))
        self.detail = detail

    def __repr__(self):
        return "ShedDecision(reason=%r, retry_after=%.3fs)" % (
            self.reason, self.retry_after,
        )


class AdmissionController:
    """Pre-journal gatekeeper for submit requests.

    Parameters
    ----------
    max_depth:
        Accepted-but-unsettled jobs the daemon will hold, total.
    per_client_limit:
        Accepted-but-unsettled jobs any one client id may hold;
        ``None`` disables the per-client cap.
    """

    def __init__(self, max_depth=64, per_client_limit=None):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if per_client_limit is not None and per_client_limit < 1:
            raise ValueError("per_client_limit must be >= 1 (or None)")
        self.max_depth = int(max_depth)
        self.per_client_limit = (
            None if per_client_limit is None else int(per_client_limit)
        )
        self.in_flight = {}
        self._service_seconds = 0.0
        self._served = 0

    # ------------------------------------------------------------------
    def _mean_service(self):
        if self._served == 0:
            return _MIN_RETRY_AFTER
        return self._service_seconds / self._served

    def observe_service(self, seconds):
        """Feed one settled job's wall time into the backoff estimate."""
        self._service_seconds += max(0.0, float(seconds))
        self._served += 1

    def degraded_floor(self):
        """Depth cap while the daemon is degraded (a quarter of normal).

        A daemon whose workers keep dying still honors what it already
        accepted, but taking a full queue on top of a failing worker
        set just converts more promises into replay debt — so admission
        sheds down to this floor until the workers hold again.
        """
        return max(1, self.max_depth // 4)

    def admit(self, client, depth, stopping=False, degraded=False):
        """Decide one submit: None to accept, else a :class:`ShedDecision`.

        ``depth`` is the current accepted-but-unsettled queue depth; the
        controller does not track it itself because the queue (backed by
        the journal) is the source of truth.  ``degraded`` lowers the
        effective depth cap to :meth:`degraded_floor`.
        """
        metrics = get_metrics()
        if stopping:
            metrics.counter("serve.shed_stopping").inc()
            return ShedDecision(
                "stopping", self._mean_service() * (depth + 1),
                "daemon is draining for shutdown",
            )
        if degraded and depth >= self.degraded_floor():
            metrics.counter("serve.shed_degraded").inc()
            overflow = depth - self.degraded_floor() + 1
            return ShedDecision(
                "degraded", self._mean_service() * overflow,
                "daemon is degraded (workers dying); depth %d at degraded "
                "floor %d" % (depth, self.degraded_floor()),
            )
        if depth >= self.max_depth:
            metrics.counter("serve.shed_depth").inc()
            overflow = depth - self.max_depth + 1
            return ShedDecision(
                "queue_full", self._mean_service() * overflow,
                "queue depth %d at capacity %d" % (depth, self.max_depth),
            )
        held = self.in_flight.get(client, 0)
        if self.per_client_limit is not None and held >= self.per_client_limit:
            metrics.counter("serve.shed_client").inc()
            return ShedDecision(
                "client_limit", self._mean_service() * held,
                "client %r holds %d of %d allowed in-flight jobs"
                % (client, held, self.per_client_limit),
            )
        return None

    def register(self, client):
        """Count one accepted job against ``client``."""
        self.in_flight[client] = self.in_flight.get(client, 0) + 1

    def release(self, client):
        """A job from ``client`` settled; free its in-flight slot."""
        held = self.in_flight.get(client, 0)
        if held <= 1:
            self.in_flight.pop(client, None)
        else:
            self.in_flight[client] = held - 1

    def snapshot(self):
        """JSON-safe view for the ``status`` verb."""
        return {
            "max_depth": self.max_depth,
            "per_client_limit": self.per_client_limit,
            "in_flight": dict(sorted(self.in_flight.items())),
            "mean_service_seconds": round(self._mean_service(), 6),
            "served": self._served,
        }
