"""Client for the resampling daemon: submit, poll, backoff honestly.

One request per connection (connect → frame → response → close), which
keeps the daemon's accept loop trivially fair and makes every client
interaction crash-equivalent: a connection that dies mid-submit either
left an ``accepted`` record (the job will run) or it did not (the job
was never promised) — there is no third state.

Load shedding surfaces as :class:`LoadShedded`, carrying the daemon's
structured ``retry_after``/``reason``; :meth:`ServeClient.submit_with_retry`
is the well-behaved loop that honors it.
"""

from __future__ import annotations

import hashlib
import os
import socket
import time

from ..telemetry.clock import monotonic
from .protocol import read_message, write_message

__all__ = ["LoadShedded", "ServeClient", "ServeError", "retry_jitter"]


def retry_jitter(token):
    """Deterministic uniform fraction in ``[0, 1)`` for backoff jitter.

    Full-jitter backoff needs a per-attempt random fraction, but this
    codebase bans ad-hoc RNG state (lint FLOW-RNG): an unseeded
    generator here would make client behavior unreproducible in tests.
    Hashing the attempt's identity instead gives a fraction that is
    *uniform across clients* (which is all de-synchronizing a thundering
    herd requires) yet exactly reproducible for any given
    ``(client, kind, job, pid, attempt)`` tuple.
    """
    digest = hashlib.sha256(str(token).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class ServeError(RuntimeError):
    """The daemon answered with ``status: error`` (or spoke garbage)."""

    def __init__(self, response):
        self.response = dict(response)
        super().__init__(response.get("message", str(response)))


class LoadShedded(RuntimeError):
    """The daemon refused the submit under admission control.

    Attributes
    ----------
    retry_after:
        Seconds the daemon suggests waiting before resubmitting.
    reason:
        ``queue_full`` / ``client_limit`` / ``degraded`` / ``stopping``.
    """

    def __init__(self, response):
        self.response = dict(response)
        self.retry_after = float(response.get("retry_after", 0.05))
        self.reason = response.get("reason", "?")
        super().__init__(
            "daemon shed the request (%s; retry after %.3fs): %s"
            % (self.reason, self.retry_after, response.get("detail", ""))
        )


class ServeClient:
    """Talk to a :class:`repro.serve.ReproService` over its Unix socket."""

    def __init__(self, socket_path, client_id="default", timeout=10.0):
        self.socket_path = str(socket_path)
        self.client_id = str(client_id)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    def request(self, obj):
        """One request/response round trip (raw dict in, raw dict out)."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
            write_message(sock, obj)
            response = read_message(sock)
        finally:
            sock.close()
        if response is None:
            raise ServeError({"message": "daemon closed without responding"})
        return response

    # ------------------------------------------------------------------
    def submit(self, kind, payload=None, job_id=None):
        """Submit one job; returns its id.

        Raises :class:`LoadShedded` when admission control refuses (the
        job was NOT accepted) and :class:`ServeError` on malformed or
        rejected requests.
        """
        response = self.request({
            "verb": "submit",
            "kind": kind,
            "payload": payload or {},
            "client": self.client_id,
            **({"job_id": job_id} if job_id is not None else {}),
        })
        status = response.get("status")
        if status == "retry_after":
            raise LoadShedded(response)
        if status != "ok":
            raise ServeError(response)
        return response["job_id"]

    def submit_with_retry(self, kind, payload=None, job_id=None,
                          max_attempts=8, backoff_cap=5.0, sleep=time.sleep):
        """Submit with full-jitter exponential backoff on ``retry_after``.

        Each shed attempt sleeps a uniform fraction of
        ``min(backoff_cap, retry_after * 2**attempt)`` — *full jitter*,
        so a herd of clients shed at the same instant spreads its
        retries over the whole window instead of stampeding back in
        lockstep at exactly ``retry_after`` (what the pre-PR-10
        deterministic sleep did).  The exponent doubles the ceiling per
        consecutive shed; ``backoff_cap`` bounds any single sleep.
        After ``max_attempts`` submits the last :class:`LoadShedded`
        is re-raised (no sleep after the final attempt).
        """
        last = None
        for attempt in range(max_attempts):
            try:
                return self.submit(kind, payload=payload, job_id=job_id)
            except LoadShedded as shed:
                last = shed
                if attempt == max_attempts - 1:
                    break
                ceiling = min(float(backoff_cap),
                              shed.retry_after * (2.0 ** attempt))
                fraction = retry_jitter(
                    "%s:%s:%s:%d:%d" % (self.client_id, kind, job_id or "",
                                        os.getpid(), attempt)
                )
                sleep(ceiling * fraction)
        raise last

    def result(self, job_id):
        """The raw settlement response (``done``/``failed``/``pending``/
        ``not_found``)."""
        return self.request({"verb": "result", "job_id": job_id})

    def wait(self, job_id, timeout=30.0, poll=0.05):
        """Block until ``job_id`` settles; returns the settlement dict.

        Raises ``TimeoutError`` if it does not settle in time and
        :class:`ServeError` if the daemon does not know the job.
        """
        deadline = monotonic() + timeout
        while True:
            response = self.result(job_id)
            status = response.get("status")
            if status in ("done", "failed"):
                return response
            if status == "not_found":
                raise ServeError(response)
            if monotonic() > deadline:
                raise TimeoutError(
                    "job %s did not settle within %.1fs" % (job_id, timeout)
                )
            time.sleep(poll)

    def status(self):
        """The daemon's liveness/telemetry snapshot."""
        response = self.request({"verb": "status"})
        if response.get("status") != "ok":
            raise ServeError(response)
        return response

    def health(self):
        """The daemon's supervision snapshot (``ok|degraded|draining``
        plus queue/journal/worker/breaker detail)."""
        response = self.request({"verb": "health"})
        if response.get("status") != "ok":
            raise ServeError(response)
        return response

    def stop(self):
        """Ask the daemon to drain and exit (the graceful path)."""
        response = self.request({"verb": "stop"})
        if response.get("status") != "ok":
            raise ServeError(response)
        return response

    def alive(self):
        """True when something answers ``status`` on the socket."""
        try:
            self.status()
            return True
        except (OSError, ServeError):
            return False
