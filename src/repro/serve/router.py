"""Job routing: kind -> handler, with derived-seed determinism.

A handler is ``fn(payload, seed) -> JSON-safe result``.  The seed is a
pure function of the job id (:func:`job_seed`, same sha256 discipline
as :func:`repro.parallel.derive_seed`), so a job re-executed after a
crash — or on a different worker count — produces byte-identical
results.  That determinism is what lets journal replay settle recovered
jobs by *re-running* them instead of needing distributed consensus.

Built-in kinds:

``resample``
    The paper's workload: EOS (or any registered sampler) over an
    embedding matrix shipped as nested lists.  Runs against the warm
    daemon — no phase-1 retraining, which is precisely the economic
    case for embedding-space over-sampling made in PAPER.md.
``echo`` / ``sleep`` / ``fail``
    Diagnostics and chaos-harness primitives: ``sleep`` gives the kill
    window a place to land, ``fail`` feeds the per-family circuit
    breaker deterministically.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

__all__ = ["Router", "default_router", "job_seed"]


def job_seed(job_id):
    """Deterministic 32-bit seed for one job (stable across restarts)."""
    digest = hashlib.sha256(b"repro.serve:" + str(job_id).encode("utf-8"))
    return int.from_bytes(digest.digest()[:4], "big")


class Router:
    """Registry mapping job kinds to handlers."""

    def __init__(self):
        self._handlers = {}

    def register(self, kind, handler):
        """Register ``handler(payload, seed)`` for ``kind``."""
        self._handlers[str(kind)] = handler
        return handler

    def kinds(self):
        return sorted(self._handlers)

    def dispatch(self, job):
        """Execute one job dict; returns its JSON-safe result.

        Unknown kinds raise ``LookupError`` — a *failed* settlement,
        not a daemon crash.
        """
        kind = job.get("kind")
        handler = self._handlers.get(kind)
        if handler is None:
            raise LookupError(
                "unknown job kind %r (registered: %s)"
                % (kind, ", ".join(self.kinds()) or "none")
            )
        return handler(job.get("payload") or {}, job_seed(job["job_id"]))


# ----------------------------------------------------------------------
# Built-in handlers


def _handle_echo(payload, seed):
    return {"echo": payload, "seed": seed}


def _handle_sleep(payload, seed):
    seconds = float(payload.get("seconds", 0.01))
    time.sleep(seconds)
    return {"slept": seconds}


def _handle_fail(payload, seed):
    raise RuntimeError(payload.get("message", "injected failure"))


def _handle_resample(payload, seed):
    """Embedding-space resampling against the warm daemon.

    Payload: ``{"x": [[...], ...], "y": [...], "sampler": "eos",
    "sampler_kwargs": {...}}``.  Arrays travel as nested lists (the
    protocol is JSON); the handler seeds the sampler from the job id so
    repeat executions are byte-identical.
    """
    from ..experiments.config import build_sampler

    x = np.asarray(payload["x"], dtype=np.float64)
    y = np.asarray(payload["y"], dtype=np.int64)
    sampler = build_sampler(
        payload.get("sampler", "eos"),
        k_neighbors=int(payload.get("k_neighbors", 5)),
        random_state=seed,
        **(payload.get("sampler_kwargs") or {}),
    )
    x_res, y_res = sampler.fit_resample(x, y)
    counts = np.bincount(np.asarray(y_res, dtype=np.int64))
    return {
        "x": np.asarray(x_res).tolist(),
        "y": np.asarray(y_res).tolist(),
        "class_counts": counts.tolist(),
        "n_synthetic": int(len(y_res) - len(y)),
        "sampler": payload.get("sampler", "eos"),
    }


def default_router():
    """A router with every built-in handler registered."""
    router = Router()
    router.register("echo", _handle_echo)
    router.register("sleep", _handle_sleep)
    router.register("fail", _handle_fail)
    router.register("resample", _handle_resample)
    return router
