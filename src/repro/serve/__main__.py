"""``repro-serve`` — run and talk to the resampling daemon.

Examples::

    # foreground daemon (socket + journal under ./serve/)
    repro-serve start --socket serve/repro.sock --journal serve/journal.jsonl

    # submit work and wait for the result
    repro-serve submit --socket serve/repro.sock --kind echo \\
        --payload '{"hello": "world"}' --wait

    # liveness / queue / breaker / replay snapshot (add --json for raw)
    repro-serve status --socket serve/repro.sock --json

    # supervision snapshot: ok|degraded|draining + workers + journal
    repro-serve health --socket serve/repro.sock

    # graceful drain + clean stop marker
    repro-serve stop --socket serve/repro.sock

Long-lived deployments want ``start --persistent --workers N`` (one
pre-forked supervised worker set instead of a fork per job) and
``--compact-every M`` (fold the journal into a checkpoint segment every
M settlements so it stays bounded).

The hidden ``--chaos`` flag on ``start`` installs a
:class:`repro.resilience.FaultPlan` from a JSON spec — the chaos test
suite uses it to crash the daemon at exact fault points
(``serve.accept`` / ``serve.dispatch`` / ``serve.journal`` /
``serve.compact`` / ``worker.task``) and then assert that journal
replay recovers every accepted job exactly once.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main"]


def _install_chaos(spec):
    """Install a FaultPlan from a JSON list of fault dicts."""
    from ..resilience.faults import FaultPlan, install_faults

    plan = FaultPlan()
    for fault in json.loads(spec):
        plan.inject(
            fault["point"],
            action=fault.get("action", "raise"),
            when=fault.get("when"),
            after=int(fault.get("after", 1)),
            times=fault.get("times", 1),
            seconds=fault.get("seconds"),
        )
    install_faults(plan)
    return plan


def _cmd_start(args):
    from .service import ReproService, ServiceAlreadyRunning

    if args.chaos:
        _install_chaos(args.chaos)
    telemetry_session = None
    if args.trace_out:
        from .. import telemetry

        telemetry_session = telemetry.session(trace_out=args.trace_out)
        telemetry_session.__enter__()
    cache = None
    if args.cache_entries:
        from ..experiments import ExtractorCache

        cache = ExtractorCache(max_entries=args.cache_entries)
    service = ReproService(
        args.socket,
        args.journal,
        max_depth=args.max_depth,
        per_client_limit=args.per_client_limit,
        workers=args.workers,
        task_deadline=args.task_deadline,
        breaker_threshold=args.breaker_threshold,
        drain_seconds=args.drain_seconds,
        cache=cache,
        persistent=args.persistent,
        recycle_after=args.recycle_after,
        compact_every=args.compact_every,
        degraded_threshold=args.degraded_threshold,
    )
    print(service.describe(), flush=True)
    try:
        final = service.serve_forever()
    except ServiceAlreadyRunning as exc:
        print("repro-serve: error: %s" % exc, file=sys.stderr)
        return 2
    finally:
        if telemetry_session is not None:
            telemetry_session.__exit__(None, None, None)
    print(json.dumps(final, indent=2, sort_keys=True))
    return 0


def _client(args):
    from .client import ServeClient

    return ServeClient(args.socket, client_id=args.client)


def _cmd_submit(args):
    from .client import LoadShedded

    client = _client(args)
    payload = json.loads(args.payload) if args.payload else {}
    try:
        if args.no_backoff:
            job_id = client.submit(args.kind, payload, job_id=args.job_id)
        else:
            job_id = client.submit_with_retry(
                args.kind, payload, job_id=args.job_id
            )
    except LoadShedded as shed:
        print(json.dumps(shed.response, indent=2, sort_keys=True))
        return 3
    if args.wait:
        print(json.dumps(client.wait(job_id, timeout=args.timeout),
                         indent=2, sort_keys=True))
    else:
        print(json.dumps({"status": "ok", "job_id": job_id},
                         indent=2, sort_keys=True))
    return 0


def _render_status(status):
    """Human-readable status summary (the default; ``--json`` for raw)."""
    journal = status.get("journal_stats", {})
    counters = status.get("counters", {})
    replay = status.get("replay", {})
    lines = [
        "repro-serve pid=%s health=%s uptime=%.1fs"
        % (status.get("pid"), status.get("health", "?"),
           status.get("uptime_seconds", 0.0)),
        "  queue: depth=%d outcomes=%d workers=%d mode=%s"
        % (status.get("queue_depth", 0), status.get("outcomes", 0),
           status.get("workers", 1),
           "persistent" if status.get("persistent") else "fork-per-job"),
        "  counters: accepted=%d completed=%d failed=%d shed=%d "
        "replayed=%d compactions=%d"
        % (counters.get("accepted", 0), counters.get("completed", 0),
           counters.get("failed", 0), counters.get("shed", 0),
           counters.get("replayed", 0), counters.get("compactions", 0)),
        "  journal: segments=%d bytes=%d corrupt_lines=%d"
        % (journal.get("segments", 0), journal.get("bytes", 0),
           journal.get("corrupt_lines", 0)),
        "  replay: recovered=%d torn_tail=%s clean_stop=%s"
        % (replay.get("recovered", 0), replay.get("torn_tail"),
           replay.get("clean_stop")),
    ]
    breakers = status.get("breakers") or {}
    if breakers:
        lines.append("  breakers open: %s" % ", ".join(sorted(breakers)))
    return "\n".join(lines)


def _cmd_status(args):
    status = _client(args).status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(_render_status(status))
    return 0


def _cmd_health(args):
    print(json.dumps(_client(args).health(), indent=2, sort_keys=True))
    return 0


def _cmd_result(args):
    print(json.dumps(_client(args).result(args.job_id), indent=2,
                     sort_keys=True))
    return 0


def _cmd_stop(args):
    print(json.dumps(_client(args).stop(), indent=2, sort_keys=True))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Crash-safe resampling-as-a-service daemon "
        "(journaled job queue over a local Unix socket).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser("start", help="run the daemon in the foreground")
    start.add_argument("--socket", required=True)
    start.add_argument("--journal", required=True)
    start.add_argument("--max-depth", type=int, default=64)
    start.add_argument("--per-client-limit", type=int, default=None)
    start.add_argument("--workers", type=int, default=1)
    start.add_argument("--task-deadline", type=float, default=None)
    start.add_argument("--breaker-threshold", type=int, default=3)
    start.add_argument("--drain-seconds", type=float, default=5.0)
    start.add_argument("--cache-entries", type=int, default=0,
                       help="warm ExtractorCache size (0: no cache)")
    start.add_argument("--trace-out", default=None,
                       help="flush a telemetry trace here on exit")
    start.add_argument("--persistent", action="store_true",
                       help="pre-fork a supervised worker set instead of "
                       "forking per job")
    start.add_argument("--recycle-after", type=int, default=None,
                       help="retire each persistent worker after N jobs")
    start.add_argument("--compact-every", type=int, default=None,
                       help="fold the journal into a checkpoint segment "
                       "every N settlements")
    start.add_argument("--degraded-threshold", type=int, default=3,
                       help="consecutive worker deaths before degraded mode")
    start.add_argument("--chaos", default=None, help=argparse.SUPPRESS)
    start.set_defaults(fn=_cmd_start)

    for name, fn in (("submit", _cmd_submit), ("status", _cmd_status),
                     ("health", _cmd_health), ("result", _cmd_result),
                     ("stop", _cmd_stop)):
        cmd = sub.add_parser(name)
        cmd.add_argument("--socket", required=True)
        cmd.add_argument("--client", default="cli")
        cmd.set_defaults(fn=fn)
        if name == "status":
            cmd.add_argument("--json", action="store_true",
                             help="print the raw JSON snapshot")
        if name == "submit":
            cmd.add_argument("--kind", required=True)
            cmd.add_argument("--payload", default="")
            cmd.add_argument("--job-id", default=None)
            cmd.add_argument("--wait", action="store_true")
            cmd.add_argument("--timeout", type=float, default=30.0)
            cmd.add_argument("--no-backoff", action="store_true",
                             help="fail immediately on retry_after")
        if name == "result":
            cmd.add_argument("job_id")

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # downstream closed the pipe early (e.g. head)
        return 0
    except (OSError, json.JSONDecodeError) as exc:
        print("repro-serve: error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
