"""The resampling daemon: accept loop, dispatch loop, graceful death.

:class:`ReproService` is a single-process event loop over a Unix
socket.  Its reliability contract, end to end:

* **No acknowledged job is ever lost.**  ``submit`` journals (fsync)
  before it ACKs; a SIGKILL at any later instant leaves a record that
  :func:`repro.serve.queue.recover` turns back into a pending job.
  Handlers are deterministic in ``(payload, job_seed(job_id))``, so the
  replayed execution is byte-identical to the one the crash stole.
* **No job is ever run twice to completion.**  Settlements ride in the
  journal; replay serves recorded results instead of re-executing, and
  a client that lost its ACK can re-submit the same ``job_id`` (same
  kind/payload) for an idempotent ``ok`` instead of a duplicate error.
* **No job is accepted that the daemon cannot honor.**  Admission
  control (:mod:`repro.serve.admission`) sheds with a structured
  ``retry_after`` *before* the journal is touched; a shed job was never
  promised.
* **Overload and poison jobs degrade, not crash.**  Dispatch runs
  through :mod:`repro.parallel` (fork-per-job via ``parallel_map``, or
  a supervised :class:`~repro.parallel.PersistentPool` in persistent
  mode), and a :class:`repro.guard.CircuitBreaker` keyed per job kind
  settles repeat offenders as ``circuit_open`` failures without
  dispatching them.
* **The journal stays bounded.**  With ``compact_every`` set, the
  daemon folds settled history into a checkpoint segment every N
  settlements (:meth:`repro.serve.queue.JobQueue.compact`) — crash-safe
  at every step, deferred while degraded.
* **Health is observable.**  The ``health`` verb reports an overall
  ``ok | degraded | draining`` state plus queue depth, journal
  segments/bytes, per-worker liveness, and breaker states.  Repeated
  worker deaths (``degraded_threshold`` in a row without a success)
  enter *degraded mode*: admission sheds down to a floor and compaction
  is deferred until workers hold again.
* **SIGTERM/SIGINT drain.**  The daemon stops accepting (submits shed
  with ``reason="stopping"``), finishes what it can inside
  ``drain_seconds``, journals a clean ``stop`` marker, and leaves
  anything unfinished safely journaled for its successor.

Warm state (an :class:`repro.experiments.ExtractorCache`, optionally
registry-backed) hangs off the service so repeat ``resample`` jobs
against the same extractor skip phase-1 — the economics the paper's
efficiency argument needs from a serving layer.

Fault points (see :class:`repro.resilience.FaultPlan`): ``serve.accept``
fires between admission and the journal write, ``serve.dispatch``
inside each job execution, ``serve.journal`` inside every journal
append, and ``serve.compact`` at each phase boundary of a compaction.
All support ``kill``/``hang``/``raise``; ``serve.journal`` additionally
supports ``corrupt`` (a torn append).
"""

from __future__ import annotations

import errno
import json
import os
import signal
import socket

from ..guard import CircuitBreaker, failure_signature
from ..parallel import Skip, TaskFailure, parallel_map
from ..resilience.faults import maybe_fire
from ..telemetry import get_metrics, get_tracer
from ..telemetry.clock import monotonic, wall_time
from .admission import AdmissionController
from .protocol import (
    ProtocolError,
    error_response,
    ok_response,
    read_message,
    retry_after_response,
    write_message,
)
from .queue import recover
from .router import default_router, job_seed

__all__ = ["ReproService", "ServiceAlreadyRunning"]

#: Selector poll granularity when idle; dispatch latency is bounded by it.
_POLL_SECONDS = 0.05

#: Per-connection socket timeout: a stalled client cannot wedge the loop.
_CONN_TIMEOUT = 5.0


class ServiceAlreadyRunning(RuntimeError):
    """The socket path is owned by a live daemon."""


def _breaker_key(kind):
    return "serve/%s" % kind


class _CircuitOpen:
    """Pre-dispatch marker: the job's family breaker is open."""

    __slots__ = ("signature",)

    def __init__(self, signature):
        self.signature = signature


class ReproService:
    """One daemon instance bound to a socket path and a journal file.

    Parameters
    ----------
    socket_path, journal_path:
        The Unix socket to serve on and the write-ahead journal backing
        the queue.  The journal's directory is created if needed.
    max_depth, per_client_limit:
        Admission bounds (see :class:`~repro.serve.admission.AdmissionController`).
    workers:
        Concurrency for job execution.  1 runs jobs inline; >1 forks per
        job (default) or pre-forks a supervised worker set when
        ``persistent`` is set.
    batch:
        Jobs dispatched per loop iteration in fork-per-job mode
        (default: ``workers``).
    task_deadline, deadline_retries:
        Per-job wall-clock budget enforced by the pool watchdog
        (parallel and persistent modes — a serial dispatch has no
        supervisor process to preempt a hung call).
    breaker_threshold:
        Equivalent failures per job kind before its breaker opens.
    drain_seconds:
        Shutdown budget for finishing journaled work before the clean
        stop marker is written.
    router:
        A :class:`repro.serve.Router`; defaults to the built-ins.
    cache:
        Optional warm :class:`repro.experiments.ExtractorCache` exposed
        to handlers via ``service.cache`` (stats surface in ``status``).
    persistent:
        Dispatch through a :class:`repro.parallel.PersistentPool`
        instead of forking per job: workers are pre-forked once, jobs
        stream to them as pickled frames, and a supervisor respawns
        dead/hung workers and re-dispatches their job under the same
        ``job_seed`` — results stay byte-identical to serial.
    recycle_after:
        In persistent mode, retire and replace each worker after this
        many completed jobs (bounds slow memory growth; None disables).
    compact_every:
        Compact the journal after this many settlements (None disables).
    degraded_threshold:
        Consecutive worker deaths (without an intervening completed
        job) that flip the daemon into degraded mode.
    """

    def __init__(self, socket_path, journal_path, max_depth=64,
                 per_client_limit=None, workers=1, batch=None,
                 task_deadline=None, deadline_retries=1,
                 breaker_threshold=3, drain_seconds=5.0, router=None,
                 cache=None, persistent=False, recycle_after=None,
                 compact_every=None, degraded_threshold=3):
        self.socket_path = os.fspath(socket_path)
        self.journal_path = os.fspath(journal_path)
        self.queue, self.replay_stats = recover(self.journal_path)
        self.admission = AdmissionController(
            max_depth=max_depth, per_client_limit=per_client_limit
        )
        self.router = router if router is not None else default_router()
        self.breaker = CircuitBreaker(threshold=breaker_threshold)
        self.cache = cache
        self.workers = max(1, int(workers))
        self.batch = self.workers if batch is None else max(1, int(batch))
        self.task_deadline = task_deadline
        self.deadline_retries = int(deadline_retries)
        self.drain_seconds = float(drain_seconds)
        self.persistent = bool(persistent)
        self.recycle_after = recycle_after
        self.compact_every = (
            None if not compact_every else max(1, int(compact_every))
        )
        self.degraded_threshold = max(1, int(degraded_threshold))
        self.counters = {
            "accepted": 0, "completed": 0, "failed": 0, "shed": 0,
            "replayed": len(self.queue.pending), "compactions": 0,
        }
        self.heartbeats = {}
        self._stop_requested = None
        self._listener = None
        self._started_at = monotonic()
        self._client_of = {}
        self._pool = None
        self._dispatch_started = {}
        self._settled_since_compact = 0
        self._degraded = False
        self._death_streak = 0
        self._deaths_seen = 0
        if self.replay_stats.corrupt:
            get_tracer().event(
                "serve.journal_corrupt", lines=self.replay_stats.corrupt
            )

    # ------------------------------------------------------------------
    # Socket lifecycle

    def _claim_socket(self):
        """Bind the Unix socket, reclaiming a stale path from a dead
        predecessor but refusing to shadow a live one."""
        if os.path.exists(self.socket_path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(0.5)
            try:
                probe.connect(self.socket_path)
            except OSError:
                os.unlink(self.socket_path)  # stale: owner died un-drained
            else:
                probe.close()
                raise ServiceAlreadyRunning(
                    "a daemon already serves %s" % self.socket_path
                )
            finally:
                probe.close()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(16)
        listener.settimeout(_POLL_SECONDS)
        self._listener = listener

    # ------------------------------------------------------------------
    # Request handling

    def _handle_submit(self, request):
        kind = request.get("kind")
        client = str(request.get("client", "anonymous"))
        if kind not in self.router.kinds():
            return error_response(
                "unknown job kind %r (registered: %s)"
                % (kind, ", ".join(self.router.kinds()))
            )
        # Idempotent re-submit: a client that lost the ACK (connection
        # died after the fsynced journal write) retries the same job_id.
        # The daemon already holds that job, so the retry succeeds —
        # checked before admission, because the job occupies no *new*
        # capacity and a shed here would wrongly tell the client its
        # accepted job was refused.  A reused id with a different
        # kind/payload is a genuine conflict and stays an error.
        requested_id = request.get("job_id")
        if requested_id is not None:
            prior = self.queue.accepted.get(str(requested_id))
            if prior is not None:
                if (prior.get("kind") == kind
                        and prior.get("payload") == (request.get("payload")
                                                     or {})):
                    return ok_response(
                        job_id=str(requested_id),
                        position=self.queue.depth(),
                        duplicate=True,
                    )
                return error_response(
                    "job id %r already used with a different kind/payload"
                    % str(requested_id)
                )
        shed = self.admission.admit(
            client, self.queue.depth(),
            stopping=self._stop_requested is not None,
            degraded=self._degraded,
        )
        if shed is not None:
            self.counters["shed"] += 1
            get_metrics().counter("serve.shed").inc()
            get_tracer().event("serve.shed", reason=shed.reason,
                               client=client, depth=self.queue.depth())
            return retry_after_response(
                shed.retry_after, shed.reason, detail=shed.detail
            )
        maybe_fire("serve.accept", kind=kind, client=client)
        job = {
            "job_id": str(request.get("job_id") or
                          "job-%08d" % (self.queue._seq + 1)),
            "kind": kind,
            "client": client,
            "payload": request.get("payload") or {},
        }
        try:
            self.queue.accept(job)
        except ValueError as exc:
            return error_response(str(exc))
        self.admission.register(client)
        self._client_of[job["job_id"]] = client
        self.counters["accepted"] += 1
        return ok_response(job_id=job["job_id"], position=self.queue.depth())

    def _handle_result(self, request):
        job_id = str(request.get("job_id", ""))
        outcome = self.queue.outcome(job_id)
        if outcome is not None:
            return {"job_id": job_id, **outcome}
        if job_id in self.queue.pending or job_id in self.queue.taken:
            return {"status": "pending", "job_id": job_id,
                    "depth": self.queue.depth()}
        return {"status": "not_found", "job_id": job_id}

    def _health_state(self):
        if self._stop_requested is not None:
            return "draining"
        if self._degraded:
            return "degraded"
        return "ok"

    def _journal_stats(self):
        journal = self.queue.journal
        return {
            "segments": len(journal.segments()),
            "bytes": journal.size_bytes(),
            "corrupt_lines": self.replay_stats.corrupt,
            "compactions": self.counters["compactions"],
        }

    def _worker_stats(self):
        if self.persistent:
            if self._pool is None:
                return {"mode": "persistent", "count": self.workers,
                        "started": False}
            return {"mode": "persistent", "count": self.workers,
                    "started": True, **self._pool.stats()}
        return {"mode": "fork-per-job", "count": self.workers}

    def status(self):
        """The liveness/readiness + telemetry snapshot (``status`` verb)."""
        payload = {
            "pid": os.getpid(),
            "socket": self.socket_path,
            "journal": self.journal_path,
            "uptime_seconds": round(monotonic() - self._started_at, 3),
            "stopping": self._stop_requested is not None,
            "health": self._health_state(),
            "queue_depth": self.queue.depth(),
            "outcomes": len(self.queue.outcomes),
            "counters": dict(self.counters),
            "admission": self.admission.snapshot(),
            "breakers": self.breaker.open_breakers(),
            "heartbeats": dict(sorted(self.heartbeats.items())),
            "kinds": self.router.kinds(),
            "workers": self.workers,
            "persistent": self.persistent,
            "journal_stats": self._journal_stats(),
            "replay": {
                "recovered": self.counters["replayed"],
                "corrupt_lines": self.replay_stats.corrupt,
                "torn_tail": self.replay_stats.torn_tail,
                "clean_stop": self.replay_stats.clean_stop,
            },
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats()
        return ok_response(**payload)

    def health(self):
        """The supervision snapshot (``health`` verb).

        Smaller and more pointed than ``status``: the overall
        ``ok | degraded | draining`` state plus exactly what an
        orchestrator needs to decide whether to route work here —
        queue depth and in-flight count, journal segments/bytes,
        per-worker liveness (last heartbeat age, jobs served,
        respawn/death/recycle counts), and open breakers.
        """
        return ok_response(
            health=self._health_state(),
            pid=os.getpid(),
            queue_depth=self.queue.depth(),
            in_flight=len(self.queue.taken),
            death_streak=self._death_streak,
            journal=self._journal_stats(),
            workers=self._worker_stats(),
            breakers=self.breaker.open_breakers(),
            admission=self.admission.snapshot(),
            counters=dict(self.counters),
        )

    def _handle_request(self, request):
        verb = request.get("verb")
        if verb == "submit":
            return self._handle_submit(request)
        if verb == "result":
            return self._handle_result(request)
        if verb == "status":
            return self.status()
        if verb == "health":
            return self.health()
        if verb == "stop":
            self._stop_requested = "stop-verb"
            return ok_response(stopping=True, depth=self.queue.depth())
        return error_response("unknown verb %r" % (verb,))

    def _serve_one_connection(self, conn):
        """Answer one request; a misbehaving peer never crashes the loop.

        ``OSError`` covers the whole family of routine peer failures —
        ``socket.timeout`` (stalled mid-frame), ``ConnectionResetError``
        (peer reset under us), ``BrokenPipeError`` (peer gave up waiting
        for a slow batch and closed before reading the response).  All of
        them end this connection, not the daemon: degrade, not crash.
        """
        conn.settimeout(_CONN_TIMEOUT)
        try:
            request = read_message(conn)
            if request is None:
                return
            if not isinstance(request, dict):
                write_message(conn, error_response("request must be an object"))
                return
            write_message(conn, self._handle_request(request))
        except (ProtocolError, OSError) as exc:
            get_tracer().event("serve.conn_error",
                               error=type(exc).__name__, detail=str(exc))
            try:
                write_message(conn, error_response(str(exc)))
            except OSError:  # repro: noqa[RES002] peer is already gone; nothing left to tell it
                pass
        finally:
            try:
                conn.close()
            except OSError:  # repro: noqa[RES002] closing a reset socket can itself raise; the fd is gone either way
                pass

    # ------------------------------------------------------------------
    # Dispatch

    def _run_job(self, job, _seed):
        maybe_fire("serve.dispatch", job_id=job["job_id"], kind=job["kind"])
        return self.router.dispatch(job)

    def _settle_outcome(self, job, outcome):
        """Journal one job's settlement and release its admission slot."""
        job_id = job["job_id"]
        self.heartbeats[job["kind"]] = round(wall_time(), 3)
        self.heartbeats["worker"] = round(wall_time(), 3)
        if isinstance(outcome, _CircuitOpen):
            self.queue.settle_failed(
                job_id, "circuit_open:%s" % outcome.signature,
                "breaker for %r is open" % job["kind"],
            )
            self.counters["failed"] += 1
        elif isinstance(outcome, TaskFailure):
            self.queue.settle_failed(job_id, outcome.reason,
                                     outcome.message)
            self.counters["failed"] += 1
            opened = self.breaker.record_failure(
                _breaker_key(job["kind"]), outcome.reason, outcome.message,
            )
            if opened is not None:
                get_tracer().event("serve.breaker_opened",
                                   kind=job["kind"], signature=opened)
        else:
            self.queue.settle_done(job_id, outcome)
            self.counters["completed"] += 1
            self._death_streak = 0
        self._settled_since_compact += 1
        client = self._client_of.pop(job_id, job.get("client"))
        if client is not None:
            self.admission.release(client)

    def _dispatch_some(self):
        """Advance job execution one step; returns jobs touched."""
        if self.persistent:
            return self._dispatch_persistent()
        return self._dispatch_batch()

    def _dispatch_batch(self):
        """Run up to one batch of pending jobs; settle each as it lands.

        Settlement happens in the ``on_result`` completion hook, so a
        crash mid-batch journals every finished job and loses none: the
        unfinished remainder replays on restart.
        """
        batch = self.queue.take(self.batch)
        if not batch:
            return 0
        tracer = get_tracer()
        started = monotonic()

        def pre_dispatch(job, _index):
            signature = self.breaker.open_signature(_breaker_key(job["kind"]))
            if signature is not None:
                get_metrics().counter("serve.circuit_short_circuit").inc()
                return Skip(_CircuitOpen(signature))
            return None

        settled = 0

        def on_result(index, outcome):
            nonlocal settled
            settled += 1
            self._settle_outcome(batch[index], outcome)

        with tracer.span("serve.batch", jobs=len(batch)):
            try:
                parallel_map(
                    self._run_job,
                    batch,
                    max_workers=self.workers,
                    on_error="return",
                    task_label=lambda job, _i: "serve/%s/%s"
                    % (job["kind"], job["job_id"]),
                    on_result=on_result,
                    task_deadline=self.task_deadline,
                    deadline_retries=self.deadline_retries,
                    pre_dispatch=pre_dispatch,
                )
            except KeyboardInterrupt:
                # PoolInterrupted (SIGTERM/SIGINT mid-batch): unsettled
                # jobs go back to the queue front — still journaled as
                # accepted, so even a second crash cannot lose them.
                for job in reversed(batch):
                    if self.queue.outcome(job["job_id"]) is None:
                        self.queue.requeue(job)
                if self._stop_requested is None:
                    self._stop_requested = "interrupt"
        # Mean service time feeds the admission backoff.  Completions in
        # a concurrent batch share wall-clock, so the honest per-job
        # figure is the batch duration amortized over what actually
        # settled — summing per-completion elapsed would double-count.
        if settled:
            per_job = (monotonic() - started) / settled
            for _ in range(settled):
                self.admission.observe_service(per_job)
        return len(batch)

    def _ensure_pool(self):
        """Lazily pre-fork the persistent worker set (first dispatch)."""
        if self._pool is None:
            from ..parallel import PersistentPool

            self._pool = PersistentPool(
                self._run_job,
                workers=self.workers,
                task_deadline=self.task_deadline,
                task_retries=self.deadline_retries,
                recycle_after=self.recycle_after,
            )
            get_tracer().event("serve.pool_started", workers=self.workers)
        return self._pool

    def _dispatch_persistent(self):
        """Stream jobs to the persistent pool; settle what completed.

        Unlike the batch path there is no barrier: jobs flow to idle
        workers as they free up, and completions settle (journal +
        admission release) the same loop iteration they land, so
        submit/result latency is one pool round trip, not one batch.
        """
        pool = self._ensure_pool()
        dispatched = 0
        while pool.capacity() > 0:
            batch = self.queue.take(1)
            if not batch:
                break
            job = batch[0]
            signature = self.breaker.open_signature(_breaker_key(job["kind"]))
            if signature is not None:
                get_metrics().counter("serve.circuit_short_circuit").inc()
                self._settle_outcome(job, _CircuitOpen(signature))
                continue
            self._dispatch_started[job["job_id"]] = monotonic()
            pool.submit(
                job["job_id"], job, job_seed(job["job_id"]),
                label="serve/%s/%s" % (job["kind"], job["job_id"]),
            )
            dispatched += 1
        busy = bool(self.queue.pending or self.queue.taken)
        completions = pool.poll(0.0 if (dispatched or not busy) else
                                _POLL_SECONDS)
        for job_id, outcome in completions:
            job = self.queue.taken.get(job_id) or self.queue.accepted.get(
                job_id, {"job_id": job_id, "kind": "?"}
            )
            started = self._dispatch_started.pop(job_id, None)
            self._settle_outcome(job, outcome)
            if started is not None:
                self.admission.observe_service(monotonic() - started)
        self._supervise(pool)
        return dispatched + len(completions)

    def _supervise(self, pool):
        """Track worker deaths and flip degraded mode on a streak."""
        if pool.deaths > self._deaths_seen:
            self._death_streak += pool.deaths - self._deaths_seen
            self._deaths_seen = pool.deaths
        degraded = self._death_streak >= self.degraded_threshold
        if degraded and not self._degraded:
            self._degraded = True
            get_metrics().counter("serve.degraded").inc()
            get_tracer().event("serve.degraded_enter",
                               deaths=self._death_streak)
        elif not degraded and self._degraded:
            self._degraded = False
            get_tracer().event("serve.degraded_exit")

    def _maybe_compact(self):
        """Compact the journal once enough settlements accrued.

        Deferred while degraded: a daemon whose workers are dying should
        spend its cycles (and its I/O) on recovery, not on rewriting
        history — the journal stays correct either way, only larger.
        """
        if self.compact_every is None:
            return False
        if self._settled_since_compact < self.compact_every:
            return False
        if self._degraded:
            return False
        path = self.queue.compact()
        self._settled_since_compact = 0
        self.counters["compactions"] += 1
        get_tracer().event(
            "serve.compacted", segment=os.path.basename(path),
            bytes=self.queue.journal.size_bytes(),
            live=self.queue.depth(), settled=len(self.queue.outcomes),
        )
        return True

    # ------------------------------------------------------------------
    # Main loop

    def _signal_handler(self, signum, _frame):
        self._stop_requested = signal.Signals(signum).name

    def serve_forever(self):
        """Bind, recover, serve until stopped; returns the final status.

        The loop alternates between draining the accept socket and
        advancing dispatch, so submit/status latency is bounded by the
        slowest single step.  On a stop request (SIGTERM, SIGINT, or
        the ``stop`` verb) it stops accepting, drains journaled work
        inside ``drain_seconds``, writes the clean ``stop`` marker, and
        removes the socket.
        """
        self._claim_socket()
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, self._signal_handler)
            except ValueError:  # repro: noqa[RES002] not the main thread (tests); signals stay with the host
                pass
        get_tracer().event(
            "serve.started", pid=os.getpid(), socket=self.socket_path,
            recovered=self.counters["replayed"],
        )
        try:
            while self._stop_requested is None:
                self._poll_accept()
                self._dispatch_some()
                self._maybe_compact()
            self._drain()
            self.queue.mark_stop()
            get_tracer().event("serve.stopped",
                               reason=self._stop_requested,
                               depth=self.queue.depth())
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            if self._listener is not None:
                self._listener.close()
                self._listener = None
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            self.queue.close()
        return self.status()

    def _poll_accept(self):
        """Accept and answer every connection currently waiting.

        With work queued or in flight, the accept poll is non-blocking
        so dispatch latency stays at one loop iteration; idle, it
        blocks for ``_POLL_SECONDS`` so an empty daemon does not spin.
        """
        self._listener.settimeout(
            0.0 if (self.queue.pending or self.queue.taken) else _POLL_SECONDS
        )
        while True:
            try:
                conn, _ = self._listener.accept()
            except (socket.timeout, BlockingIOError):
                return
            except OSError as exc:
                if exc.errno in (errno.EBADF, errno.EINVAL):
                    return
                raise
            self._serve_one_connection(conn)

    def _drain(self):
        """Finish journaled work inside the shutdown budget.

        Jobs still pending at the deadline stay journaled (accepted,
        unsettled) — the successor daemon replays them; they are *not*
        marked failed, because nothing about them failed.
        """
        deadline = monotonic() + self.drain_seconds
        while ((self.queue.pending or self.queue.taken)
               and monotonic() < deadline):
            self._dispatch_some()
        if self.queue.pending or self.queue.taken:
            get_tracer().event("serve.drain_deadline",
                               left=self.queue.depth())

    def describe(self):
        """One-line startup summary for the CLI."""
        return (
            "repro-serve pid=%d socket=%s journal=%s depth=%d "
            "recovered=%d workers=%d mode=%s"
            % (os.getpid(), self.socket_path, self.journal_path,
               self.queue.depth(), self.counters["replayed"], self.workers,
               "persistent" if self.persistent else "fork-per-job")
        )
