"""Wire protocol for the resampling service: length-prefixed JSON.

One message is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The framing is deliberately the same shape as the
pool's result pipes (:mod:`repro.parallel.pool`): length prefixes make
torn messages detectable (a peer that dies mid-write leaves a short
read, never a half-parsed object), and JSON keeps every payload
inspectable from the journal and the trace.

Requests are ``{"verb": ..., ...}`` objects; responses always carry a
``"status"`` field from :data:`STATUSES`:

``ok``
    The request succeeded; the rest of the object is verb-specific.
``retry_after``
    Admission control shed the request.  ``retry_after`` (seconds) and
    ``reason`` say when and why to come back — the daemon has *not*
    accepted the work (see :mod:`repro.serve.admission`).
``pending``
    A ``result`` query for a job that is accepted but not yet settled.
``done`` / ``failed``
    A ``result`` query for a settled job.  ``done`` carries the
    handler's ``result``; ``failed`` carries the typed ``reason`` and
    ``message``.  :meth:`repro.serve.client.ServeClient.wait` treats
    either as settlement.
``not_found``
    A ``result`` query for an unknown job id.
``error``
    The request was malformed or the daemon is stopping.
"""

from __future__ import annotations

import json
import struct

__all__ = [
    "MAX_FRAME",
    "STATUSES",
    "ProtocolError",
    "error_response",
    "ok_response",
    "read_message",
    "retry_after_response",
    "write_message",
]

#: Length prefix: 4-byte big-endian payload size (same as the pool pipes).
_FRAME_HEADER = struct.Struct(">I")

#: Upper bound on one message; a corrupt length prefix must not make the
#: reader try to allocate gigabytes.
MAX_FRAME = 64 << 20

STATUSES = (
    "ok", "retry_after", "pending", "done", "failed", "not_found", "error",
)


class ProtocolError(RuntimeError):
    """A malformed frame: oversized, torn, or undecodable payload."""


def _recv_exact(sock, size):
    """Read exactly ``size`` bytes, or None on a clean EOF at a frame
    boundary; a torn frame (EOF mid-payload) raises ProtocolError."""
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if remaining == size:
                return None
            raise ProtocolError(
                "peer closed mid-frame (%d of %d bytes missing)"
                % (remaining, size)
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(sock):
    """Read one JSON message; None when the peer closed cleanly."""
    header = _recv_exact(sock, _FRAME_HEADER.size)
    if header is None:
        return None
    (size,) = _FRAME_HEADER.unpack(header)
    if size > MAX_FRAME:
        raise ProtocolError(
            "frame of %d bytes exceeds the %d-byte limit" % (size, MAX_FRAME)
        )
    payload = _recv_exact(sock, size)
    if payload is None:
        raise ProtocolError("peer closed between header and payload")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("undecodable frame payload: %s" % exc) from exc


def write_message(sock, obj):
    """Serialize ``obj`` as one length-prefixed JSON frame."""
    payload = json.dumps(obj, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            "refusing to send a %d-byte frame (limit %d)"
            % (len(payload), MAX_FRAME)
        )
    sock.sendall(_FRAME_HEADER.pack(len(payload)) + payload)


def ok_response(**fields):
    """An ``ok`` response with verb-specific fields merged in."""
    return {"status": "ok", **fields}


def retry_after_response(retry_after, reason, **fields):
    """The structured load-shed response (work was NOT accepted)."""
    return {
        "status": "retry_after",
        "retry_after": round(float(retry_after), 3),
        "reason": reason,
        **fields,
    }


def error_response(message, **fields):
    return {"status": "error", "message": message, **fields}
