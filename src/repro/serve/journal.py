"""Write-ahead job journal: append-only, checksummed, segmented, replayable.

The daemon's exactly-once guarantee rests on this file.  Every state
transition a job makes is appended as one JSONL record *before* the
transition is acted on, and the file is fsynced on acceptance — so a
job the client saw accepted exists on disk even if the daemon is
SIGKILLed in the very next instruction.

Each line is ``{"sha256": <hex>, "body": {...}}`` where the digest
covers the canonical (sorted, compact) serialization of ``body`` —
the same discipline as the artifact sidecars in
:mod:`repro.utils.serialization`, inlined per record because a journal
is one growing file, not a set of immutable artifacts.  On replay:

* a *torn tail* (partial final line, or a final line whose checksum
  does not verify — the shape a crash mid-append leaves) is skipped
  silently: the transition it described never completed, which is
  exactly what the write-ahead contract promises;
* opening the journal for append *repairs* a torn tail first: a
  partial final line (no trailing newline) is truncated away, so the
  recovered daemon's next record — which may be a fsynced, ACKed
  ``accepted`` — starts on its own physical line instead of fusing
  with the garbage and getting skipped on the *next* replay;
* a corrupt record *before* valid ones (bit rot, manual edits) is
  skipped with a counted warning so a damaged journal still recovers
  every verifiable job.

Record body types (``body["type"]``):

``accepted``
    Full job (id, kind, client, payload, seq).  Written + fsynced
    before the client's ``ok`` response.
``done`` / ``failed``
    Settlement, including the result payload (``done``) or the typed
    reason (``failed``).  Results ride in the journal so a replayed
    daemon serves them without re-execution.
``stop``
    Clean-shutdown marker: a restart after a drained SIGTERM knows the
    previous life exited on purpose.
``checkpoint``
    Compaction summary: every settled outcome (with its job spec) plus
    the acceptance sequence counter, folded into one record.  Replay
    treats a checkpoint as a reset — it supersedes everything before
    it, so dropping the pre-checkpoint segments loses nothing.

Segments and compaction
-----------------------
A journal is a *family* of files: the base path (segment 0, what PR 7
wrote) plus numbered successors ``<base>.00000001``, ``.00000002`` ...
Appends always go to the highest-numbered segment.  :meth:`Journal.compact`
bounds the on-disk size without ever risking the write-ahead contract:

1. compose a fresh segment — one ``checkpoint`` record followed by one
   ``accepted`` record per still-live (pending or in-flight) job;
2. write it with :func:`repro.utils.serialization.atomic_write`
   (temp file + fsync + rename + parent-dir fsync), so the new head is
   durable *before* anything else changes;
3. switch the append handle to the new segment;
4. only then unlink the old segments.

A SIGKILL anywhere in that sequence recovers to the same state: replay
walks segments oldest-first and resets at every verified ``checkpoint``,
so leftover pre-compaction segments are read and then superseded, and a
missing new head simply leaves the old segments authoritative.  The
``serve.compact`` fault point fires at each phase boundary (``begin``,
``written``, ``switched``, and ``unlink`` per doomed segment) so the
chaos suite can kill the daemon in every window.

The ``serve.journal`` fault point fires at the head of every append:
``kill`` models a crash before the record lands (the client never sees
an ACK, so nothing was promised), and ``corrupt`` models a torn append
— half the record reaches the disk, the exact shape replay's torn-tail
skip exists for.
"""

from __future__ import annotations

import hashlib
import json
import os

__all__ = ["Journal", "JournalStats", "read_journal", "segment_paths"]


def _canonical(body):
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _digest(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _wrap(body):
    """One checksummed journal line (no trailing newline) for ``body``."""
    return json.dumps(
        {"sha256": _digest(_canonical(body)), "body": body},
        sort_keys=True,
        separators=(",", ":"),
    )


def segment_paths(path):
    """Every on-disk segment of ``path``'s journal, oldest first.

    The base path itself is segment 0 (the only segment PR-7 journals
    ever had); compaction adds numbered successors ``<base>.00000001``
    and so on.  Missing files simply do not appear — a fresh journal
    returns an empty list.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    found = []
    if os.path.exists(path):
        found.append((0, path))
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        names = []
    prefix = base + "."
    for name in names:
        suffix = name[len(prefix):]
        if name.startswith(prefix) and suffix.isdigit():
            found.append((int(suffix), os.path.join(directory, name)))
    found.sort()
    return [segment for _, segment in found]


class JournalStats:
    """What replay found: verified records plus skipped-line accounting."""

    __slots__ = ("records", "corrupt", "torn_tail", "clean_stop",
                 "segments", "bytes")

    def __init__(self):
        self.records = []
        self.corrupt = 0
        self.torn_tail = False
        self.clean_stop = False
        self.segments = 0
        self.bytes = 0


def read_journal(path):
    """Replay a journal (all segments, oldest first) into a
    :class:`JournalStats`.

    Missing files replay as empty (a fresh daemon).  Only records whose
    checksum verifies are returned; an invalid *final* line of the
    *final* segment counts as a torn tail (normal after a crash), any
    other invalid line counts in ``corrupt``.  A verified ``checkpoint``
    record resets the replay — it supersedes every earlier record, which
    is what makes compaction's delete-after-durable sequencing safe at
    any crash point.
    """
    stats = JournalStats()
    segments = segment_paths(path)
    stats.segments = len(segments)
    for ordinal, segment in enumerate(segments):
        final_segment = ordinal == len(segments) - 1
        try:
            stats.bytes += os.path.getsize(segment)
        except OSError:  # repro: noqa[RES002] segment unlinked by a concurrent compaction; its records were already superseded
            pass
        with open(segment, "r", encoding="utf-8", errors="replace") as handle:
            lines = handle.read().split("\n")
        # A well-formed segment ends with a newline, so the final split
        # element is empty; anything else is a partial append.
        torn = False
        if lines and lines[-1] == "":
            lines.pop()
        else:
            torn = True
        bad_lines = []
        for position, line in enumerate(lines):
            body = _verify_line(line)
            if body is None:
                bad_lines.append(position)
                continue
            if body.get("type") == "checkpoint":
                stats.records = []
                stats.clean_stop = False
            stats.records.append(body)
            if body.get("type") == "stop":
                stats.clean_stop = True
        if bad_lines:
            if final_segment and bad_lines[-1] == len(lines) - 1:
                torn = True
                bad_lines.pop()
            stats.corrupt += len(bad_lines)
        if torn:
            if final_segment:
                stats.torn_tail = True
            else:
                # A non-final segment can only be torn through damage —
                # compaction never leaves one mid-append — so it counts
                # as corruption, not a routine crash artifact.
                stats.corrupt += 1
    return stats


def _verify_line(line):
    """Decode + checksum one journal line; None when it does not verify."""
    line = line.strip()
    if not line:
        return None
    try:
        wrapper = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(wrapper, dict):
        return None
    body = wrapper.get("body")
    if not isinstance(body, dict):
        return None
    if wrapper.get("sha256") != _digest(_canonical(body)):
        return None
    return body


def _repair_torn_tail(path):
    """Truncate a partial final line so appends start on a fresh line.

    A crash mid-append leaves the file without a trailing newline.  The
    partial record can never verify, but if the next daemon appended
    straight onto it, its first record — possibly a fsynced, client-ACKed
    ``accepted`` — would share that physical line and fail checksum on
    the *next* replay, silently losing a promised job.  Replay already
    skips the torn record, so dropping its bytes loses nothing; it is
    fsynced away before the new handle opens.
    """
    try:
        handle = open(path, "r+b")
    except FileNotFoundError:
        return
    with handle:
        size = handle.seek(0, os.SEEK_END)
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
        # Walk back to the last newline; everything after it is the torn
        # record.  Chunked so a huge torn payload does not load the file.
        keep = 0
        position = size
        while position > 0:
            step = min(4096, position)
            position -= step
            handle.seek(position)
            chunk = handle.read(step)
            cut = chunk.rfind(b"\n")
            if cut != -1:
                keep = position + cut + 1
                break
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())


class Journal:
    """Append-only writer half of the write-ahead journal.

    ``append`` buffers + flushes every record; ``fsync=True`` (used for
    ``accepted`` and ``stop`` records) additionally forces the record to
    stable storage before returning, which is the moment a job becomes
    the daemon's responsibility.  Settlement records (``done`` /
    ``failed``) default to flush-only: losing one to a crash merely
    re-executes a deterministic job on replay, it never loses or
    duplicates an acknowledged acceptance.

    Appends go to the newest segment (see :func:`segment_paths`);
    :meth:`compact` rolls the family over to a fresh checkpoint segment.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        segments = segment_paths(self.path)
        self.active_path = segments[-1] if segments else self.path
        self._active_index = self._index_of(self.active_path)
        _repair_torn_tail(self.active_path)
        self._handle = open(self.active_path, "a", encoding="utf-8")  # repro: noqa[RES001] write-ahead journals are append-only by design; every record is checksummed and replay skips a torn tail

    def _index_of(self, segment):
        if segment == self.path:
            return 0
        return int(segment[len(self.path) + 1:])

    # ------------------------------------------------------------------
    def segments(self):
        """Current on-disk segment paths, oldest first."""
        return segment_paths(self.path)

    def size_bytes(self):
        """Total on-disk journal size across all segments."""
        total = 0
        for segment in segment_paths(self.path):
            try:
                total += os.path.getsize(segment)
            except OSError:  # repro: noqa[RES002] segment vanished between listing and stat (mid-compaction); size 0 is honest for it
                pass
        return total

    # ------------------------------------------------------------------
    def append(self, record_type, fsync=False, **fields):
        """Write one checksummed record; returns the body written."""
        from ..resilience.faults import maybe_fire

        body = {"type": record_type, **fields}
        line = _wrap(body)
        fired = maybe_fire("serve.journal", record=record_type,
                           job_id=fields.get("job_id"))
        if fired == "corrupt":
            # Model a torn append: half the record reaches the disk.
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            return body
        self._handle.write(line + "\n")
        self._handle.flush()
        if fsync:
            os.fsync(self._handle.fileno())
        return body

    def compact(self, bodies):
        """Roll the journal over to a fresh segment holding ``bodies``.

        ``bodies`` is the complete replacement state — normally one
        ``checkpoint`` record followed by re-``accepted`` records for
        every still-live job (:meth:`repro.serve.queue.JobQueue.compact`
        composes it).  The sequencing is crash-safe at every step:

        * the new segment is written with ``atomic_write`` (fsync +
          rename + parent-dir fsync), so it is durable before the
          append handle moves;
        * old segments are unlinked only after the switchover, and
          replay's checkpoint-reset makes leftover old segments
          harmless if the unlink never happens.

        Returns the new active segment path.
        """
        from ..resilience.faults import maybe_fire
        from ..utils.serialization import _fsync_directory, atomic_write

        maybe_fire("serve.compact", phase="begin")
        data = "".join(_wrap(body) + "\n" for body in bodies).encode("utf-8")
        old_segments = segment_paths(self.path)
        new_index = self._active_index + 1
        new_path = "%s.%08d" % (self.path, new_index)
        atomic_write(new_path, lambda handle: handle.write(data))
        maybe_fire("serve.compact", phase="written")
        self._handle.close()
        self._handle = open(new_path, "a", encoding="utf-8")  # repro: noqa[RES001] append-only journal segment; atomic_write already made the checkpoint head durable
        self.active_path = new_path
        self._active_index = new_index
        maybe_fire("serve.compact", phase="switched")
        for old in old_segments:
            if old == new_path:
                continue
            maybe_fire("serve.compact", phase="unlink",
                       segment=os.path.basename(old))
            try:
                os.unlink(old)
            except FileNotFoundError:  # repro: noqa[RES002] a predecessor's crash already removed it; absent is the goal state
                pass
        directory = os.path.dirname(self.path)
        _fsync_directory(directory if directory else ".")
        return new_path

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
