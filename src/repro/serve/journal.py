"""Write-ahead job journal: append-only, checksummed, replayable.

The daemon's exactly-once guarantee rests on this file.  Every state
transition a job makes is appended as one JSONL record *before* the
transition is acted on, and the file is fsynced on acceptance — so a
job the client saw accepted exists on disk even if the daemon is
SIGKILLed in the very next instruction.

Each line is ``{"sha256": <hex>, "body": {...}}`` where the digest
covers the canonical (sorted, compact) serialization of ``body`` —
the same discipline as the artifact sidecars in
:mod:`repro.utils.serialization`, inlined per record because a journal
is one growing file, not a set of immutable artifacts.  On replay:

* a *torn tail* (partial final line, or a final line whose checksum
  does not verify — the shape a crash mid-append leaves) is skipped
  silently: the transition it described never completed, which is
  exactly what the write-ahead contract promises;
* opening the journal for append *repairs* a torn tail first: a
  partial final line (no trailing newline) is truncated away, so the
  recovered daemon's next record — which may be a fsynced, ACKed
  ``accepted`` — starts on its own physical line instead of fusing
  with the garbage and getting skipped on the *next* replay;
* a corrupt record *before* valid ones (bit rot, manual edits) is
  skipped with a counted warning so a damaged journal still recovers
  every verifiable job.

Record body types (``body["type"]``):

``accepted``
    Full job (id, kind, client, payload, seq).  Written + fsynced
    before the client's ``ok`` response.
``done`` / ``failed``
    Settlement, including the result payload (``done``) or the typed
    reason (``failed``).  Results ride in the journal so a replayed
    daemon serves them without re-execution.
``stop``
    Clean-shutdown marker: a restart after a drained SIGTERM knows the
    previous life exited on purpose.

The ``serve.journal`` fault point fires at the head of every append:
``kill`` models a crash before the record lands (the client never sees
an ACK, so nothing was promised), and ``corrupt`` models a torn append
— half the record reaches the disk, the exact shape replay's torn-tail
skip exists for.
"""

from __future__ import annotations

import hashlib
import json
import os

__all__ = ["Journal", "JournalStats", "read_journal"]


def _canonical(body):
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _digest(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class JournalStats:
    """What replay found: verified records plus skipped-line accounting."""

    __slots__ = ("records", "corrupt", "torn_tail", "clean_stop")

    def __init__(self):
        self.records = []
        self.corrupt = 0
        self.torn_tail = False
        self.clean_stop = False


def read_journal(path):
    """Replay a journal file into a :class:`JournalStats`.

    Missing files replay as empty (a fresh daemon).  Only records whose
    checksum verifies are returned; an invalid *final* line counts as a
    torn tail (normal after a crash), invalid earlier lines count in
    ``corrupt``.
    """
    stats = JournalStats()
    if not os.path.exists(path):
        return stats
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        lines = handle.read().split("\n")
    # A well-formed journal ends with a newline, so the final split
    # element is empty; anything else is a partial append.
    if lines and lines[-1] == "":
        lines.pop()
    else:
        stats.torn_tail = True
    bad_lines = []
    for position, line in enumerate(lines):
        body = _verify_line(line)
        if body is None:
            bad_lines.append(position)
            continue
        stats.records.append(body)
        if body.get("type") == "stop":
            stats.clean_stop = True
    if bad_lines:
        if bad_lines[-1] == len(lines) - 1:
            stats.torn_tail = True
            bad_lines.pop()
        stats.corrupt += len(bad_lines)
    return stats


def _verify_line(line):
    """Decode + checksum one journal line; None when it does not verify."""
    line = line.strip()
    if not line:
        return None
    try:
        wrapper = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(wrapper, dict):
        return None
    body = wrapper.get("body")
    if not isinstance(body, dict):
        return None
    if wrapper.get("sha256") != _digest(_canonical(body)):
        return None
    return body


def _repair_torn_tail(path):
    """Truncate a partial final line so appends start on a fresh line.

    A crash mid-append leaves the file without a trailing newline.  The
    partial record can never verify, but if the next daemon appended
    straight onto it, its first record — possibly a fsynced, client-ACKed
    ``accepted`` — would share that physical line and fail checksum on
    the *next* replay, silently losing a promised job.  Replay already
    skips the torn record, so dropping its bytes loses nothing; it is
    fsynced away before the new handle opens.
    """
    try:
        handle = open(path, "r+b")
    except FileNotFoundError:
        return
    with handle:
        size = handle.seek(0, os.SEEK_END)
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
        # Walk back to the last newline; everything after it is the torn
        # record.  Chunked so a huge torn payload does not load the file.
        keep = 0
        position = size
        while position > 0:
            step = min(4096, position)
            position -= step
            handle.seek(position)
            chunk = handle.read(step)
            cut = chunk.rfind(b"\n")
            if cut != -1:
                keep = position + cut + 1
                break
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())


class Journal:
    """Append-only writer half of the write-ahead journal.

    ``append`` buffers + flushes every record; ``fsync=True`` (used for
    ``accepted`` and ``stop`` records) additionally forces the record to
    stable storage before returning, which is the moment a job becomes
    the daemon's responsibility.  Settlement records (``done`` /
    ``failed``) default to flush-only: losing one to a crash merely
    re-executes a deterministic job on replay, it never loses or
    duplicates an acknowledged acceptance.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        _repair_torn_tail(self.path)
        self._handle = open(self.path, "a", encoding="utf-8")  # repro: noqa[RES001] write-ahead journals are append-only by design; every record is checksummed and replay skips a torn tail

    def append(self, record_type, fsync=False, **fields):
        """Write one checksummed record; returns the body written."""
        from ..resilience.faults import maybe_fire

        body = {"type": record_type, **fields}
        line = json.dumps(
            {"sha256": _digest(_canonical(body)), "body": body},
            sort_keys=True,
            separators=(",", ":"),
        )
        fired = maybe_fire("serve.journal", record=record_type,
                           job_id=fields.get("job_id"))
        if fired == "corrupt":
            # Model a torn append: half the record reaches the disk.
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            return body
        self._handle.write(line + "\n")
        self._handle.flush()
        if fsync:
            os.fsync(self._handle.fileno())
        return body

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
