"""Journal-backed job queue with exactly-once recovery.

The queue is the in-memory view of the journal: ``accept`` journals a
job (fsynced) before queuing it, settlement journals the outcome before
exposing it, and :func:`recover` rebuilds both maps from a replayed
journal.  Because every handler is a pure function of ``(payload,
seed)`` and the seed derives from the job id
(:func:`repro.serve.router.job_seed`), re-executing an
accepted-but-unsettled job after a crash yields bytes identical to the
run that never crashed — replay is *safe* re-execution, and settled
jobs are never re-executed at all (their results ride in the journal).
"""

from __future__ import annotations

from collections import OrderedDict

from ..telemetry import get_metrics
from .journal import Journal, read_journal

__all__ = ["JobQueue", "recover"]


class JobQueue:
    """Pending jobs + settled outcomes, every transition journaled.

    ``pending`` maps job id -> job dict in acceptance order (dispatch
    order is acceptance order, which keeps replayed executions in the
    same order the crashed daemon would have used).  ``outcomes`` maps
    job id -> settlement dict (``{"status": "done", "result": ...}`` or
    ``{"status": "failed", "reason": ..., "message": ...}``).
    ``accepted`` maps every job id ever accepted -> its job spec,
    regardless of where the job is now (pending, taken into a dispatch
    batch, or settled) — it is how a retried submit of an id the daemon
    already holds is recognized as the *same* job instead of a
    duplicate (see :meth:`ReproService._handle_submit`).
    """

    def __init__(self, journal):
        if not isinstance(journal, Journal):
            journal = Journal(journal)
        self.journal = journal
        self.pending = OrderedDict()
        self.outcomes = {}
        self.accepted = {}
        self._seq = 0

    # ------------------------------------------------------------------
    def depth(self):
        return len(self.pending)

    def accept(self, job):
        """Journal (fsync) then queue one job; returns its id.

        After this returns, the job is recoverable: a SIGKILL at any
        later point leaves an ``accepted`` record that replay turns
        back into a pending job.
        """
        job_id = job["job_id"]
        if job_id in self.accepted:
            raise ValueError("duplicate job id %r" % job_id)
        self._seq += 1
        self.journal.append("accepted", fsync=True, seq=self._seq, **job)
        self.pending[job_id] = dict(job)
        self.accepted[job_id] = dict(job)
        get_metrics().counter("serve.accepted").inc()
        return job_id

    def settle_done(self, job_id, result):
        """Journal a completed job's result and retire it from pending."""
        self.journal.append("done", job_id=job_id, result=result)
        self.pending.pop(job_id, None)
        self.outcomes[job_id] = {"status": "done", "result": result}
        get_metrics().counter("serve.completed").inc()
        return self.outcomes[job_id]

    def settle_failed(self, job_id, reason, message=""):
        """Journal a failed job (typed reason) and retire it."""
        self.journal.append("failed", job_id=job_id, reason=reason,
                            message=message)
        self.pending.pop(job_id, None)
        self.outcomes[job_id] = {
            "status": "failed", "reason": reason, "message": message,
        }
        get_metrics().counter("serve.failed").inc()
        return self.outcomes[job_id]

    def outcome(self, job_id):
        """The settlement for ``job_id``, or None while pending/unknown."""
        return self.outcomes.get(job_id)

    def take(self, limit):
        """Dequeue up to ``limit`` jobs (acceptance order) for dispatch.

        Taken jobs stay the daemon's responsibility: they are only
        removed from the recovery set by a settlement record, so a
        crash mid-execution replays them.
        """
        batch = []
        while self.pending and len(batch) < limit:
            _, job = self.pending.popitem(last=False)
            batch.append(job)
        return batch

    def requeue(self, job):
        """Put an unsettled job back at the *front* (drain interrupted)."""
        self.pending[job["job_id"]] = job
        self.pending.move_to_end(job["job_id"], last=False)

    def mark_stop(self):
        """Journal the clean-shutdown marker (fsynced)."""
        self.journal.append("stop", fsync=True)

    def close(self):
        self.journal.close()


def recover(journal_path):
    """Rebuild a :class:`JobQueue` from a journal file.

    Returns ``(queue, stats)`` where ``stats`` is the
    :class:`repro.serve.journal.JournalStats` of the replay.  Every
    verified ``accepted`` record without a matching settlement becomes a
    pending job again — exactly once, in acceptance order; settled jobs
    come back as outcomes and are never re-executed.
    """
    stats = read_journal(journal_path)
    queue = JobQueue(Journal(journal_path))
    for body in stats.records:
        kind = body.get("type")
        if kind == "accepted":
            job = {
                key: value for key, value in body.items()
                if key not in ("type", "seq")
            }
            queue.pending[job["job_id"]] = job
            queue.accepted[job["job_id"]] = dict(job)
            queue._seq = max(queue._seq, int(body.get("seq", 0)))
        elif kind == "done":
            queue.pending.pop(body.get("job_id"), None)
            queue.outcomes[body.get("job_id")] = {
                "status": "done", "result": body.get("result"),
            }
        elif kind == "failed":
            queue.pending.pop(body.get("job_id"), None)
            queue.outcomes[body.get("job_id")] = {
                "status": "failed",
                "reason": body.get("reason", "?"),
                "message": body.get("message", ""),
            }
    if queue.pending:
        get_metrics().counter("serve.replayed").inc(len(queue.pending))
    return queue, stats
